//! Abstract syntax tree of the exchange-specification language.

use trustseq_model::Money;

/// A parsed exchange specification, before name resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExchangeAst {
    /// The exchange's name (the string after the `exchange` keyword).
    pub name: String,
    /// Statements in source order.
    pub statements: Vec<Statement>,
}

/// One statement of an `exchange { … }` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// `consumer c;` / `broker b;` / `producer p;`
    Principal {
        /// `consumer`, `broker` or `producer`.
        role: RoleKw,
        /// The principal's name.
        name: String,
    },
    /// `trusted t1;`
    Trusted {
        /// The trusted component's name.
        name: String,
    },
    /// `item doc "The Document";`
    Item {
        /// The item's key.
        key: String,
        /// The item's title.
        title: String,
    },
    /// `deal sale: b sells doc to c for $100.00 via t1;` — or, bridged
    /// across two linked components, `… via t1 and t2;` (buyer side first).
    Deal {
        /// The deal's (file-local) name.
        name: String,
        /// Seller principal name.
        seller: String,
        /// Item key.
        item: String,
        /// Buyer principal name.
        buyer: String,
        /// Price.
        price: Money,
        /// Buyer-side trusted-intermediary name.
        via: String,
        /// Seller-side trusted-intermediary name, when bridged.
        seller_via: Option<String>,
    },
    /// `secure sale before supply;` — a resale constraint; the principal is
    /// inferred as the seller of `sale` (who must buy in `supply`).
    Secure {
        /// Deal that must be secured first.
        first: String,
        /// Deal deferred until then.
        then: String,
    },
    /// `fund supply from sale;` — a funding constraint; the principal is
    /// inferred as the buyer of `supply` (who must sell in `sale`).
    Fund {
        /// The purchase needing funding.
        purchase: String,
        /// The sale whose proceeds fund it.
        source: String,
    },
    /// `assemble patent from text and diagrams by publisher;` — the
    /// principal can compose the output item from the inputs (§3.2).
    Assemble {
        /// The composite item's key.
        output: String,
        /// The component items' keys.
        inputs: Vec<String>,
        /// The assembling principal.
        assembler: String,
    },
    /// `link t1 with t2;` — mutual trust between two trusted components
    /// (§9's hierarchy of trust).
    Link {
        /// One trusted component.
        a: String,
        /// The other.
        b: String,
    },
    /// `trust p -> b;` — `p` directly trusts `b`.
    Trust {
        /// The truster.
        truster: String,
        /// The trustee.
        trustee: String,
    },
    /// `indemnify sale by b for $20.00;`
    Indemnify {
        /// The covered deal.
        deal: String,
        /// The collateral provider.
        provider: String,
        /// The collateral amount.
        amount: Money,
    },
}

/// The three principal-role keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoleKw {
    /// `consumer`
    Consumer,
    /// `broker`
    Broker,
    /// `producer`
    Producer,
}

impl RoleKw {
    /// The corresponding model role.
    pub fn to_role(self) -> trustseq_model::Role {
        match self {
            RoleKw::Consumer => trustseq_model::Role::Consumer,
            RoleKw::Broker => trustseq_model::Role::Broker,
            RoleKw::Producer => trustseq_model::Role::Producer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_keyword_mapping() {
        assert_eq!(RoleKw::Consumer.to_role(), trustseq_model::Role::Consumer);
        assert_eq!(RoleKw::Broker.to_role(), trustseq_model::Role::Broker);
        assert_eq!(RoleKw::Producer.to_role(), trustseq_model::Role::Producer);
    }
}
