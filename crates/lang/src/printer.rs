//! Pretty-printer: renders an [`ExchangeSpec`] back to canonical
//! specification-language text.
//!
//! The printed text re-parses to an equivalent specification (see the
//! round-trip tests). Deal names are generated as `d0`, `d1`, … in
//! declaration order, since the model does not retain source names.

use std::fmt::Write as _;
use trustseq_model::{ExchangeSpec, ParticipantKind, Role};

/// Renders `spec` as specification-language source text.
pub fn print(spec: &ExchangeSpec) -> String {
    let mut out = String::new();
    let name = |a: trustseq_model::AgentId| {
        spec.participant(a)
            .map(|p| p.name().to_owned())
            .unwrap_or_else(|_| a.to_string())
    };
    let _ = writeln!(out, "exchange \"{}\" {{", spec.name());
    for p in spec.participants() {
        match p.kind() {
            ParticipantKind::Principal(Role::Consumer) => {
                let _ = writeln!(out, "    consumer {};", p.name());
            }
            ParticipantKind::Principal(Role::Broker) => {
                let _ = writeln!(out, "    broker {};", p.name());
            }
            ParticipantKind::Principal(Role::Producer) => {
                let _ = writeln!(out, "    producer {};", p.name());
            }
            ParticipantKind::Trusted => {
                let _ = writeln!(out, "    trusted {};", p.name());
            }
        }
    }
    for item in spec.items() {
        let _ = writeln!(out, "    item {} \"{}\";", item.key(), item.title());
    }
    for a in spec.assemblies() {
        let key = |i| {
            spec.item(i)
                .map(|it| it.key().to_owned())
                .unwrap_or_else(|_| format!("{i}"))
        };
        let inputs: Vec<String> = a.inputs.iter().map(|&i| key(i)).collect();
        let _ = writeln!(
            out,
            "    assemble {} from {} by {};",
            key(a.output),
            inputs.join(" and "),
            name(a.assembler),
        );
    }
    for &(a, b) in spec.trusted_links() {
        let _ = writeln!(out, "    link {} with {};", name(a), name(b));
    }
    for deal in spec.deals() {
        let item_key = spec
            .item(deal.item())
            .map(|i| i.key().to_owned())
            .unwrap_or_else(|_| deal.item().to_string());
        let via = if deal.is_bridged() {
            format!(
                "{} and {}",
                name(deal.intermediary()),
                name(deal.seller_intermediary())
            )
        } else {
            name(deal.intermediary())
        };
        let _ = writeln!(
            out,
            "    deal d{}: {} sells {} to {} for {} via {};",
            deal.id().index(),
            name(deal.seller()),
            item_key,
            name(deal.buyer()),
            deal.price(),
            via,
        );
    }
    for rc in spec.resale_constraints() {
        let _ = writeln!(
            out,
            "    secure d{} before d{};",
            rc.secure_first.index(),
            rc.before.index()
        );
    }
    for fc in spec.funding_constraints() {
        let _ = writeln!(
            out,
            "    fund d{} from d{};",
            fc.purchase.index(),
            fc.funded_by.index()
        );
    }
    for (truster, trustee) in spec.trust().iter() {
        let _ = writeln!(out, "    trust {} -> {};", name(truster), name(trustee));
    }
    for ind in spec.indemnities() {
        let _ = writeln!(
            out,
            "    indemnify d{} by {} for {};",
            ind.deal.index(),
            name(ind.provider),
            ind.amount
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_spec;
    use trustseq_model::{ExchangeSpec, Money};

    fn example1() -> ExchangeSpec {
        let mut spec = ExchangeSpec::new("example1");
        let c = spec.add_principal("c", Role::Consumer).unwrap();
        let b = spec.add_principal("b", Role::Broker).unwrap();
        let p = spec.add_principal("p", Role::Producer).unwrap();
        let t1 = spec.add_trusted("t1").unwrap();
        let t2 = spec.add_trusted("t2").unwrap();
        let doc = spec.add_item("doc", "The Document").unwrap();
        let sale = spec
            .add_deal(b, c, t1, doc, Money::from_dollars(100))
            .unwrap();
        let supply = spec
            .add_deal(p, b, t2, doc, Money::from_dollars(80))
            .unwrap();
        spec.add_resale_constraint(b, sale, supply).unwrap();
        spec
    }

    #[test]
    fn printed_text_contains_all_statements() {
        let text = print(&example1());
        assert!(text.contains("consumer c;"));
        assert!(text.contains("broker b;"));
        assert!(text.contains("trusted t1;"));
        assert!(text.contains("item doc \"The Document\";"));
        assert!(text.contains("deal d0: b sells doc to c for $100.00 via t1;"));
        assert!(text.contains("secure d0 before d1;"));
    }

    #[test]
    fn roundtrip_example1() {
        let spec = example1();
        let reparsed = parse_spec(&print(&spec)).unwrap();
        assert_eq!(spec, reparsed);
    }

    #[test]
    fn roundtrip_bridged_deal_and_link() {
        let mut spec = ExchangeSpec::new("bridge");
        let p = spec
            .add_principal("p", trustseq_model::Role::Producer)
            .unwrap();
        let c = spec
            .add_principal("c", trustseq_model::Role::Consumer)
            .unwrap();
        let tw = spec.add_trusted("tw").unwrap();
        let te = spec.add_trusted("te").unwrap();
        let doc = spec.add_item("doc", "Doc").unwrap();
        spec.add_trusted_link(tw, te).unwrap();
        spec.add_deal_bridged(p, c, tw, te, doc, Money::from_dollars(25))
            .unwrap();
        let text = print(&spec);
        assert!(text.contains("link tw with te;"));
        assert!(text.contains("via tw and te;"));
        let reparsed = parse_spec(&text).unwrap();
        assert_eq!(spec, reparsed);
    }

    #[test]
    fn roundtrip_assembly() {
        let mut spec = ExchangeSpec::new("patent");
        let pubr = spec
            .add_principal("publisher", trustseq_model::Role::Broker)
            .unwrap();
        let c = spec
            .add_principal("c", trustseq_model::Role::Consumer)
            .unwrap();
        let t = spec.add_trusted("t").unwrap();
        let text = spec.add_item("text", "Text").unwrap();
        let diagrams = spec.add_item("diagrams", "Diagrams").unwrap();
        let patent = spec.add_item("patent", "Patent").unwrap();
        spec.add_assembly(pubr, vec![text, diagrams], patent)
            .unwrap();
        spec.add_deal(pubr, c, t, patent, Money::from_dollars(50))
            .unwrap();
        let rendered = print(&spec);
        assert!(rendered.contains("assemble patent from text and diagrams by publisher;"));
        let reparsed = parse_spec(&rendered).unwrap();
        assert_eq!(spec, reparsed);
    }

    #[test]
    fn roundtrip_with_trust_fund_and_indemnity() {
        let mut spec = example1();
        let b = spec.participant_by_name("b").unwrap().id();
        let p = spec.participant_by_name("p").unwrap().id();
        let sale = spec.deals()[0].id();
        let supply = spec.deals()[1].id();
        spec.add_funding_constraint(b, supply, sale).unwrap();
        spec.add_trust(p, b).unwrap();
        spec.add_indemnity(b, sale, Money::from_cents(1234))
            .unwrap();
        let reparsed = parse_spec(&print(&spec)).unwrap();
        assert_eq!(spec, reparsed);
    }
}
