//! Elaboration: name resolution from the AST into a validated
//! [`ExchangeSpec`].

use crate::ast::{ExchangeAst, Statement};
use crate::LangError;
use std::collections::BTreeMap;
use trustseq_model::{AgentId, DealId, ExchangeSpec, ItemId};

/// Resolves names and builds the [`ExchangeSpec`] described by `ast`.
///
/// `secure A before B` infers its principal as the seller of `A`;
/// `fund P from S` infers its principal as the buyer of `P`. All other
/// semantic validation is delegated to the model layer.
///
/// # Errors
///
/// [`LangError::Unknown`] for undeclared names, [`LangError::DuplicateDeal`]
/// for reused deal names, and [`LangError::Model`] for semantic errors.
pub fn elaborate(ast: &ExchangeAst) -> Result<ExchangeSpec, LangError> {
    let mut spec = ExchangeSpec::new(ast.name.clone());
    let mut agents: BTreeMap<String, AgentId> = BTreeMap::new();
    let mut items: BTreeMap<String, ItemId> = BTreeMap::new();
    let mut deals: BTreeMap<String, DealId> = BTreeMap::new();

    let lookup_agent = |agents: &BTreeMap<String, AgentId>, name: &str| {
        agents.get(name).copied().ok_or(LangError::Unknown {
            kind: "participant",
            name: name.to_owned(),
        })
    };
    let lookup_deal = |deals: &BTreeMap<String, DealId>, name: &str| {
        deals.get(name).copied().ok_or(LangError::Unknown {
            kind: "deal",
            name: name.to_owned(),
        })
    };

    for stmt in &ast.statements {
        match stmt {
            Statement::Principal { role, name } => {
                let id = spec.add_principal(name.clone(), role.to_role())?;
                agents.insert(name.clone(), id);
            }
            Statement::Trusted { name } => {
                let id = spec.add_trusted(name.clone())?;
                agents.insert(name.clone(), id);
            }
            Statement::Item { key, title } => {
                let id = spec.add_item(key.clone(), title.clone())?;
                items.insert(key.clone(), id);
            }
            Statement::Deal {
                name,
                seller,
                item,
                buyer,
                price,
                via,
                seller_via,
            } => {
                if deals.contains_key(name) {
                    return Err(LangError::DuplicateDeal(name.clone()));
                }
                let seller = lookup_agent(&agents, seller)?;
                let buyer = lookup_agent(&agents, buyer)?;
                let via = lookup_agent(&agents, via)?;
                let item = items.get(item).copied().ok_or(LangError::Unknown {
                    kind: "item",
                    name: item.clone(),
                })?;
                let id = match seller_via {
                    Some(sv) => {
                        let sv = lookup_agent(&agents, sv)?;
                        spec.add_deal_bridged(seller, buyer, via, sv, item, *price)?
                    }
                    None => spec.add_deal(seller, buyer, via, item, *price)?,
                };
                deals.insert(name.clone(), id);
            }
            Statement::Assemble {
                output,
                inputs,
                assembler,
            } => {
                let assembler = lookup_agent(&agents, assembler)?;
                let output = items.get(output).copied().ok_or(LangError::Unknown {
                    kind: "item",
                    name: output.clone(),
                })?;
                let mut input_ids = Vec::with_capacity(inputs.len());
                for i in inputs {
                    input_ids.push(items.get(i).copied().ok_or(LangError::Unknown {
                        kind: "item",
                        name: i.clone(),
                    })?);
                }
                spec.add_assembly(assembler, input_ids, output)?;
            }
            Statement::Link { a, b } => {
                let a = lookup_agent(&agents, a)?;
                let b = lookup_agent(&agents, b)?;
                spec.add_trusted_link(a, b)?;
            }
            Statement::Secure { first, then } => {
                let first_id = lookup_deal(&deals, first)?;
                let then_id = lookup_deal(&deals, then)?;
                let principal = spec.deal(first_id)?.seller();
                spec.add_resale_constraint(principal, first_id, then_id)?;
            }
            Statement::Fund { purchase, source } => {
                let purchase_id = lookup_deal(&deals, purchase)?;
                let source_id = lookup_deal(&deals, source)?;
                let principal = spec.deal(purchase_id)?.buyer();
                spec.add_funding_constraint(principal, purchase_id, source_id)?;
            }
            Statement::Trust { truster, trustee } => {
                let truster = lookup_agent(&agents, truster)?;
                let trustee = lookup_agent(&agents, trustee)?;
                spec.add_trust(truster, trustee)?;
            }
            Statement::Indemnify {
                deal,
                provider,
                amount,
            } => {
                let deal = lookup_deal(&deals, deal)?;
                let provider = lookup_agent(&agents, provider)?;
                spec.add_indemnity(provider, deal, *amount)?;
            }
        }
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use trustseq_model::{ModelError, Money, Role};

    const EXAMPLE1: &str = r#"
        exchange "example1" {
            consumer c;
            broker b;
            producer p;
            trusted t1;
            trusted t2;
            item doc "The Document";
            deal sale:   b sells doc to c for $100.00 via t1;
            deal supply: p sells doc to b for $80.00  via t2;
            secure sale before supply;
        }
    "#;

    #[test]
    fn elaborates_example1() {
        let spec = elaborate(&parse(EXAMPLE1).unwrap()).unwrap();
        assert_eq!(spec.name(), "example1");
        assert_eq!(spec.deals().len(), 2);
        assert_eq!(spec.resale_constraints().len(), 1);
        let broker = spec.participant_by_name("b").unwrap();
        assert_eq!(
            broker.kind(),
            trustseq_model::ParticipantKind::Principal(Role::Broker)
        );
        assert_eq!(spec.resale_constraints()[0].principal, broker.id());
    }

    #[test]
    fn unknown_names_are_reported() {
        let src = r#"exchange "x" { consumer c; trusted t; item i "I";
            deal d: ghost sells i to c for $1 via t; }"#;
        match elaborate(&parse(src).unwrap()) {
            Err(LangError::Unknown { kind, name }) => {
                assert_eq!(kind, "participant");
                assert_eq!(name, "ghost");
            }
            other => panic!("expected unknown-name error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_item_and_deal() {
        let src = r#"exchange "x" { consumer c; producer p; trusted t;
            deal d: p sells ghost to c for $1 via t; }"#;
        assert!(matches!(
            elaborate(&parse(src).unwrap()),
            Err(LangError::Unknown { kind: "item", .. })
        ));
        let src = r#"exchange "x" { consumer c; producer p; trusted t; item i "I";
            deal d: p sells i to c for $1 via t;
            secure ghost before d; }"#;
        assert!(matches!(
            elaborate(&parse(src).unwrap()),
            Err(LangError::Unknown { kind: "deal", .. })
        ));
    }

    #[test]
    fn duplicate_deal_names_rejected() {
        let src = r#"exchange "x" { consumer c; producer p; trusted t; item i "I";
            deal d: p sells i to c for $1 via t;
            deal d: p sells i to c for $2 via t; }"#;
        assert!(matches!(
            elaborate(&parse(src).unwrap()),
            Err(LangError::DuplicateDeal(_))
        ));
    }

    #[test]
    fn model_errors_propagate() {
        // Empty spec: no deals.
        let src = r#"exchange "x" { consumer c; producer p; trusted t; item i "I";
            deal d: p sells i to p for $1 via t; }"#;
        match elaborate(&parse(src).unwrap()) {
            Err(LangError::Model(ModelError::SelfDeal(_))) => {}
            other => panic!("expected self-deal error, got {other:?}"),
        }
    }

    #[test]
    fn trust_statement_derives_roles() {
        let src = r#"exchange "x" { broker b; producer p; trusted t; item i "I";
            deal d: p sells i to b for $1 via t;
            trust p -> b; }"#;
        let spec = elaborate(&parse(src).unwrap()).unwrap();
        let b = spec.participant_by_name("b").unwrap().id();
        let t = spec.participant_by_name("t").unwrap().id();
        assert!(spec.plays_role(t, b));
    }

    #[test]
    fn link_and_bridged_deal() {
        let src = r#"exchange "bridge" {
            producer p; consumer c;
            trusted t_west; trusted t_east;
            item doc "Doc";
            link t_west with t_east;
            deal d: p sells doc to c for $25 via t_west and t_east;
        }"#;
        let spec = elaborate(&parse(src).unwrap()).unwrap();
        assert_eq!(spec.trusted_links().len(), 1);
        let deal = &spec.deals()[0];
        assert!(deal.is_bridged());
        assert_eq!(
            deal.intermediary(),
            spec.participant_by_name("t_west").unwrap().id()
        );
        assert_eq!(
            deal.seller_intermediary(),
            spec.participant_by_name("t_east").unwrap().id()
        );
    }

    #[test]
    fn bridged_deal_without_link_is_rejected() {
        let src = r#"exchange "bridge" {
            producer p; consumer c;
            trusted t1; trusted t2;
            item doc "Doc";
            deal d: p sells doc to c for $25 via t1 and t2;
        }"#;
        assert!(matches!(
            elaborate(&parse(src).unwrap()),
            Err(LangError::Model(ModelError::UnlinkedBridge { .. }))
        ));
    }

    #[test]
    fn indemnify_statement() {
        let src = r#"exchange "x" { broker b; consumer c; trusted t; item i "I";
            deal d: b sells i to c for $10 via t;
            indemnify d by b for $25; }"#;
        let spec = elaborate(&parse(src).unwrap()).unwrap();
        assert_eq!(spec.indemnities().len(), 1);
        assert_eq!(spec.indemnities()[0].amount, Money::from_dollars(25));
    }
}
