//! Recursive-descent parser for the exchange-specification language.

use crate::ast::{ExchangeAst, RoleKw, Statement};
use crate::token::{tokenize, Token, TokenKind};
use crate::LangError;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, expected: &str) -> LangError {
        match self.peek() {
            Some(t) => LangError::Parse {
                line: t.line,
                col: t.col,
                expected: expected.to_owned(),
                found: t.kind.to_string(),
            },
            None => LangError::Parse {
                line: self.tokens.last().map(|t| t.line).unwrap_or(1),
                col: self.tokens.last().map(|t| t.col).unwrap_or(1),
                expected: expected.to_owned(),
                found: "end of input".to_owned(),
            },
        }
    }

    fn expect_kind(&mut self, kind: &TokenKind, expected: &str) -> Result<(), LangError> {
        match self.peek() {
            Some(t) if &t.kind == kind => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err_here(expected)),
        }
    }

    fn expect_ident(&mut self) -> Result<String, LangError> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Ident(_),
                ..
            }) => {
                let t = self.next().expect("peeked");
                match t.kind {
                    TokenKind::Ident(s) => Ok(s),
                    _ => unreachable!(),
                }
            }
            _ => Err(self.err_here("an identifier")),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), LangError> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Ident(s),
                ..
            }) if s == kw => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err_here(&format!("keyword `{kw}`"))),
        }
    }

    fn expect_string(&mut self) -> Result<String, LangError> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Str(_),
                ..
            }) => {
                let t = self.next().expect("peeked");
                match t.kind {
                    TokenKind::Str(s) => Ok(s),
                    _ => unreachable!(),
                }
            }
            _ => Err(self.err_here("a string literal")),
        }
    }

    fn expect_money(&mut self) -> Result<trustseq_model::Money, LangError> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Money(_),
                ..
            }) => {
                let t = self.next().expect("peeked");
                match t.kind {
                    TokenKind::Money(m) => Ok(m),
                    _ => unreachable!(),
                }
            }
            _ => Err(self.err_here("a money literal like `$10.00`")),
        }
    }

    fn statement(&mut self) -> Result<Statement, LangError> {
        let kw = self.expect_ident()?;
        let stmt = match kw.as_str() {
            "consumer" | "broker" | "producer" => {
                let role = match kw.as_str() {
                    "consumer" => RoleKw::Consumer,
                    "broker" => RoleKw::Broker,
                    _ => RoleKw::Producer,
                };
                Statement::Principal {
                    role,
                    name: self.expect_ident()?,
                }
            }
            "trusted" => Statement::Trusted {
                name: self.expect_ident()?,
            },
            "item" => {
                let key = self.expect_ident()?;
                let title = self.expect_string()?;
                Statement::Item { key, title }
            }
            "deal" => {
                let name = self.expect_ident()?;
                self.expect_kind(&TokenKind::Colon, "`:`")?;
                let seller = self.expect_ident()?;
                self.expect_keyword("sells")?;
                let item = self.expect_ident()?;
                self.expect_keyword("to")?;
                let buyer = self.expect_ident()?;
                self.expect_keyword("for")?;
                let price = self.expect_money()?;
                self.expect_keyword("via")?;
                let via = self.expect_ident()?;
                // Bridged deal: `via t1 and t2` (buyer side first).
                let seller_via = match self.peek() {
                    Some(Token {
                        kind: TokenKind::Ident(s),
                        ..
                    }) if s == "and" => {
                        self.next();
                        Some(self.expect_ident()?)
                    }
                    _ => None,
                };
                Statement::Deal {
                    name,
                    seller,
                    item,
                    buyer,
                    price,
                    via,
                    seller_via,
                }
            }
            "secure" => {
                let first = self.expect_ident()?;
                self.expect_keyword("before")?;
                let then = self.expect_ident()?;
                Statement::Secure { first, then }
            }
            "fund" => {
                let purchase = self.expect_ident()?;
                self.expect_keyword("from")?;
                let source = self.expect_ident()?;
                Statement::Fund { purchase, source }
            }
            "assemble" => {
                let output = self.expect_ident()?;
                self.expect_keyword("from")?;
                let mut inputs = vec![self.expect_ident()?];
                while matches!(self.peek(),
                    Some(Token { kind: TokenKind::Ident(s), .. }) if s == "and")
                {
                    self.next();
                    inputs.push(self.expect_ident()?);
                }
                self.expect_keyword("by")?;
                let assembler = self.expect_ident()?;
                Statement::Assemble {
                    output,
                    inputs,
                    assembler,
                }
            }
            "link" => {
                let a = self.expect_ident()?;
                self.expect_keyword("with")?;
                let b = self.expect_ident()?;
                Statement::Link { a, b }
            }
            "trust" => {
                let truster = self.expect_ident()?;
                self.expect_kind(&TokenKind::Arrow, "`->`")?;
                let trustee = self.expect_ident()?;
                Statement::Trust { truster, trustee }
            }
            "indemnify" => {
                let deal = self.expect_ident()?;
                self.expect_keyword("by")?;
                let provider = self.expect_ident()?;
                self.expect_keyword("for")?;
                let amount = self.expect_money()?;
                Statement::Indemnify {
                    deal,
                    provider,
                    amount,
                }
            }
            other => {
                self.pos -= 1; // report at the keyword itself
                return Err(self.err_here(&format!(
                    "a statement keyword (got `{other}`): consumer, broker, producer, \
                     trusted, item, deal, secure, fund, link, trust, assemble or indemnify"
                )));
            }
        };
        self.expect_kind(&TokenKind::Semi, "`;`")?;
        Ok(stmt)
    }
}

/// Parses an `exchange "name" { … }` source file into an AST.
///
/// # Errors
///
/// [`LangError::Lex`] or [`LangError::Parse`] with 1-based source positions.
pub fn parse(source: &str) -> Result<ExchangeAst, LangError> {
    let tokens = tokenize(source)?;
    let mut p = Parser { tokens, pos: 0 };
    p.expect_keyword("exchange")?;
    let name = p.expect_string()?;
    p.expect_kind(&TokenKind::LBrace, "`{`")?;
    let mut statements = Vec::new();
    loop {
        match p.peek() {
            Some(Token {
                kind: TokenKind::RBrace,
                ..
            }) => {
                p.next();
                break;
            }
            Some(_) => statements.push(p.statement()?),
            None => return Err(p.err_here("`}`")),
        }
    }
    if p.peek().is_some() {
        return Err(p.err_here("end of input"));
    }
    Ok(ExchangeAst { name, statements })
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustseq_model::Money;

    const EXAMPLE1: &str = r#"
        exchange "example1" {
            consumer c;
            broker b;
            producer p;
            trusted t1;
            trusted t2;
            item doc "The Document";
            deal sale:   b sells doc to c for $100.00 via t1;
            deal supply: p sells doc to b for $80.00  via t2;
            secure sale before supply;
        }
    "#;

    #[test]
    fn parses_example1() {
        let ast = parse(EXAMPLE1).unwrap();
        assert_eq!(ast.name, "example1");
        assert_eq!(ast.statements.len(), 9);
        assert!(matches!(
            &ast.statements[6],
            Statement::Deal { name, price, .. }
                if name == "sale" && *price == Money::from_dollars(100)
        ));
        assert!(matches!(
            &ast.statements[8],
            Statement::Secure { first, then } if first == "sale" && then == "supply"
        ));
    }

    #[test]
    fn parses_trust_fund_and_indemnify() {
        let src = r#"
            exchange "x" {
                broker b; producer p; trusted t; item i "I";
                deal d: p sells i to b for $5 via t;
                deal e: b sells i to p for $6 via t;
                trust p -> b;
                fund d from e;
                indemnify d by p for $7.50;
            }
        "#;
        let ast = parse(src).unwrap();
        assert!(ast
            .statements
            .iter()
            .any(|s| matches!(s, Statement::Trust { truster, trustee }
                if truster == "p" && trustee == "b")));
        assert!(ast
            .statements
            .iter()
            .any(|s| matches!(s, Statement::Fund { purchase, source }
                if purchase == "d" && source == "e")));
        assert!(ast.statements.iter().any(
            |s| matches!(s, Statement::Indemnify { amount, .. } if *amount == Money::from_cents(750))
        ));
    }

    #[test]
    fn reports_position_of_errors() {
        let err = parse("exchange \"x\" {\n  bogus y;\n}").unwrap_err();
        match err {
            LangError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_missing_semicolon() {
        let err = parse("exchange \"x\" { consumer c }").unwrap_err();
        assert!(err.to_string().contains("`;`"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("exchange \"x\" { } extra").is_err());
    }

    #[test]
    fn rejects_unclosed_block() {
        assert!(parse("exchange \"x\" { consumer c;").is_err());
    }

    #[test]
    fn empty_exchange_parses() {
        let ast = parse("exchange \"empty\" { }").unwrap();
        assert!(ast.statements.is_empty());
    }
}

#[cfg(test)]
mod robustness {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The parser never panics on arbitrary input.
        #[test]
        fn parser_never_panics(input in ".{0,300}") {
            let _ = parse(&input);
        }

        /// Nor on arbitrary *token-shaped* input.
        #[test]
        fn parser_never_panics_on_token_soup(
            words in proptest::collection::vec(
                "(exchange|deal|secure|fund|link|trust|via|and|;|\\{|\\}|:|->|\\$12\\.50|\"x\"|[a-z]{1,6})",
                0..40,
            )
        ) {
            let input = words.join(" ");
            let _ = parse(&input);
        }
    }
}
