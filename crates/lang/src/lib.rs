//! The exchange-specification language: a small DSL for describing
//! distributed commerce transactions (§1–§2 of the paper introduce "a
//! language for specifying these commercial exchange problems").
//!
//! # Syntax
//!
//! ```text
//! exchange "example1" {
//!     consumer c;                   # principals
//!     broker b;
//!     producer p;
//!     trusted t1;                   # trusted components
//!     trusted t2;
//!     item doc "The Document";      # catalogue
//!
//!     deal sale:   b sells doc to c for $100.00 via t1;
//!     deal supply: p sells doc to b for $80.00  via t2;
//!
//!     secure sale before supply;    # resale constraint (red edge)
//!     fund supply from sale;        # funding constraint ("poor broker")
//!     trust p -> b;                 # directed trust (b plays t2's role)
//!     indemnify sale by b for $20;  # collateral splitting c's bundle
//! }
//! ```
//!
//! Two further statements support §9's *hierarchy of trust*: `link t1 with
//! t2;` declares mutual trust between two trusted components, after which a
//! deal may be **bridged** across them with `… via t1 and t2;` (buyer-side
//! component first). And §3.2's combined documents are declared with
//! `assemble patent from text and diagrams by publisher;` — the publisher
//! can then sell the composite without originally holding it.
//!
//! # Example
//!
//! ```
//! use trustseq_lang::parse_spec;
//!
//! # fn main() -> Result<(), trustseq_lang::LangError> {
//! let spec = parse_spec(r#"
//!     exchange "quick" {
//!         producer p; consumer c; trusted t;
//!         item doc "A Document";
//!         deal d: p sells doc to c for $20.00 via t;
//!     }
//! "#)?;
//! assert_eq!(spec.deals().len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod ast;
mod elaborate;
mod error;
mod parser;
mod printer;
mod token;

pub use elaborate::elaborate;
pub use error::LangError;
pub use parser::parse;
pub use printer::print;
pub use token::{tokenize, Token, TokenKind};

use trustseq_model::ExchangeSpec;

/// Parses specification-language source text straight into a validated
/// [`ExchangeSpec`].
///
/// # Errors
///
/// Lexical, syntax, name-resolution or semantic errors — see [`LangError`].
pub fn parse_spec(source: &str) -> Result<ExchangeSpec, LangError> {
    elaborate(&parse(source)?)
}
