//! Error type for the specification language.

use std::error::Error;
use std::fmt;
use trustseq_model::ModelError;

/// Errors produced while lexing, parsing or elaborating a specification.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LangError {
    /// A lexical error at a source position.
    Lex {
        /// 1-based line.
        line: u32,
        /// 1-based column.
        col: u32,
        /// What went wrong.
        message: String,
    },
    /// A syntax error at a source position.
    Parse {
        /// 1-based line.
        line: u32,
        /// 1-based column.
        col: u32,
        /// What the parser expected.
        expected: String,
        /// What it found instead.
        found: String,
    },
    /// A name was used before being declared.
    Unknown {
        /// What kind of entity (`principal`, `item`, `deal`, …).
        kind: &'static str,
        /// The undeclared name.
        name: String,
    },
    /// A deal name was declared twice.
    DuplicateDeal(String),
    /// A semantic error from the model layer.
    Model(ModelError),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { line, col, message } => {
                write!(f, "{line}:{col}: lexical error: {message}")
            }
            LangError::Parse {
                line,
                col,
                expected,
                found,
            } => write!(f, "{line}:{col}: expected {expected}, found {found}"),
            LangError::Unknown { kind, name } => write!(f, "unknown {kind} `{name}`"),
            LangError::DuplicateDeal(name) => write!(f, "duplicate deal name `{name}`"),
            LangError::Model(e) => write!(f, "{e}"),
        }
    }
}

impl Error for LangError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LangError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for LangError {
    fn from(e: ModelError) -> Self {
        LangError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_positions() {
        let e = LangError::Parse {
            line: 3,
            col: 7,
            expected: "`;`".into(),
            found: "`}`".into(),
        };
        assert_eq!(e.to_string(), "3:7: expected `;`, found `}`");
    }

    #[test]
    fn model_error_wraps() {
        let e: LangError = ModelError::EmptySpec.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("no deals"));
    }
}
