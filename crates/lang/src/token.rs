//! Lexer for the exchange-specification language.

use crate::LangError;
use trustseq_model::Money;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`consumer`, `sells`, a name, …).
    Ident(String),
    /// A double-quoted string literal.
    Str(String),
    /// A dollar amount (`$12.50`).
    Money(Money),
    /// `->`
    Arrow,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
}

impl std::fmt::Display for TokenKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Str(s) => write!(f, "\"{s}\""),
            TokenKind::Money(m) => write!(f, "{m}"),
            TokenKind::Arrow => f.write_str("`->`"),
            TokenKind::Semi => f.write_str("`;`"),
            TokenKind::Colon => f.write_str("`:`"),
            TokenKind::LBrace => f.write_str("`{`"),
            TokenKind::RBrace => f.write_str("`}`"),
        }
    }
}

/// A token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// Tokenises `source`.
///
/// Comments run from `#` or `//` to the end of the line. Identifiers are
/// `[A-Za-z_][A-Za-z0-9_]*`; money literals are `$` followed by digits with
/// an optional two-digit decimal part.
///
/// # Errors
///
/// [`LangError::Lex`] on any unrecognised character or malformed literal.
pub fn tokenize(source: &str) -> Result<Vec<Token>, LangError> {
    let mut tokens = Vec::new();
    let mut chars = source.chars().peekable();
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                col = 1;
            } else if c.is_some() {
                col += 1;
            }
            c
        }};
    }

    while let Some(&c) = chars.peek() {
        let (tline, tcol) = (line, col);
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '#' => {
                while chars.peek().is_some_and(|&c| c != '\n') {
                    bump!();
                }
            }
            '/' => {
                bump!();
                if chars.peek() == Some(&'/') {
                    while chars.peek().is_some_and(|&c| c != '\n') {
                        bump!();
                    }
                } else {
                    return Err(LangError::Lex {
                        line: tline,
                        col: tcol,
                        message: "expected `//` comment".into(),
                    });
                }
            }
            ';' => {
                bump!();
                tokens.push(Token {
                    kind: TokenKind::Semi,
                    line: tline,
                    col: tcol,
                });
            }
            ':' => {
                bump!();
                tokens.push(Token {
                    kind: TokenKind::Colon,
                    line: tline,
                    col: tcol,
                });
            }
            '{' => {
                bump!();
                tokens.push(Token {
                    kind: TokenKind::LBrace,
                    line: tline,
                    col: tcol,
                });
            }
            '}' => {
                bump!();
                tokens.push(Token {
                    kind: TokenKind::RBrace,
                    line: tline,
                    col: tcol,
                });
            }
            '-' => {
                bump!();
                if chars.peek() == Some(&'>') {
                    bump!();
                    tokens.push(Token {
                        kind: TokenKind::Arrow,
                        line: tline,
                        col: tcol,
                    });
                } else {
                    return Err(LangError::Lex {
                        line: tline,
                        col: tcol,
                        message: "expected `->`".into(),
                    });
                }
            }
            '"' => {
                bump!();
                let mut s = String::new();
                loop {
                    match bump!() {
                        Some('"') => break,
                        Some('\n') | None => {
                            return Err(LangError::Lex {
                                line: tline,
                                col: tcol,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(c) => s.push(c),
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    line: tline,
                    col: tcol,
                });
            }
            '$' => {
                bump!();
                let mut s = String::from("$");
                while chars
                    .peek()
                    .is_some_and(|c| c.is_ascii_digit() || *c == '.')
                {
                    s.push(bump!().expect("peeked"));
                }
                let amount: Money = s.parse().map_err(|_| LangError::Lex {
                    line: tline,
                    col: tcol,
                    message: format!("malformed money literal `{s}`"),
                })?;
                tokens.push(Token {
                    kind: TokenKind::Money(amount),
                    line: tline,
                    col: tcol,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while chars
                    .peek()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || *c == '_')
                {
                    s.push(bump!().expect("peeked"));
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(s),
                    line: tline,
                    col: tcol,
                });
            }
            other => {
                return Err(LangError::Lex {
                    line: tline,
                    col: tcol,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_all_token_kinds() {
        let toks = kinds(r#"deal x: a sells "Doc" for $12.50 -> ; { }"#);
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("deal".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Colon,
                TokenKind::Ident("a".into()),
                TokenKind::Ident("sells".into()),
                TokenKind::Str("Doc".into()),
                TokenKind::Ident("for".into()),
                TokenKind::Money(Money::from_cents(1250)),
                TokenKind::Arrow,
                TokenKind::Semi,
                TokenKind::LBrace,
                TokenKind::RBrace,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = kinds("a # comment\nb // another\nc");
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn positions_are_tracked() {
        let toks = tokenize("a\n  bb").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn whole_dollar_amounts() {
        assert_eq!(
            kinds("$100"),
            vec![TokenKind::Money(Money::from_dollars(100))]
        );
    }

    #[test]
    fn lex_errors_carry_position() {
        match tokenize("a\n @") {
            Err(LangError::Lex { line, col, .. }) => {
                assert_eq!((line, col), (2, 2));
            }
            other => panic!("expected lex error, got {other:?}"),
        }
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("$x").is_err());
        assert!(tokenize("- x").is_err());
        assert!(tokenize("/ x").is_err());
        assert!(tokenize("$1.234").is_err());
    }
}

#[cfg(test)]
mod robustness {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The lexer never panics on arbitrary input — it either tokenises
        /// or reports a positioned error.
        #[test]
        fn lexer_never_panics(input in ".{0,200}") {
            let _ = tokenize(&input);
        }

        /// Tokenising valid identifier soup always succeeds.
        #[test]
        fn identifier_soup_tokenizes(words in proptest::collection::vec("[a-z_][a-z0-9_]{0,10}", 0..20)) {
            let input = words.join(" ");
            let tokens = tokenize(&input).unwrap();
            prop_assert_eq!(tokens.len(), words.len());
        }
    }
}
