//! Agent behaviours: honest protocol followers and defectors.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use trustseq_model::AgentId;

/// How a principal behaves during protocol execution.
///
/// Trusted components are always honest — that is what *trusted* means in
/// the model (§2.5); a "trusted" component that defects is outside the
/// paper's threat model. Principals, however, are independently motivated
/// and may walk away at any deposit point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Behavior {
    /// Follows the protocol, but only performs a deposit when its
    /// protections are in place (required notifications received, required
    /// assets held). This caution is part of honesty: the protocol never
    /// asks an honest agent to move unprotected.
    #[default]
    Honest,
    /// Performs the first `n` of its deposits honestly, then goes silent.
    /// `SilentAfter(0)` never deposits anything.
    SilentAfter(u32),
    /// Crashes before its `at_deposit`-th (0-based) deposit, missing the
    /// next `resume_after` of its deposit opportunities, then comes back
    /// and resumes depositing. Distinct from [`Behavior::SilentAfter`]:
    /// the agent returns, so a protocol that stalls on the outage rather
    /// than refunding may still complete.
    CrashRestart {
        /// The first deposit (0-based) the agent misses.
        at_deposit: u32,
        /// How many consecutive deposit opportunities the outage covers.
        resume_after: u32,
    },
}

impl Behavior {
    /// A principal that never deposits anything.
    pub const ABSENT: Behavior = Behavior::SilentAfter(0);

    /// Whether the agent will perform its `k`-th (0-based) deposit.
    pub fn performs_deposit(&self, k: u32) -> bool {
        match *self {
            Behavior::Honest => true,
            Behavior::SilentAfter(n) => k < n,
            Behavior::CrashRestart {
                at_deposit,
                resume_after,
            } => k < at_deposit || k >= at_deposit.saturating_add(resume_after),
        }
    }

    /// `true` for fully honest behaviour.
    pub fn is_honest(&self) -> bool {
        matches!(self, Behavior::Honest)
    }
}

impl fmt::Display for Behavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Behavior::Honest => f.write_str("honest"),
            Behavior::SilentAfter(0) => f.write_str("absent"),
            Behavior::SilentAfter(n) => write!(f, "silent after {n} deposits"),
            Behavior::CrashRestart {
                at_deposit,
                resume_after,
            } => write!(
                f,
                "crashes at deposit {at_deposit}, resumes after {resume_after}"
            ),
        }
    }
}

/// The behaviour assignment of every principal (unlisted principals are
/// honest).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BehaviorMap {
    map: BTreeMap<AgentId, Behavior>,
}

impl BehaviorMap {
    /// Everybody honest.
    pub fn all_honest() -> Self {
        Self::default()
    }

    /// Sets one principal's behaviour (builder style).
    #[must_use]
    pub fn with(mut self, agent: AgentId, behavior: Behavior) -> Self {
        self.map.insert(agent, behavior);
        self
    }

    /// Sets one principal's behaviour.
    pub fn set(&mut self, agent: AgentId, behavior: Behavior) {
        self.map.insert(agent, behavior);
    }

    /// The behaviour of `agent` ([`Behavior::Honest`] by default).
    pub fn of(&self, agent: AgentId) -> Behavior {
        self.map.get(&agent).copied().unwrap_or_default()
    }

    /// The agents with a non-honest behaviour.
    pub fn defectors(&self) -> impl Iterator<Item = AgentId> + '_ {
        self.map
            .iter()
            .filter(|(_, b)| !b.is_honest())
            .map(|(&a, _)| a)
    }

    /// `true` when nobody defects.
    pub fn is_all_honest(&self) -> bool {
        self.map.values().all(Behavior::is_honest)
    }

    /// Every agent with an explicit assignment (honest or not) — what a
    /// simulation validates against the spec's declared principals.
    pub fn assigned(&self) -> impl Iterator<Item = AgentId> + '_ {
        self.map.keys().copied()
    }
}

impl FromIterator<(AgentId, Behavior)> for BehaviorMap {
    fn from_iter<I: IntoIterator<Item = (AgentId, Behavior)>>(iter: I) -> Self {
        BehaviorMap {
            map: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for BehaviorMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_all_honest() {
            return f.write_str("all honest");
        }
        let parts: Vec<String> = self
            .map
            .iter()
            .filter(|(_, b)| !b.is_honest())
            .map(|(a, b)| format!("{a}: {b}"))
            .collect();
        f.write_str(&parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_performs_everything() {
        assert!(Behavior::Honest.performs_deposit(0));
        assert!(Behavior::Honest.performs_deposit(100));
        assert!(Behavior::Honest.is_honest());
    }

    #[test]
    fn silent_after_cuts_off() {
        let b = Behavior::SilentAfter(2);
        assert!(b.performs_deposit(0));
        assert!(b.performs_deposit(1));
        assert!(!b.performs_deposit(2));
        assert!(!b.is_honest());
        assert!(!Behavior::ABSENT.performs_deposit(0));
    }

    #[test]
    fn crash_restart_misses_a_window_then_resumes() {
        let b = Behavior::CrashRestart {
            at_deposit: 1,
            resume_after: 2,
        };
        assert!(b.performs_deposit(0));
        assert!(!b.performs_deposit(1));
        assert!(!b.performs_deposit(2));
        assert!(b.performs_deposit(3));
        assert!(b.performs_deposit(100));
        assert!(!b.is_honest());
        // Unlike SilentAfter(1), which never comes back.
        assert!(!Behavior::SilentAfter(1).performs_deposit(3));
        assert_eq!(b.to_string(), "crashes at deposit 1, resumes after 2");
    }

    #[test]
    fn map_defaults_to_honest() {
        let map = BehaviorMap::all_honest().with(AgentId::new(1), Behavior::ABSENT);
        assert!(map.of(AgentId::new(0)).is_honest());
        assert!(!map.of(AgentId::new(1)).is_honest());
        assert_eq!(map.defectors().collect::<Vec<_>>(), vec![AgentId::new(1)]);
        assert!(!map.is_all_honest());
        assert!(BehaviorMap::all_honest().is_all_honest());
    }

    #[test]
    fn display() {
        assert_eq!(BehaviorMap::all_honest().to_string(), "all honest");
        let map = BehaviorMap::all_honest().with(AgentId::new(1), Behavior::SilentAfter(1));
        assert_eq!(map.to_string(), "a1: silent after 1 deposits");
        assert_eq!(Behavior::ABSENT.to_string(), "absent");
    }
}
