//! A discrete-event message-passing simulator for trust-explicit commerce
//! protocols.
//!
//! The paper proves its safety claim on paper; this crate checks it by
//! *running* synthesised protocols:
//!
//! * [`Ledger`] tracks every participant's cash and items with conservation
//!   invariants;
//! * [`Message`]s carry each protocol action on a simulated wire (with a
//!   binary codec, so benches can report bytes as well as message counts);
//! * [`Behavior`] lets any principal go silent at any deposit point;
//! * [`Simulation`] executes a [`Protocol`](trustseq_core::Protocol) under a
//!   [`BehaviorMap`], with trusted components honouring their §2.5
//!   guarantees (forward when complete, refund on expiry, resolve
//!   indemnities);
//! * [`harness::sweep`] exhaustively enumerates defection patterns (in
//!   parallel) and reports any run in which an honest principal was harmed.
//!
//! # Example
//!
//! ```
//! use trustseq_core::fixtures;
//! use trustseq_sim::{run_protocol, Behavior, BehaviorMap};
//!
//! # fn main() -> Result<(), trustseq_sim::SimError> {
//! let (spec, ids) = fixtures::example1();
//!
//! // Everybody honest: everyone reaches their preferred state.
//! let report = run_protocol(&spec, BehaviorMap::all_honest())?;
//! assert!(report.all_preferred());
//!
//! // The broker walks away mid-protocol: nobody honest is harmed.
//! let behaviors = BehaviorMap::all_honest().with(ids.broker, Behavior::ABSENT);
//! let report = run_protocol(&spec, behaviors)?;
//! assert!(report.safety_holds());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod behavior;
pub mod chaos;
mod error;
pub mod harness;
mod ledger;
mod message;
mod runner;
mod time;

pub use behavior::{Behavior, BehaviorMap};
pub use chaos::{
    chaos_sweep, chaos_sweep_all, chaos_sweep_all_cached, chaos_sweep_cached, ChaosMatrix,
    ChaosReport,
};
pub use error::SimError;
pub use harness::{defection_patterns, sweep, sweep_spec, sweep_spec_cached, SweepReport};
pub use ledger::Ledger;
pub use message::Message;
pub use runner::{run_protocol, SimConfig, SimReport, Simulation};
pub use time::SimTime;
