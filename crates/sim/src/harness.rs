//! Adversarial sweep harness: exhaustively checks the safety property over
//! defection patterns, in parallel.

use crate::behavior::{Behavior, BehaviorMap};
use crate::runner::Simulation;
use crate::SimError;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;
use trustseq_core::Protocol;
use trustseq_model::{AgentId, ExchangeSpec, Outcome};

/// The result of an exhaustive defection sweep.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Number of simulated runs.
    pub runs: usize,
    /// Behaviour assignments under which an honest principal ended in an
    /// unacceptable state, with the harmed principal.
    pub violations: Vec<(String, AgentId)>,
    /// Whether the all-honest run reached every principal's preferred
    /// state.
    pub all_honest_preferred: bool,
}

impl SweepReport {
    /// The safety property held across every run.
    pub fn all_safe(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for SweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} runs, {} violations, all-honest preferred: {}",
            self.runs,
            self.violations.len(),
            self.all_honest_preferred
        )
    }
}

/// Enumerates behaviour assignments: each principal is honest, silent
/// after `k` deposits for every `k` up to its deposit count, or — when the
/// full product still fits under `max_runs` — crash-restarting through
/// every observably distinct outage window (`at + resume < deposits`;
/// windows reaching past the last deposit are indistinguishable from
/// `SilentAfter(at)` and skipped). Principals playing a trusted
/// component's role (personas, §4.2.3) get no crash-restart variants:
/// in that role they are part of the trusted base, and a resumed persona
/// spending escrow-held assets would violate the trusted-honesty axiom.
///
/// The enumeration is exponential in the number of principals; `max_runs`
/// caps it. The size guard degrades in two stages: crash variants are
/// dropped first (keeping the silent-only enumeration exact), and if even
/// that overflows the cap, runs beyond it are skipped deterministically —
/// the lowest-index patterns are kept.
pub fn defection_patterns(
    spec: &ExchangeSpec,
    protocol: &Protocol,
    max_runs: usize,
) -> Vec<BehaviorMap> {
    let principals: Vec<AgentId> = spec.principals().map(|p| p.id()).collect();
    let deposits: Vec<u32> = principals
        .iter()
        .map(|&p| protocol.deposits_of(p).count() as u32)
        .collect();
    // Per principal: honest + SilentAfter(0..deposits).
    let silent_options = |d: u32| {
        let mut v = vec![Behavior::Honest];
        for k in 0..d {
            v.push(Behavior::SilentAfter(k));
        }
        v
    };
    // A principal playing a trusted component's role (a *persona*,
    // §4.2.3) is, in that role, part of the trusted base: a crash-restart
    // that resumes with persona-held assets could make the component's
    // refund guarantee unhonourable, which is outside the paper's threat
    // model (trusted components are honest, §2.5). Silent defection is
    // still enumerated for such principals — going silent is
    // indistinguishable from a crash that never restarts, and a silent
    // persona can always honour its refunds.
    let persona_players: std::collections::BTreeSet<AgentId> = spec
        .trusted_components()
        .filter_map(|t| spec.persona_of(t.id()))
        .collect();
    let extended: Vec<Vec<Behavior>> = principals
        .iter()
        .zip(&deposits)
        .map(|(&p, &d)| {
            let mut v = silent_options(d);
            if !persona_players.contains(&p) {
                for at_deposit in 0..d {
                    for resume_after in 1..d.saturating_sub(at_deposit) {
                        v.push(Behavior::CrashRestart {
                            at_deposit,
                            resume_after,
                        });
                    }
                }
            }
            v
        })
        .collect();
    let extended_total = extended
        .iter()
        .try_fold(1usize, |acc, v| acc.checked_mul(v.len()));
    let options: Vec<Vec<Behavior>> = match extended_total {
        Some(t) if t <= max_runs => extended,
        _ => deposits.iter().map(|&d| silent_options(d)).collect(),
    };
    let total: usize = options
        .iter()
        .try_fold(1usize, |acc, v| acc.checked_mul(v.len()))
        .unwrap_or(usize::MAX);
    let mut patterns = Vec::with_capacity(total.min(max_runs));
    for mut index in 0..total.min(max_runs) {
        let mut map = BehaviorMap::all_honest();
        for (p, opts) in principals.iter().zip(&options) {
            let choice = opts[index % opts.len()];
            index /= opts.len();
            if !choice.is_honest() {
                map.set(*p, choice);
            }
        }
        patterns.push(map);
    }
    patterns
}

/// Runs every defection pattern (capped at `max_runs`) and collects safety
/// violations. Runs are distributed over `threads` worker indices on the
/// persistent [`trustseq_core::pool`] — no per-sweep thread spawns — under
/// the process-wide [`batch_mode`](trustseq_core::pool::batch_mode):
/// either pulling patterns from a shared atomic counter (work stealing, so
/// one slow pattern cannot idle the other workers) or walking one
/// contiguous pattern shard per worker (shard affinity, no shared counter
/// in the loop). The report is byte-identical either way — violations are
/// sorted after the merge — and each per-pattern simulation borrows its
/// behaviour map, so the hot loop allocates nothing per sample.
///
/// # Errors
///
/// Propagates the first simulator-internal error encountered.
pub fn sweep(
    spec: &ExchangeSpec,
    protocol: &Protocol,
    max_runs: usize,
    threads: usize,
) -> Result<SweepReport, SimError> {
    let patterns = defection_patterns(spec, protocol, max_runs);
    let runs = patterns.len();
    // Acceptance-spec generation is exponential in deals-per-principal;
    // compute once for the whole sweep.
    let acceptance = spec.acceptance_specs();
    let violations: Mutex<Vec<(String, AgentId)>> = Mutex::new(Vec::new());
    let all_honest_preferred: Mutex<bool> = Mutex::new(false);
    let error: Mutex<Option<SimError>> = Mutex::new(None);

    let run_one = |behaviors: &BehaviorMap| {
        let sim = Simulation::new(spec, protocol, behaviors).with_acceptance(&acceptance);
        match sim.run() {
            Ok(report) => {
                if behaviors.is_all_honest() {
                    *all_honest_preferred.lock() = report.all_preferred();
                }
                for (&agent, &outcome) in &report.outcomes {
                    let honest = behaviors.of(agent).is_honest();
                    if honest && outcome == Outcome::Unacceptable {
                        violations.lock().push((behaviors.to_string(), agent));
                    }
                }
            }
            Err(e) => {
                error.lock().get_or_insert(e);
            }
        }
    };
    let threads = threads.max(1).min(runs.max(1));
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(
        || match trustseq_core::pool::batch_mode() {
            trustseq_core::BatchMode::Stealing => {
                let next = std::sync::atomic::AtomicUsize::new(0);
                trustseq_core::pool::broadcast(threads, &|_index| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(behaviors) = patterns.get(i) else {
                        break;
                    };
                    run_one(behaviors);
                });
            }
            trustseq_core::BatchMode::Sharded => {
                trustseq_core::pool::broadcast_sharded(threads, runs, &|_index, shard| {
                    for behaviors in &patterns[shard] {
                        run_one(behaviors);
                    }
                });
            }
        },
    ))
    .map_err(|_| SimError::WorkerPanicked)?;

    if let Some(e) = error.into_inner() {
        return Err(e);
    }
    let mut violations = violations.into_inner();
    violations.sort();
    Ok(SweepReport {
        runs,
        violations,
        all_honest_preferred: all_honest_preferred.into_inner(),
    })
}

/// Convenience: synthesises the protocol and sweeps it.
///
/// ```
/// use trustseq_core::fixtures;
/// use trustseq_sim::sweep_spec;
///
/// # fn main() -> Result<(), trustseq_sim::SimError> {
/// let (spec, _) = fixtures::example1();
/// let report = sweep_spec(&spec, 10_000)?;
/// assert!(report.all_safe()); // the paper's central claim, empirically
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// [`SimError::Core`] when the exchange is infeasible, plus sweep errors.
pub fn sweep_spec(spec: &ExchangeSpec, max_runs: usize) -> Result<SweepReport, SimError> {
    sweep_spec_cached(spec, max_runs, None)
}

/// [`sweep_spec`] with an optional
/// [`AnalysisCache`](trustseq_core::AnalysisCache): the feasibility gate is
/// answered from the memo table, so sweeping a batch of structurally
/// repeated specs pays for each structure's reduction once and rejects
/// infeasible repeats with a hash lookup. Protocol synthesis itself stays
/// uncached — its execution sequence is defined by the deterministic
/// reducer's exact step order (§5), which the cache does not promise to
/// reproduce.
///
/// # Errors
///
/// [`SimError::Core`] when the exchange is infeasible, plus sweep errors.
pub fn sweep_spec_cached(
    spec: &ExchangeSpec,
    max_runs: usize,
    cache: Option<&trustseq_core::AnalysisCache>,
) -> Result<SweepReport, SimError> {
    if let Some(cache) = cache {
        let outcome = cache.analyze(spec).map_err(SimError::from)?;
        if !outcome.feasible {
            return Err(SimError::from(trustseq_core::CoreError::Infeasible {
                remaining_edges: outcome.remaining_edges.len(),
            }));
        }
    }
    let sequence = trustseq_core::synthesize(spec)?;
    let protocol = Protocol::from_sequence(spec, &sequence);
    sweep(spec, &protocol, max_runs, trustseq_core::pool::size())
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustseq_core::fixtures;
    use trustseq_model::Money;

    #[test]
    fn example1_safe_under_all_defections() {
        let (spec, _) = fixtures::example1();
        let report = sweep_spec(&spec, 10_000).unwrap();
        // 3 principals: consumer {H, S0}, broker {H, S0, S1, C(0,1)},
        // producer {H, S0} → 2·4·2 = 16 patterns (the broker has the only
        // multi-deposit schedule, hence the only crash-restart window).
        assert_eq!(report.runs, 16);
        assert!(report.all_safe(), "violations: {:?}", report.violations);
        assert!(report.all_honest_preferred);
    }

    #[test]
    fn crash_variants_are_dropped_before_silent_patterns_are_capped() {
        let (spec, _) = fixtures::example1();
        let sequence = trustseq_core::synthesize(&spec).unwrap();
        let protocol = Protocol::from_sequence(&spec, &sequence);
        let crash_count = |patterns: &[BehaviorMap]| {
            patterns
                .iter()
                .flat_map(|m| m.assigned().map(|a| m.of(a)).collect::<Vec<_>>())
                .filter(|b| matches!(b, Behavior::CrashRestart { .. }))
                .count()
        };
        let full = defection_patterns(&spec, &protocol, 10_000);
        assert_eq!(full.len(), 16);
        assert!(crash_count(&full) > 0);
        // A cap below the crash-extended total (16) falls back to the
        // exact silent-only enumeration (12).
        let guarded = defection_patterns(&spec, &protocol, 12);
        assert_eq!(guarded.len(), 12);
        assert_eq!(crash_count(&guarded), 0);
    }

    #[test]
    fn indemnified_example2_safe_under_all_defections() {
        let (mut spec, ids) = fixtures::example2();
        spec.add_indemnity(ids.broker1, ids.sale1, Money::from_dollars(20))
            .unwrap();
        let report = sweep_spec(&spec, 10_000).unwrap();
        assert!(report.all_safe(), "violations: {:?}", report.violations);
        assert!(report.all_honest_preferred);
        assert!(report.runs > 50);
    }

    #[test]
    fn figure7_with_greedy_plan_safe() {
        let (mut spec, ids) = fixtures::figure7();
        let plan = trustseq_core::indemnity::greedy_plan(&spec, ids.consumer);
        plan.apply(&mut spec).unwrap();
        let report = sweep_spec(&spec, 3_000).unwrap();
        assert!(report.all_safe(), "violations: {:?}", report.violations);
    }

    /// §4.2.3 variant 1 is feasible, and the simulator surfaces a nuance
    /// the paper leaves implicit: the paper's safety notion is about
    /// *commitments* (an agreed commitment is binding), so once the
    /// consumer complies with t1's notification its document-1 purchase
    /// completes. If broker 2's side then walks away at execution time —
    /// violating its commitment — the consumer is left holding document 1
    /// without document 2. The consumer's *deposits* are individually
    /// protected (escrow refunds), only the bundle linkage is exposed; an
    /// indemnity from broker 2 closes exactly that gap.
    #[test]
    fn direct_trust_variant_exposes_bundle_risk_without_indemnity() {
        let (mut spec, ids) = fixtures::example2();
        spec.add_trust(ids.source1, ids.broker1).unwrap();
        let report = sweep_spec(&spec, 10_000).unwrap();
        assert!(report.all_honest_preferred);
        // Every violation is the consumer's bundle linkage, nothing else.
        assert!(!report.violations.is_empty());
        for (_, harmed) in &report.violations {
            assert_eq!(*harmed, ids.consumer);
        }

        // Broker 2 indemnifying its sale closes the gap entirely.
        spec.add_indemnity(ids.broker2, ids.sale2, Money::from_dollars(10))
            .unwrap();
        let report = sweep_spec(&spec, 10_000).unwrap();
        assert!(report.all_safe(), "violations: {:?}", report.violations);
        assert!(report.all_honest_preferred);
    }

    /// The §9 shared-escrow extension: one trusted component mediates the
    /// whole bundle. Feasible only with delegation semantics, and safe
    /// under every defection pattern — the escrow's all-or-nothing
    /// guarantee replaces both the consumer's conjunction and the brokers'
    /// red edges.
    #[test]
    fn shared_escrow_extension_safe_under_all_defections() {
        let (spec, _) = fixtures::example2_shared_escrow();
        let seq =
            trustseq_core::synthesize_with(&spec, trustseq_core::BuildOptions::EXTENDED).unwrap();
        let protocol = Protocol::from_sequence(&spec, &seq);
        let report = sweep(&spec, &protocol, 10_000, 4).unwrap();
        assert!(report.all_safe(), "violations: {:?}", report.violations);
        assert!(report.all_honest_preferred);
        assert!(report.runs > 100);
    }

    /// §9's hierarchy of trust: a bridged cross-domain sale through two
    /// linked escrows is safe under every defection pattern.
    #[test]
    fn cross_domain_bridge_safe_under_all_defections() {
        let (spec, _) = fixtures::cross_domain_sale();
        let report = sweep_spec(&spec, 10_000).unwrap();
        assert!(report.all_safe(), "violations: {:?}", report.violations);
        assert!(report.all_honest_preferred);
    }

    /// §3.2's composed documents: the publisher assembles the patent from
    /// components bought from two sources. Safe under every defection
    /// pattern — if either source defects, the publisher never buys, never
    /// assembles, and everyone unwinds.
    #[test]
    fn patent_assembly_safe_under_all_defections() {
        let (spec, _) = fixtures::patent_assembly();
        let report = sweep_spec(&spec, 10_000).unwrap();
        assert!(report.all_safe(), "violations: {:?}", report.violations);
        assert!(report.all_honest_preferred);
    }

    #[test]
    fn pattern_enumeration_caps() {
        let (spec, _) = fixtures::example1();
        let sequence = trustseq_core::synthesize(&spec).unwrap();
        let protocol = Protocol::from_sequence(&spec, &sequence);
        let patterns = defection_patterns(&spec, &protocol, 5);
        assert_eq!(patterns.len(), 5);
        // The first pattern is all-honest.
        assert!(patterns[0].is_all_honest());
    }

    #[test]
    fn report_display() {
        let (spec, _) = fixtures::example1();
        let report = sweep_spec(&spec, 100).unwrap();
        assert!(report.to_string().contains("16 runs"));
    }

    #[test]
    fn behavior_map_naming_an_unknown_agent_is_rejected() {
        let (spec, _) = fixtures::example1();
        let sequence = trustseq_core::synthesize(&spec).unwrap();
        let protocol = Protocol::from_sequence(&spec, &sequence);
        let stranger = AgentId::new(999);
        let behaviors = BehaviorMap::all_honest().with(stranger, Behavior::ABSENT);
        let err = Simulation::new(&spec, &protocol, &behaviors)
            .run()
            .unwrap_err();
        assert!(
            matches!(err, crate::SimError::InvalidBehavior { agent, .. } if agent == stranger),
            "{err:?}"
        );
        // Trusted components are not principals: assigning them a
        // behaviour is equally malformed.
        let (spec2, ids2) = fixtures::example1();
        let _ = spec2;
        let behaviors = BehaviorMap::all_honest().with(ids2.t1, Behavior::ABSENT);
        let err = Simulation::new(&spec, &protocol, &behaviors)
            .run()
            .unwrap_err();
        assert!(
            matches!(err, crate::SimError::InvalidBehavior { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn protocol_from_another_spec_is_rejected() {
        // A figure-7 protocol run against example #1's spec references
        // participants example #1 never declared.
        let (spec, _) = fixtures::example1();
        let (mut other, oids) = fixtures::figure7();
        let plan = trustseq_core::indemnity::greedy_plan(&other, oids.consumer);
        plan.apply(&mut other).unwrap();
        let sequence = trustseq_core::synthesize(&other).unwrap();
        let protocol = Protocol::from_sequence(&other, &sequence);
        let err = Simulation::new(&spec, &protocol, &BehaviorMap::all_honest())
            .run()
            .unwrap_err();
        assert!(
            matches!(err, crate::SimError::ProtocolMismatch { .. }),
            "{err:?}"
        );
    }
}
