//! Wire messages between simulated participants.
//!
//! Every protocol step the runner executes becomes one [`Message`] on the
//! simulated network. Messages have a compact binary encoding (used to
//! measure bytes-on-the-wire in the cost-of-mistrust benchmarks) with a
//! lossless decode.

use crate::time::SimTime;
use crate::SimError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::fmt;
use trustseq_model::{Action, AgentId, ItemId, Money};

/// A message on the simulated network: an [`Action`] stamped with its send
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// When the message was sent.
    pub at: SimTime,
    /// The action the message carries out.
    pub action: Action,
}

impl Message {
    /// Creates a message.
    pub fn new(at: SimTime, action: Action) -> Self {
        Message { at, action }
    }

    /// Encodes the message into a compact binary frame.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u64(self.at.ticks());
        let (tag, from, to, payload) = match self.action {
            Action::Give { from, to, item } => (0u8, from, to, item.index() as i64),
            Action::Pay { from, to, amount } => (1, from, to, amount.cents()),
            Action::InverseGive { from, to, item } => (2, from, to, item.index() as i64),
            Action::InversePay { from, to, amount } => (3, from, to, amount.cents()),
            Action::Notify { from, to } => (4, from, to, 0),
        };
        buf.put_u8(tag);
        buf.put_u32(from.index() as u32);
        buf.put_u32(to.index() as u32);
        buf.put_i64(payload);
        buf.freeze()
    }

    /// Decodes a frame produced by [`Message::encode`].
    ///
    /// # Errors
    ///
    /// [`SimError::MalformedFrame`] when the frame is truncated or carries an
    /// unknown tag.
    pub fn decode(mut frame: Bytes) -> Result<Self, SimError> {
        if frame.len() != 25 {
            return Err(SimError::MalformedFrame {
                len: frame.len(),
                reason: "expected a 25-byte frame",
            });
        }
        let at = SimTime::from_ticks(frame.get_u64());
        let tag = frame.get_u8();
        let from = AgentId::new(frame.get_u32());
        let to = AgentId::new(frame.get_u32());
        let payload = frame.get_i64();
        let action = match tag {
            0 => Action::Give {
                from,
                to,
                item: ItemId::new(payload as u32),
            },
            1 => Action::Pay {
                from,
                to,
                amount: Money::from_cents(payload),
            },
            2 => Action::InverseGive {
                from,
                to,
                item: ItemId::new(payload as u32),
            },
            3 => Action::InversePay {
                from,
                to,
                amount: Money::from_cents(payload),
            },
            4 => Action::Notify { from, to },
            _ => {
                return Err(SimError::MalformedFrame {
                    len: 25,
                    reason: "unknown action tag",
                })
            }
        };
        Ok(Message { at, action })
    }

    /// The size of the encoded frame in bytes (constant, but exposed for
    /// wire-cost accounting).
    pub fn encoded_len(&self) -> usize {
        25
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.at, self.action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(action: Action) {
        let msg = Message::new(SimTime::from_ticks(42), action);
        let decoded = Message::decode(msg.encode()).unwrap();
        assert_eq!(decoded, msg);
        assert_eq!(msg.encode().len(), msg.encoded_len());
    }

    #[test]
    fn all_action_kinds_roundtrip() {
        let a = AgentId::new(3);
        let b = AgentId::new(7);
        roundtrip(Action::give(a, b, ItemId::new(5)));
        roundtrip(Action::pay(a, b, Money::from_cents(123_456)));
        roundtrip(Action::give(a, b, ItemId::new(5)).inverse().unwrap());
        roundtrip(Action::pay(a, b, Money::from_cents(-50)).inverse().unwrap());
        roundtrip(Action::notify(a, b));
    }

    #[test]
    fn truncated_frames_rejected() {
        let msg = Message::new(
            SimTime::ZERO,
            Action::notify(AgentId::new(0), AgentId::new(1)),
        );
        let mut bytes = msg.encode();
        let short = bytes.split_to(10);
        assert!(matches!(
            Message::decode(short),
            Err(SimError::MalformedFrame { .. })
        ));
    }

    #[test]
    fn unknown_tag_rejected() {
        let msg = Message::new(
            SimTime::ZERO,
            Action::notify(AgentId::new(0), AgentId::new(1)),
        );
        let mut raw = BytesMut::from(&msg.encode()[..]);
        raw[8] = 99; // corrupt the tag byte
        assert!(matches!(
            Message::decode(raw.freeze()),
            Err(SimError::MalformedFrame { .. })
        ));
    }

    #[test]
    fn display_shows_time_and_action() {
        let msg = Message::new(
            SimTime::from_ticks(3),
            Action::pay(AgentId::new(0), AgentId::new(1), Money::from_dollars(2)),
        );
        assert_eq!(msg.to_string(), "[t=3] pay[a0->a1]($2.00)");
    }
}
