//! The asset ledger: who holds what, with conservation checking.

use crate::SimError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use trustseq_model::{Action, AgentId, Assembly, ExchangeSpec, ItemId, Money};

/// Tracks every participant's cash balance and item holdings during a
/// simulation, enforcing two invariants after every transfer:
///
/// * **conservation** — total cash and per-item counts never change;
/// * **escrow solvency** — a participant cannot send cash it does not have
///   or an item it does not hold.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ledger {
    cash: BTreeMap<AgentId, Money>,
    items: BTreeMap<(AgentId, ItemId), u32>,
    total_cash: Money,
    /// Conserved *weighted* item mass: an assembly output weighs the sum of
    /// its inputs (base items weigh 1), so composition (§3.2) conserves it.
    total_mass: u64,
    assemblies: Vec<Assembly>,
    item_weight: BTreeMap<ItemId, u64>,
}

impl Ledger {
    /// Sets up the ledger for a specification: every principal starts with
    /// enough cash to cover all prices and indemnities (the paper's solvency
    /// assumption — the "poor broker" is modelled as a graph constraint, not
    /// as ledger poverty); each item's original holders get their copies.
    pub fn for_spec(spec: &ExchangeSpec) -> Self {
        let bankroll: Money = spec
            .deals()
            .iter()
            .map(|d| d.price())
            .chain(spec.indemnities().iter().map(|i| i.amount))
            .sum();
        let mut cash = BTreeMap::new();
        for p in spec.principals() {
            cash.insert(p.id(), bankroll);
        }
        for t in spec.trusted_components() {
            cash.insert(t.id(), Money::ZERO);
        }

        // Original item holders: net sellers — except assembly outputs,
        // which the assembler composes rather than originally holds.
        let mut balance: BTreeMap<(AgentId, ItemId), i64> = BTreeMap::new();
        for d in spec.deals() {
            *balance.entry((d.seller(), d.item())).or_insert(0) += 1;
            *balance.entry((d.buyer(), d.item())).or_insert(0) -= 1;
        }
        for a in spec.assemblies() {
            balance.remove(&(a.assembler, a.output));
        }
        let mut items = BTreeMap::new();
        for ((agent, item), n) in balance {
            if n > 0 {
                items.insert((agent, item), n as u32);
            }
        }

        // Item weights: base items weigh 1; an assembly output weighs the
        // sum of its inputs (acyclic by construction).
        let assemblies: Vec<Assembly> = spec.assemblies().to_vec();
        let mut item_weight: BTreeMap<ItemId, u64> = BTreeMap::new();
        fn weight(item: ItemId, assemblies: &[Assembly], memo: &mut BTreeMap<ItemId, u64>) -> u64 {
            if let Some(&w) = memo.get(&item) {
                return w;
            }
            let w = match assemblies.iter().find(|a| a.output == item) {
                Some(a) => a.inputs.iter().map(|&i| weight(i, assemblies, memo)).sum(),
                None => 1,
            };
            memo.insert(item, w);
            w
        }
        for item in spec.items() {
            weight(item.id(), &assemblies, &mut item_weight);
        }

        let total_cash = cash.values().copied().sum();
        let total_mass = items
            .iter()
            .map(|(&(_, item), &n)| u64::from(n) * item_weight.get(&item).copied().unwrap_or(1))
            .sum();
        Ledger {
            cash,
            items,
            total_cash,
            total_mass,
            assemblies,
            item_weight,
        }
    }

    /// The assembly `agent` could perform right now to obtain `item`, if
    /// one is declared and its inputs are all held.
    fn ready_assembly(&self, agent: AgentId, item: ItemId) -> Option<&Assembly> {
        self.assemblies
            .iter()
            .find(|a| a.assembler == agent && a.output == item)
            .filter(|a| a.inputs.iter().all(|&i| self.items_of(agent, i) > 0))
    }

    /// A participant's cash balance.
    pub fn cash_of(&self, agent: AgentId) -> Money {
        self.cash.get(&agent).copied().unwrap_or(Money::ZERO)
    }

    /// How many copies of `item` a participant holds.
    pub fn items_of(&self, agent: AgentId, item: ItemId) -> u32 {
        self.items.get(&(agent, item)).copied().unwrap_or(0)
    }

    /// Whether `agent` can currently perform `action` (has the cash/item,
    /// or can compose the item from held components, §3.2).
    pub fn can_apply(&self, action: &Action) -> bool {
        match *action {
            Action::Give { from, item, .. } => {
                self.items_of(from, item) > 0 || self.ready_assembly(from, item).is_some()
            }
            Action::Pay { from, amount, .. } => self.cash_of(from) >= amount,
            // Inverses move assets back from the original receiver.
            Action::InverseGive { to, item, .. } => self.items_of(to, item) > 0,
            Action::InversePay { to, amount, .. } => self.cash_of(to) >= amount,
            Action::Notify { .. } => true,
        }
    }

    /// Applies a transfer action to the ledger.
    ///
    /// # Errors
    ///
    /// [`SimError::InsufficientAssets`] when the sender lacks the cash or
    /// item; the ledger is unchanged in that case.
    pub fn apply(&mut self, action: &Action) -> Result<(), SimError> {
        if !self.can_apply(action) {
            return Err(SimError::InsufficientAssets { action: *action });
        }
        match *action {
            Action::Give { from, to, item } => {
                if self.items_of(from, item) == 0 {
                    // Compose the item from its components first.
                    let assembly = self
                        .ready_assembly(from, item)
                        .expect("can_apply was checked")
                        .clone();
                    for &input in &assembly.inputs {
                        let slot = self.items.entry((from, input)).or_insert(0);
                        *slot -= 1;
                        if *slot == 0 {
                            self.items.remove(&(from, input));
                        }
                    }
                    *self.items.entry((from, item)).or_insert(0) += 1;
                }
                self.move_item(from, to, item)
            }
            Action::InverseGive { from, to, item } => self.move_item(to, from, item),
            Action::Pay { from, to, amount } => self.move_cash(from, to, amount),
            Action::InversePay { from, to, amount } => self.move_cash(to, from, amount),
            Action::Notify { .. } => {}
        }
        debug_assert!(self.check_conservation().is_ok());
        Ok(())
    }

    fn move_item(&mut self, from: AgentId, to: AgentId, item: ItemId) {
        let src = self.items.entry((from, item)).or_insert(0);
        *src -= 1;
        if *src == 0 {
            self.items.remove(&(from, item));
        }
        *self.items.entry((to, item)).or_insert(0) += 1;
    }

    fn move_cash(&mut self, from: AgentId, to: AgentId, amount: Money) {
        *self.cash.entry(from).or_insert(Money::ZERO) -= amount;
        *self.cash.entry(to).or_insert(Money::ZERO) += amount;
    }

    /// Verifies conservation of cash and items.
    ///
    /// # Errors
    ///
    /// [`SimError::ConservationViolated`] if any total drifted.
    pub fn check_conservation(&self) -> Result<(), SimError> {
        let cash_now: Money = self.cash.values().copied().sum();
        if cash_now != self.total_cash {
            return Err(SimError::ConservationViolated {
                what: "cash total drifted",
            });
        }
        let mass_now: u64 = self
            .items
            .iter()
            .map(|(&(_, item), &n)| {
                u64::from(n) * self.item_weight.get(&item).copied().unwrap_or(1)
            })
            .sum();
        if mass_now != self.total_mass {
            return Err(SimError::ConservationViolated {
                what: "weighted item mass drifted",
            });
        }
        Ok(())
    }
}

impl fmt::Display for Ledger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (agent, cash) in &self.cash {
            let items: Vec<String> = self
                .items
                .iter()
                .filter(|((a, _), _)| a == agent)
                .map(|((_, i), n)| format!("{i}x{n}"))
                .collect();
            writeln!(f, "  {agent}: {cash} [{}]", items.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustseq_core::fixtures;

    #[test]
    fn initial_state_from_example1() {
        let (spec, ids) = fixtures::example1();
        let ledger = Ledger::for_spec(&spec);
        // Bankroll covers both prices.
        assert_eq!(ledger.cash_of(ids.consumer), Money::from_dollars(180));
        assert_eq!(ledger.cash_of(ids.t1), Money::ZERO);
        assert_eq!(ledger.items_of(ids.producer, ids.doc), 1);
        assert_eq!(ledger.items_of(ids.broker, ids.doc), 0);
        ledger.check_conservation().unwrap();
    }

    #[test]
    fn transfers_move_assets() {
        let (spec, ids) = fixtures::example1();
        let mut ledger = Ledger::for_spec(&spec);
        ledger
            .apply(&Action::give(ids.producer, ids.t2, ids.doc))
            .unwrap();
        assert_eq!(ledger.items_of(ids.t2, ids.doc), 1);
        assert_eq!(ledger.items_of(ids.producer, ids.doc), 0);
        ledger
            .apply(&Action::pay(ids.consumer, ids.t1, Money::from_dollars(100)))
            .unwrap();
        assert_eq!(ledger.cash_of(ids.t1), Money::from_dollars(100));
        ledger.check_conservation().unwrap();
    }

    #[test]
    fn inverse_actions_move_assets_back() {
        let (spec, ids) = fixtures::example1();
        let mut ledger = Ledger::for_spec(&spec);
        let pay = Action::pay(ids.consumer, ids.t1, Money::from_dollars(100));
        ledger.apply(&pay).unwrap();
        ledger.apply(&pay.inverse().unwrap()).unwrap();
        assert_eq!(ledger.cash_of(ids.consumer), Money::from_dollars(180));
        assert_eq!(ledger.cash_of(ids.t1), Money::ZERO);

        let give = Action::give(ids.producer, ids.t2, ids.doc);
        ledger.apply(&give).unwrap();
        ledger.apply(&give.inverse().unwrap()).unwrap();
        assert_eq!(ledger.items_of(ids.producer, ids.doc), 1);
    }

    #[test]
    fn overdrafts_are_rejected() {
        let (spec, ids) = fixtures::example1();
        let mut ledger = Ledger::for_spec(&spec);
        // t1 has no cash: it cannot pay anyone.
        let bad = Action::pay(ids.t1, ids.broker, Money::from_dollars(1));
        assert!(!ledger.can_apply(&bad));
        assert!(matches!(
            ledger.apply(&bad),
            Err(SimError::InsufficientAssets { .. })
        ));
        // The broker does not hold the document yet.
        let bad = Action::give(ids.broker, ids.t1, ids.doc);
        assert!(ledger.apply(&bad).is_err());
    }

    #[test]
    fn refund_without_deposit_is_rejected() {
        let (spec, ids) = fixtures::example1();
        let mut ledger = Ledger::for_spec(&spec);
        let refund = Action::pay(ids.consumer, ids.t1, Money::from_dollars(100))
            .inverse()
            .unwrap();
        // t1 holds nothing to refund.
        assert!(ledger.apply(&refund).is_err());
    }

    #[test]
    fn notify_is_free() {
        let (spec, ids) = fixtures::example1();
        let mut ledger = Ledger::for_spec(&spec);
        let before = ledger.clone();
        ledger.apply(&Action::notify(ids.t1, ids.broker)).unwrap();
        assert_eq!(ledger, before);
    }

    #[test]
    fn assembly_composes_and_conserves_weighted_mass() {
        let (spec, ids) = fixtures::patent_assembly();
        let mut ledger = Ledger::for_spec(&spec);
        // The publisher holds no patent initially (it must compose it).
        assert_eq!(ledger.items_of(ids.publisher, ids.patent), 0);
        // Cannot deliver before acquiring the components.
        let deliver = Action::give(ids.publisher, ids.t_sale, ids.patent);
        assert!(!ledger.can_apply(&deliver));
        // Acquire the components directly for the test.
        ledger
            .apply(&Action::give(ids.text_source, ids.publisher, ids.text))
            .unwrap();
        ledger
            .apply(&Action::give(
                ids.diagram_source,
                ids.publisher,
                ids.diagrams,
            ))
            .unwrap();
        // Now delivery implicitly assembles: components consumed, patent
        // delivered, weighted mass conserved.
        assert!(ledger.can_apply(&deliver));
        ledger.apply(&deliver).unwrap();
        assert_eq!(ledger.items_of(ids.publisher, ids.text), 0);
        assert_eq!(ledger.items_of(ids.publisher, ids.diagrams), 0);
        assert_eq!(ledger.items_of(ids.t_sale, ids.patent), 1);
        ledger.check_conservation().unwrap();
    }

    #[test]
    fn display_lists_every_account() {
        let (spec, _) = fixtures::example1();
        let ledger = Ledger::for_spec(&spec);
        let s = ledger.to_string();
        assert_eq!(s.lines().count(), 5); // 3 principals + 2 trusted
    }
}
