//! Virtual time for the discrete-event simulator.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Add;

/// A point in virtual time, measured in ticks.
///
/// The protocol runner advances the clock by one tick per global protocol
/// step; escrow deadlines are expressed in ticks. §2.2 of the paper requires
/// deadlines to be modelled explicitly ("deadlines allotted are always
/// sufficiently generous"), which the runner honours by setting every
/// deadline past the last protocol step.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from a tick count.
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// The tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// The next tick.
    #[must_use]
    pub const fn next(self) -> SimTime {
        SimTime(self.0 + 1)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let t0 = SimTime::ZERO;
        let t5 = SimTime::from_ticks(5);
        assert!(t0 < t5);
        assert_eq!(t0 + 5, t5);
        assert_eq!(t5.next().ticks(), 6);
        assert_eq!(t5.to_string(), "t=5");
    }
}
