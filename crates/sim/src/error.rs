//! Error type for the simulator.

use std::error::Error;
use std::fmt;
use trustseq_core::CoreError;
use trustseq_model::{Action, AgentId, ModelError};

/// Errors produced by the simulator substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A model-layer error.
    Model(ModelError),
    /// A core-layer (synthesis) error.
    Core(CoreError),
    /// A participant tried to transfer assets it does not hold.
    InsufficientAssets {
        /// The offending action.
        action: Action,
    },
    /// The ledger's conservation invariant broke (indicates a simulator
    /// bug, never a protocol property).
    ConservationViolated {
        /// Which total drifted.
        what: &'static str,
    },
    /// A wire frame could not be decoded.
    MalformedFrame {
        /// The frame's length.
        len: usize,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// A *trusted component* failed to honour its guarantee — the simulator
    /// treats this as a fatal modelling error.
    TrustedMisbehaved {
        /// The trusted component.
        trusted: AgentId,
        /// What it failed to do.
        what: &'static str,
    },
    /// A behaviour assignment names an agent the specification does not
    /// declare as a principal.
    InvalidBehavior {
        /// The offending agent.
        agent: AgentId,
        /// Why the assignment was rejected.
        reason: &'static str,
    },
    /// The protocol handed to a simulation does not fit the specification
    /// (e.g. it was synthesised from a different spec).
    ProtocolMismatch {
        /// The inconsistency found.
        what: &'static str,
    },
    /// A sweep worker thread panicked (indicates a simulator bug).
    WorkerPanicked,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Model(e) => write!(f, "model error: {e}"),
            SimError::Core(e) => write!(f, "core error: {e}"),
            SimError::InsufficientAssets { action } => {
                write!(f, "insufficient assets to perform {action}")
            }
            SimError::ConservationViolated { what } => {
                write!(f, "ledger conservation violated: {what}")
            }
            SimError::MalformedFrame { len, reason } => {
                write!(f, "malformed {len}-byte frame: {reason}")
            }
            SimError::TrustedMisbehaved { trusted, what } => {
                write!(f, "trusted component {trusted} misbehaved: {what}")
            }
            SimError::InvalidBehavior { agent, reason } => {
                write!(f, "invalid behaviour for {agent}: {reason}")
            }
            SimError::ProtocolMismatch { what } => {
                write!(f, "protocol does not fit the specification: {what}")
            }
            SimError::WorkerPanicked => f.write_str("a sweep worker thread panicked"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Model(e) => Some(e),
            SimError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for SimError {
    fn from(e: ModelError) -> Self {
        SimError::Model(e)
    }
}

impl From<CoreError> for SimError {
    fn from(e: CoreError) -> Self {
        SimError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = SimError::ConservationViolated { what: "cash" };
        assert!(e.to_string().contains("cash"));
        assert!(e.source().is_none());
        let e: SimError = ModelError::EmptySpec.into();
        assert!(e.source().is_some());
        let e: SimError = CoreError::Infeasible { remaining_edges: 2 }.into();
        assert!(e.to_string().contains("core error"));
    }
}
