//! The chaos-sweep harness: runs the resilient distributed engine under
//! matrices of seeded fault plans and checks every decided verdict against
//! the centralised [`Reducer`](trustseq_core::Reducer).
//!
//! The harness is the robustness analogue of [`harness::sweep`](crate::harness::sweep):
//! where the defection sweep enumerates *agent* misbehaviour, the chaos
//! sweep enumerates *network and node* misbehaviour — drop probabilities,
//! duplication, reordering delays and crash/restart schedules — and
//! asserts three properties on every cell:
//!
//! 1. **agreement** — whenever the resilient run decides, its verdict and
//!    removal *set* equal the centralised reduction's (the rewrite system
//!    is confluent, so the fixpoint removal set is unique);
//! 2. **soundness** — even undecided runs only ever remove edges the
//!    centralised reduction removes;
//! 3. **baseline identity** — under the fault-free plan the resilient
//!    engine's outcome is byte-identical to
//!    [`DistributedReduction::run`]'s.

use crate::SimError;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use trustseq_core::{analyze, obs, EdgeId};
use trustseq_dist::{Crash, DistributedReduction, FaultPlan, ResilientConfig};
use trustseq_model::ExchangeSpec;

/// A grid of fault intensities to sweep a specification under.
#[derive(Debug, Clone)]
pub struct ChaosMatrix {
    /// Drop probabilities (per-mille) to sweep; `0` exercises the
    /// baseline-identity check.
    pub drop_per_mille: Vec<u16>,
    /// Seeded plans per drop probability.
    pub seeds_per_cell: u64,
    /// Duplication probability (per-mille) applied to every lossy cell.
    pub dup_per_mille: u16,
    /// Frame-corruption probability (per-mille) applied to every lossy
    /// cell — corrupted frames must die as typed decode failures, never
    /// panics or wrong verdicts.
    pub corrupt_per_mille: u16,
    /// Maximum extra delivery delay (rounds) in lossy cells — exercises
    /// reordering.
    pub max_extra_delay: u64,
    /// Whether every third lossy seed also crashes (and restarts) one
    /// participant, cycling through them.
    pub with_crashes: bool,
    /// Protocol tuning for the resilient runs.
    pub config: ResilientConfig,
}

impl Default for ChaosMatrix {
    /// The acceptance matrix: drop p ∈ {0, 0.1, 0.3}, 50 seeds each,
    /// duplication, reordering and crash/restart schedules on.
    fn default() -> Self {
        ChaosMatrix {
            drop_per_mille: vec![0, 100, 300],
            seeds_per_cell: 50,
            dup_per_mille: 50,
            corrupt_per_mille: 50,
            max_extra_delay: 2,
            with_crashes: true,
            config: ResilientConfig::default(),
        }
    }
}

impl ChaosMatrix {
    /// A small matrix for quick checks: drop p ∈ {0, 0.2}, 10 seeds each.
    pub fn quick() -> Self {
        ChaosMatrix {
            drop_per_mille: vec![0, 200],
            seeds_per_cell: 10,
            ..ChaosMatrix::default()
        }
    }
}

/// What a chaos sweep observed. The sweep never panics on a property
/// violation — it counts them, so a harness can report every cell.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Resilient runs performed.
    pub runs: usize,
    /// Runs that decided feasibility.
    pub decided: usize,
    /// Runs that degraded to an undecided verdict.
    pub undecided: usize,
    /// Decided verdicts disagreeing with the centralised reducer.
    pub verdict_mismatches: usize,
    /// Decided runs whose removal set differs from the centralised one,
    /// plus any run (decided or not) removing an edge the centralised
    /// reduction keeps.
    pub removal_set_mismatches: usize,
    /// Fault-free runs not byte-identical to the reliable engine.
    pub baseline_divergences: usize,
    /// Total retransmissions across all runs.
    pub retransmissions: usize,
    /// Total frames rejected by the codec across all runs (the corruption
    /// fault class surfacing as typed decode failures).
    pub decode_failures: usize,
    /// Total duplicate announcements dropped by sequence-number dedup.
    pub dedup_drops: usize,
    /// Total first-transmission announcements across all runs.
    pub messages: usize,
    /// The longest run, in rounds.
    pub max_rounds_seen: usize,
}

impl ChaosReport {
    /// `true` when every property held in every cell.
    pub fn clean(&self) -> bool {
        self.verdict_mismatches == 0
            && self.removal_set_mismatches == 0
            && self.baseline_divergences == 0
    }

    fn absorb(&mut self, other: &ChaosReport) {
        self.runs += other.runs;
        self.decided += other.decided;
        self.undecided += other.undecided;
        self.verdict_mismatches += other.verdict_mismatches;
        self.removal_set_mismatches += other.removal_set_mismatches;
        self.baseline_divergences += other.baseline_divergences;
        self.retransmissions += other.retransmissions;
        self.decode_failures += other.decode_failures;
        self.dedup_drops += other.dedup_drops;
        self.messages += other.messages;
        self.max_rounds_seen = self.max_rounds_seen.max(other.max_rounds_seen);
    }
}

impl fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} chaos runs: {} decided, {} undecided, {} retransmissions, \
             {} bad frames, {} dup drops \
             ({} verdict / {} removal-set mismatches, {} baseline divergences, \
             longest run {} rounds)",
            self.runs,
            self.decided,
            self.undecided,
            self.retransmissions,
            self.decode_failures,
            self.dedup_drops,
            self.verdict_mismatches,
            self.removal_set_mismatches,
            self.baseline_divergences,
            self.max_rounds_seen
        )
    }
}

/// Sweeps `spec` under every cell of `matrix` and reports.
///
/// # Errors
///
/// Propagates graph-construction failures; individual fault plans never
/// error (the harness only builds plans naming real participants).
pub fn chaos_sweep(spec: &ExchangeSpec, matrix: &ChaosMatrix) -> Result<ChaosReport, SimError> {
    chaos_sweep_cached(spec, matrix, None)
}

/// [`chaos_sweep`] with an optional
/// [`AnalysisCache`](trustseq_core::AnalysisCache) for the centralised
/// reference reduction. Sound because the comparison uses the removal
/// *set*, not the step order: by confluence the fixpoint removal set is
/// unique, so a cache-translated outcome gives the same reference the
/// deterministic reducer would.
///
/// Cells of the matrix run in parallel on the persistent
/// [`trustseq_core::pool`]; every cell is seeded independently and the
/// per-cell reports are merged in cell order, so the merged report is
/// deterministic and identical to a serial sweep's.
///
/// # Errors
///
/// As [`chaos_sweep`].
pub fn chaos_sweep_cached(
    spec: &ExchangeSpec,
    matrix: &ChaosMatrix,
    cache: Option<&trustseq_core::AnalysisCache>,
) -> Result<ChaosReport, SimError> {
    let central = match cache {
        Some(cache) => cache.analyze(spec).map_err(SimError::from)?,
        None => analyze(spec)?,
    };
    let central_set: BTreeSet<EdgeId> = central.trace.steps().iter().map(|s| s.edge).collect();
    let baseline = DistributedReduction::new(spec)?.run();
    let participants: Vec<_> = DistributedReduction::new(spec)?.participants().collect();

    let run_cell = |drop: u16, seed: u64| -> Result<ChaosReport, SimError> {
        let mut plan = FaultPlan::seeded(seed);
        if drop > 0 {
            plan = plan
                .with_drop_per_mille(drop)
                .with_dup_per_mille(matrix.dup_per_mille)
                .with_corrupt_per_mille(matrix.corrupt_per_mille)
                .with_max_extra_delay(matrix.max_extra_delay);
            if matrix.with_crashes && seed.is_multiple_of(3) && !participants.is_empty() {
                let victim = participants[(seed as usize / 3) % participants.len()];
                plan = plan.with_crash(
                    victim,
                    Crash {
                        at_round: 2,
                        restart_at: Some(3 + seed as usize % 4),
                    },
                );
            }
        }
        let out = DistributedReduction::new(spec)?.run_resilient(&plan, &matrix.config)?;

        let mut cell = ChaosReport {
            runs: 1,
            retransmissions: out.retransmissions,
            decode_failures: out.decode_failures,
            dedup_drops: out.dedup_drops,
            messages: out.messages,
            max_rounds_seen: out.rounds,
            ..ChaosReport::default()
        };
        let removal_set: BTreeSet<EdgeId> = out.removals.iter().map(|r| r.edge).collect();
        // Soundness: no run may remove an edge the centralised reduction
        // keeps.
        if !removal_set.is_subset(&central_set) {
            cell.removal_set_mismatches += 1;
        }
        match out.verdict.decided() {
            Some(feasible) => {
                cell.decided += 1;
                if feasible != central.feasible {
                    cell.verdict_mismatches += 1;
                }
                if removal_set != central_set {
                    cell.removal_set_mismatches += 1;
                }
            }
            None => cell.undecided += 1,
        }
        if plan.is_faultless() && out.as_dist_outcome().as_ref() != Some(&baseline) {
            cell.baseline_divergences += 1;
        }
        Ok(cell)
    };

    let cells: Vec<(u16, u64)> = matrix
        .drop_per_mille
        .iter()
        .flat_map(|&drop| (0..matrix.seeds_per_cell).map(move |seed| (drop, seed)))
        .collect();
    let results: Vec<Mutex<Option<Result<ChaosReport, SimError>>>> =
        cells.iter().map(|_| Mutex::new(None)).collect();
    let workers = trustseq_core::pool::size().clamp(1, cells.len().max(1));
    // Per-cell results land in indexed slots and are merged in cell order
    // below, so the report is byte-identical under either batch mode.
    match trustseq_core::pool::batch_mode() {
        trustseq_core::BatchMode::Stealing => {
            let next = AtomicUsize::new(0);
            trustseq_core::pool::broadcast(workers, &|_index| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(drop, seed)) = cells.get(i) else {
                    break;
                };
                *results[i].lock() = Some(run_cell(drop, seed));
            });
        }
        trustseq_core::BatchMode::Sharded => {
            trustseq_core::pool::broadcast_sharded(workers, cells.len(), &|_index, shard| {
                for i in shard {
                    let (drop, seed) = cells[i];
                    *results[i].lock() = Some(run_cell(drop, seed));
                }
            });
        }
    }

    let mut report = ChaosReport::default();
    for slot in results {
        let cell = slot.into_inner().expect("every cell was claimed")?;
        report.absorb(&cell);
    }
    // Aggregate after the merge so the emission order is deterministic
    // regardless of how the pool interleaved the cells.
    obs::with(|r| {
        r.counter("chaos.cells", report.runs as u64);
        r.counter("chaos.decided", report.decided as u64);
        r.counter("chaos.undecided", report.undecided as u64);
        r.counter("chaos.retransmissions", report.retransmissions as u64);
        r.counter("chaos.decode_failures", report.decode_failures as u64);
        r.counter("chaos.dedup_drops", report.dedup_drops as u64);
        r.observe("chaos.rounds_longest", report.max_rounds_seen as u64);
    });
    Ok(report)
}

/// Sweeps every named spec and merges the reports; the `&str` in the
/// return names the first spec with a dirty report, if any.
///
/// # Errors
///
/// Propagates the first per-spec failure.
pub fn chaos_sweep_all<'a>(
    specs: impl IntoIterator<Item = (&'a str, &'a ExchangeSpec)>,
    matrix: &ChaosMatrix,
) -> Result<(ChaosReport, Option<&'a str>), SimError> {
    chaos_sweep_all_cached(specs, matrix, None)
}

/// [`chaos_sweep_all`] with an optional shared
/// [`AnalysisCache`](trustseq_core::AnalysisCache) — structurally repeated
/// specs in the batch share one centralised reference reduction.
///
/// # Errors
///
/// Propagates the first per-spec failure.
pub fn chaos_sweep_all_cached<'a>(
    specs: impl IntoIterator<Item = (&'a str, &'a ExchangeSpec)>,
    matrix: &ChaosMatrix,
    cache: Option<&trustseq_core::AnalysisCache>,
) -> Result<(ChaosReport, Option<&'a str>), SimError> {
    let mut merged = ChaosReport::default();
    let mut first_dirty = None;
    for (name, spec) in specs {
        let report = chaos_sweep_cached(spec, matrix, cache)?;
        if !report.clean() && first_dirty.is_none() {
            first_dirty = Some(name);
        }
        merged.absorb(&report);
    }
    Ok((merged, first_dirty))
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustseq_core::fixtures;

    #[test]
    fn quick_matrix_is_clean_on_the_paper_examples() {
        for (name, spec) in [
            ("example1", fixtures::example1().0),
            ("example2", fixtures::example2().0),
        ] {
            let report = chaos_sweep(&spec, &ChaosMatrix::quick()).unwrap();
            assert!(report.clean(), "{name}: {report}");
            assert_eq!(report.runs, 20, "{name}");
            assert!(report.decided > 0, "{name}");
        }
    }

    #[test]
    fn lossy_cells_actually_retransmit() {
        let (spec, _) = fixtures::example1();
        let report = chaos_sweep(&spec, &ChaosMatrix::quick()).unwrap();
        assert!(report.retransmissions > 0, "{report}");
    }

    #[test]
    fn corrupting_cells_surface_decode_failures_without_violations() {
        let (spec, _) = fixtures::figure7();
        let matrix = ChaosMatrix {
            corrupt_per_mille: 300,
            ..ChaosMatrix::quick()
        };
        let report = chaos_sweep(&spec, &matrix).unwrap();
        assert!(report.clean(), "{report}");
        assert!(report.decode_failures > 0, "{report}");
    }

    #[test]
    fn merged_sweep_reports_dirty_spec_names() {
        let (e1, _) = fixtures::example1();
        let (e2, _) = fixtures::poor_broker();
        let (report, dirty) = chaos_sweep_all(
            [("example1", &e1), ("poor_broker", &e2)],
            &ChaosMatrix::quick(),
        )
        .unwrap();
        assert_eq!(dirty, None, "{report}");
        assert_eq!(report.runs, 40);
    }

    #[test]
    fn cached_sweep_is_identical_to_uncached() {
        let cache = trustseq_core::AnalysisCache::new();
        for spec in [fixtures::example1().0, fixtures::example2().0] {
            let plain = chaos_sweep(&spec, &ChaosMatrix::quick()).unwrap();
            let cached = chaos_sweep_cached(&spec, &ChaosMatrix::quick(), Some(&cache)).unwrap();
            assert_eq!(plain, cached);
        }
        // Sweep the same specs again: the centralised references must now
        // be served from the table.
        let before = cache.stats();
        let (e1, _) = fixtures::example1();
        let (e2, _) = fixtures::example2();
        let (merged, dirty) = chaos_sweep_all_cached(
            [("example1", &e1), ("example2", &e2)],
            &ChaosMatrix::quick(),
            Some(&cache),
        )
        .unwrap();
        assert_eq!(dirty, None, "{merged}");
        assert_eq!(cache.stats().hits, before.hits + 2);
        assert_eq!(cache.stats().entries, before.entries);
    }

    #[test]
    fn report_display_summarises() {
        let (spec, _) = fixtures::example1();
        let report = chaos_sweep(&spec, &ChaosMatrix::quick()).unwrap();
        let s = report.to_string();
        assert!(s.contains("chaos runs"), "{s}");
        assert!(s.contains("retransmissions"), "{s}");
    }
}
