//! The protocol runner: executes a synthesised protocol under a behaviour
//! assignment and reports every party's outcome.
//!
//! The runner is the empirical check of the paper's central claim: a
//! *feasible* exchange "can be carried out in such a way that no participant
//! ever risks losing money or goods without receiving everything promised in
//! exchange". Honest principals follow the protocol **cautiously** — they
//! only deposit once their protections are in place (required notifications
//! observed, promised collateral posted, required assets held) — while
//! defectors go silent at an arbitrary deposit point. Trusted components
//! always honour their guarantees: forward when everything arrived, refund
//! otherwise, resolve indemnities per their conditions.

use crate::behavior::BehaviorMap;
use crate::ledger::Ledger;
use crate::message::Message;
use crate::time::SimTime;
use crate::SimError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use trustseq_core::{Protocol, StepKind};
use trustseq_model::{Action, AgentId, ExchangeSpec, ExchangeState, Outcome};

/// Temporal configuration of a simulation (§2.2 of the paper models
/// deadlines explicitly; §9 defers their full treatment to future work).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SimConfig {
    /// How many ticks a trusted component holds a deposit before returning
    /// it (one protocol step = one tick). `None` reproduces the paper's
    /// standing assumption that "the deadlines allotted are always
    /// sufficiently generous".
    pub escrow_deadline: Option<u64>,
}

/// The result of one simulated protocol execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// The behaviours that produced this run.
    pub behaviors: BehaviorMap,
    /// The final exchange state (all executed actions).
    pub final_state: ExchangeState,
    /// Every principal's outcome classification.
    pub outcomes: BTreeMap<AgentId, Outcome>,
    /// All messages sent, in order.
    pub messages: Vec<Message>,
    /// Global protocol steps that were skipped (defection, failed
    /// protection, or unavailable assets).
    pub skipped_steps: Vec<usize>,
    /// The final ledger.
    pub ledger: Ledger,
}

impl SimReport {
    /// The paper's safety property: every *honest* principal ends in an
    /// acceptable state. (Defectors may end badly; that is their problem.)
    pub fn safety_holds(&self) -> bool {
        self.outcomes.iter().all(|(&agent, &outcome)| {
            !self.behaviors.of(agent).is_honest() || outcome.is_acceptable()
        })
    }

    /// Whether every principal reached its *preferred* state (expected when
    /// everybody is honest).
    pub fn all_preferred(&self) -> bool {
        self.outcomes.values().all(|&o| o == Outcome::Preferred)
    }

    /// Number of messages exchanged.
    pub fn message_count(&self) -> usize {
        self.messages.len()
    }

    /// Total bytes on the simulated wire.
    pub fn wire_bytes(&self) -> usize {
        self.messages.iter().map(Message::encoded_len).sum()
    }

    /// The party's ordered view of the run — its saga (§7.2).
    pub fn saga_view_of(&self, party: AgentId) -> trustseq_model::SagaView {
        trustseq_model::SagaView::extract(party, self.messages.iter().map(|m| m.action))
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "run [{}]: {} messages, safety {}",
            self.behaviors,
            self.message_count(),
            if self.safety_holds() {
                "OK"
            } else {
                "VIOLATED"
            }
        )?;
        for (agent, outcome) in &self.outcomes {
            writeln!(f, "  {agent}: {outcome}")?;
        }
        Ok(())
    }
}

/// Executes `protocol` for `spec` under `behaviors`.
#[derive(Debug)]
pub struct Simulation<'a> {
    spec: &'a ExchangeSpec,
    protocol: &'a Protocol,
    // Borrowed, not owned: defection sweeps run thousands of simulations
    // over precomputed behaviour maps, and the map is read-only here.
    behaviors: &'a BehaviorMap,
    config: SimConfig,
    acceptance: Option<&'a [trustseq_model::AcceptanceSpec]>,
}

impl<'a> Simulation<'a> {
    /// Creates a simulation with generous deadlines (the paper's standing
    /// assumption).
    pub fn new(spec: &'a ExchangeSpec, protocol: &'a Protocol, behaviors: &'a BehaviorMap) -> Self {
        Self::with_config(spec, protocol, behaviors, SimConfig::default())
    }

    /// Creates a simulation with an explicit temporal configuration.
    pub fn with_config(
        spec: &'a ExchangeSpec,
        protocol: &'a Protocol,
        behaviors: &'a BehaviorMap,
        config: SimConfig,
    ) -> Self {
        Simulation {
            spec,
            protocol,
            behaviors,
            config,
            acceptance: None,
        }
    }

    /// Reuses precomputed acceptance specifications (their generation is
    /// exponential in deals-per-principal, so sweeps compute them once).
    #[must_use]
    pub fn with_acceptance(mut self, acceptance: &'a [trustseq_model::AcceptanceSpec]) -> Self {
        self.acceptance = Some(acceptance);
        self
    }

    /// Runs the protocol to completion (including the deadline-expiry
    /// finalisation pass) and reports.
    ///
    /// ## Personas (§4.2.3)
    ///
    /// When a principal plays a trusted component's role (direct trust),
    /// the runner gives the component **persona semantics**: its account is
    /// the principal's account (transfers between them are virtual), and
    /// its outgoing *payment* to the other party is deferred until the
    /// persona principal has itself been paid on all its sales — the
    /// "risk-free access" the paper describes. If the persona is never
    /// secured, the held item is returned like any other escrow deposit.
    ///
    /// # Errors
    ///
    /// Malformed inputs are rejected up front: a [`BehaviorMap`] naming an
    /// agent that is not a declared principal
    /// ([`SimError::InvalidBehavior`]), or a protocol that does not fit
    /// the specification ([`SimError::ProtocolMismatch`]). Beyond that,
    /// only simulator-internal errors ([`SimError::ConservationViolated`],
    /// [`SimError::TrustedMisbehaved`]) — defections and failed exchanges
    /// are *reported*, not errors.
    pub fn run(&self) -> Result<SimReport, SimError> {
        let steps = self.protocol.steps();

        // Reject malformed inputs before touching any state, so the body
        // can index freely.
        for agent in self.behaviors.assigned() {
            if !self.spec.principals().any(|p| p.id() == agent) {
                return Err(SimError::InvalidBehavior {
                    agent,
                    reason: "not a declared principal of this exchange",
                });
            }
        }
        let indemnity_count = self.spec.indemnities().len();
        for step in steps {
            if let StepKind::IndemnityDeposit(idx) | StepKind::IndemnityRefund(idx) = step.kind {
                if idx >= indemnity_count {
                    return Err(SimError::ProtocolMismatch {
                        what: "indemnity index out of range",
                    });
                }
            }
            if self.spec.participant(step.actor).is_err()
                || self.spec.participant(step.action.recipient()).is_err()
            {
                return Err(SimError::ProtocolMismatch {
                    what: "step names an unknown participant",
                });
            }
        }

        let mut ledger = Ledger::for_spec(self.spec);
        let mut history = ExchangeState::new();
        let mut messages: Vec<Message> = Vec::new();
        let mut skipped: Vec<usize> = Vec::new();
        let mut executed: Vec<bool> = vec![false; steps.len()];
        let mut deposit_counter: BTreeMap<AgentId, u32> = BTreeMap::new();
        let mut clock = SimTime::ZERO;

        // Persona map: trusted component → the principal playing its role
        // (smallest id when mutual trust makes both eligible).
        let mut persona: BTreeMap<AgentId, AgentId> = BTreeMap::new();
        for t in self.spec.trusted_components() {
            let mut players: Vec<AgentId> = self
                .spec
                .deals_via(t.id())
                .flat_map(|d| [d.buyer(), d.seller()])
                .filter(|&x| self.spec.plays_role(t.id(), x))
                .collect();
            players.sort_unstable();
            players.dedup();
            if let Some(&x) = players.first() {
                persona.insert(t.id(), x);
            }
        }
        let alias = |a: AgentId| persona.get(&a).copied().unwrap_or(a);
        // Item hops routed inside a shared escrow (§9 extension) are
        // virtual: the component keeps the item.
        let internal = self.spec.internal_transfers();
        // Rewrites an action's material endpoints through the persona map;
        // `None` means the transfer is virtual (both sides are the same
        // account, or the hop is internal to a shared escrow) and has no
        // ledger effect.
        let materialize = |action: &Action| -> Option<Action> {
            match *action {
                Action::Give { from, to, item } | Action::InverseGive { from, to, item }
                    if internal.contains(&(from, to, item)) =>
                {
                    return None;
                }
                _ => {}
            }
            let rewritten = match *action {
                Action::Give { from, to, item } => Action::Give {
                    from: alias(from),
                    to: alias(to),
                    item,
                },
                Action::Pay { from, to, amount } => Action::Pay {
                    from: alias(from),
                    to: alias(to),
                    amount,
                },
                Action::InverseGive { from, to, item } => Action::InverseGive {
                    from: alias(from),
                    to: alias(to),
                    item,
                },
                Action::InversePay { from, to, amount } => Action::InversePay {
                    from: alias(from),
                    to: alias(to),
                    amount,
                },
                Action::Notify { .. } => return None,
            };
            (rewritten.actor() != rewritten.recipient()).then_some(rewritten)
        };

        // Deal-deposit steps expected by each trusted component (indemnity
        // collateral is tracked separately).
        // Keyed by the recipient's trusted-link *group* representative:
        // linked components (§9's hierarchy) enforce guarantees jointly.
        let mut expected_deposits: BTreeMap<AgentId, Vec<usize>> = BTreeMap::new();
        for (i, step) in steps.iter().enumerate() {
            if let StepKind::Deposit(_) = step.kind {
                expected_deposits
                    .entry(self.spec.trusted_group_of(step.action.recipient()))
                    .or_default()
                    .push(i);
            }
        }

        let mut deferred_persona_payments: Vec<usize> = Vec::new();

        let send = |ledger: &mut Ledger,
                    history: &mut ExchangeState,
                    messages: &mut Vec<Message>,
                    at: SimTime,
                    action: Action|
         -> Result<(), SimError> {
            if let Some(material) = materialize(&action) {
                ledger.apply(&material)?;
            }
            history.record(action);
            messages.push(Message::new(at, action));
            Ok(())
        };
        let can_apply = |ledger: &Ledger, action: &Action| -> bool {
            materialize(action)
                .map(|m| ledger.can_apply(&m))
                .unwrap_or(true)
        };

        // Temporal state: when each deal deposit arrived, which deposits an
        // expiring escrow already returned, and which escrows expired.
        let mut deposit_time: BTreeMap<usize, SimTime> = BTreeMap::new();
        let mut refunded: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        let mut cancelled: std::collections::BTreeSet<AgentId> = std::collections::BTreeSet::new();
        let mut settled_early: std::collections::BTreeSet<AgentId> =
            std::collections::BTreeSet::new();

        for (i, step) in steps.iter().enumerate() {
            clock = clock.next();

            // §2.5 expiry: a trusted component returns deposits it has held
            // past their deadline and terminates its exchange.
            if let Some(deadline) = self.config.escrow_deadline {
                for (&trusted, idxs) in &expected_deposits {
                    if cancelled.contains(&trusted) || settled_early.contains(&trusted) {
                        continue;
                    }
                    let complete = idxs.iter().all(|&j| executed[j]);
                    if complete {
                        settled_early.insert(trusted);
                        continue;
                    }
                    let expired = idxs.iter().any(|&j| {
                        executed[j] && deposit_time.get(&j).is_some_and(|&t| t + deadline < clock)
                    });
                    if expired {
                        cancelled.insert(trusted);
                        for &j in idxs {
                            if executed[j] && refunded.insert(j) {
                                let refund =
                                    steps[j].action.inverse().expect("deposits are invertible");
                                if !can_apply(&ledger, &refund) {
                                    return Err(SimError::TrustedMisbehaved {
                                        trusted,
                                        what: "cannot refund an expired deposit",
                                    });
                                }
                                send(&mut ledger, &mut history, &mut messages, clock, refund)?;
                            }
                        }
                    }
                }
            }

            match step.kind {
                StepKind::Deposit(_) | StepKind::IndemnityDeposit(_) => {
                    let p = step.actor;
                    let k = {
                        let c = deposit_counter.entry(p).or_insert(0);
                        let k = *c;
                        *c += 1;
                        k
                    };
                    let willing = self.behaviors.of(p).performs_deposit(k);
                    // §2.5: a notification expires with the pieces the
                    // escrow holds. An honest agent only relies on a
                    // notification that will still be valid when the
                    // escrow's final deposit arrives — otherwise the agent
                    // could spend its own resources on an exchange doomed
                    // to unwind ("the complexities arising from the
                    // expiration of partial exchanges", §9).
                    let notification_valid = |j: usize| -> bool {
                        let Some(deadline) = self.config.escrow_deadline else {
                            return true;
                        };
                        let trusted = steps[j].actor;
                        let Some(idxs) = expected_deposits.get(&trusted) else {
                            return true;
                        };
                        let last_step = idxs.iter().copied().max().unwrap_or(0);
                        let earliest = idxs
                            .iter()
                            .filter(|&&m| executed[m])
                            .filter_map(|m| deposit_time.get(m))
                            .min();
                        match earliest {
                            Some(&e) => e + deadline >= SimTime::from_ticks(last_step as u64 + 1),
                            None => true,
                        }
                    };
                    // Protection 1: every earlier notification addressed to
                    // this principal has actually arrived and is still
                    // actionable.
                    let notified = steps.iter().enumerate().take(i).all(|(j, s)| {
                        !(matches!(s.kind, StepKind::Notify) && s.action.recipient() == p)
                            || (executed[j] && notification_valid(j))
                    });
                    // Protection 2: every earlier collateral promised to
                    // this principal has actually been posted.
                    let collateralised =
                        steps.iter().enumerate().take(i).all(|(j, s)| match s.kind {
                            StepKind::IndemnityDeposit(idx) => {
                                self.spec.indemnities()[idx].beneficiary != p || executed[j]
                            }
                            _ => true,
                        });
                    let able = can_apply(&ledger, &step.action);
                    // An expired escrow no longer accepts deposits (§2.5).
                    let open =
                        !cancelled.contains(&self.spec.trusted_group_of(step.action.recipient()));
                    if willing && notified && collateralised && able && open {
                        send(&mut ledger, &mut history, &mut messages, clock, step.action)?;
                        executed[i] = true;
                        deposit_time.insert(i, clock);
                    } else {
                        skipped.push(i);
                    }
                }
                StepKind::Notify => {
                    let trusted = step.actor;
                    if cancelled.contains(&trusted) {
                        skipped.push(i);
                        continue;
                    }
                    let target = step.action.recipient();
                    let ready = expected_deposits
                        .get(&trusted)
                        .map(|idxs| {
                            idxs.iter()
                                .all(|&j| steps[j].actor == target || executed[j])
                        })
                        .unwrap_or(true);
                    if ready {
                        send(&mut ledger, &mut history, &mut messages, clock, step.action)?;
                        executed[i] = true;
                    } else {
                        skipped.push(i);
                    }
                }
                StepKind::Forward(_) | StepKind::Relay(_) => {
                    let trusted = step.actor;
                    let group = self.spec.trusted_group_of(trusted);
                    if cancelled.contains(&group) {
                        skipped.push(i);
                        continue;
                    }
                    // A persona's outgoing payment to the other party is
                    // deferred: the principal playing the role only parts
                    // with real money once it has been paid itself.
                    let deferred_payment = matches!(step.action, Action::Pay { to, .. }
                        if persona.get(&trusted).is_some_and(|&x| alias(to) != x));
                    if deferred_payment {
                        deferred_persona_payments.push(i);
                        continue;
                    }
                    let complete = expected_deposits
                        .get(&group)
                        .map(|idxs| idxs.iter().all(|&j| executed[j]))
                        .unwrap_or(false);
                    if complete {
                        if !can_apply(&ledger, &step.action) {
                            return Err(SimError::TrustedMisbehaved {
                                trusted,
                                what: "cannot forward assets it should hold",
                            });
                        }
                        send(&mut ledger, &mut history, &mut messages, clock, step.action)?;
                        executed[i] = true;
                    } else {
                        skipped.push(i);
                    }
                }
                StepKind::IndemnityRefund(idx) => {
                    let ind = self.spec.indemnities()[idx];
                    let posted = steps.iter().enumerate().any(|(j, s)| {
                        matches!(s.kind, StepKind::IndemnityDeposit(jdx) if jdx == idx)
                            && executed[j]
                    });
                    let deal_forwarded = steps.iter().enumerate().any(|(j, s)| {
                        matches!(s.kind, StepKind::Forward(d) if d == ind.deal) && executed[j]
                    });
                    if posted && deal_forwarded {
                        send(&mut ledger, &mut history, &mut messages, clock, step.action)?;
                        executed[i] = true;
                    } else {
                        skipped.push(i);
                    }
                }
            }
        }

        // ---- Deadline expiry: trusted components unwind (§2.5). ----
        clock = clock.next();

        // Deferred persona payments: a principal playing a trusted role
        // pays the other party once it has itself been paid on every sale.
        // Payments can unlock each other along persona chains, so iterate
        // to a fixpoint.
        let mut progress = true;
        while progress {
            progress = false;
            for &i in &deferred_persona_payments {
                if executed[i] {
                    continue;
                }
                let trusted = steps[i].actor;
                let group = self.spec.trusted_group_of(trusted);
                if cancelled.contains(&group) {
                    continue;
                }
                let x = persona[&trusted];
                let deposits_in = expected_deposits
                    .get(&group)
                    .map(|idxs| idxs.iter().all(|&j| executed[j]))
                    .unwrap_or(false);
                let x_paid = self.spec.sales_of(x).all(|d| {
                    steps.iter().enumerate().any(|(j, s)| {
                        matches!(s.kind, StepKind::Forward(dd) if dd == d.id())
                            && matches!(s.action, Action::Pay { .. })
                            && executed[j]
                    })
                });
                if deposits_in && x_paid {
                    if !can_apply(&ledger, &steps[i].action) {
                        return Err(SimError::TrustedMisbehaved {
                            trusted,
                            what: "persona cannot pay the counterparty",
                        });
                    }
                    send(
                        &mut ledger,
                        &mut history,
                        &mut messages,
                        clock,
                        steps[i].action,
                    )?;
                    executed[i] = true;
                    progress = true;
                }
            }
        }

        // Refund deal deposits held by escrows that never settled (did not
        // execute all their forwards). A persona escrow may have executed
        // its *virtual* forwards (lending the held item to its principal)
        // without ever settling; those are unwound first so the history
        // nets out.
        let mut forward_steps: BTreeMap<AgentId, Vec<usize>> = BTreeMap::new();
        for (i, step) in steps.iter().enumerate() {
            if matches!(step.kind, StepKind::Forward(_) | StepKind::Relay(_)) {
                forward_steps
                    .entry(self.spec.trusted_group_of(step.actor))
                    .or_default()
                    .push(i);
            }
        }
        // One escrow's refund may depend on another's (a persona account is
        // replenished by its own refunds), so the unwinds are retried to a
        // fixpoint rather than applied in a fixed escrow order.
        let mut unwinds: Vec<(AgentId, Action)> = Vec::new();
        for (&trusted, idxs) in &expected_deposits {
            let settled = forward_steps
                .get(&trusted)
                .map(|f| f.iter().all(|&j| executed[j]))
                .unwrap_or(true);
            if settled {
                continue;
            }
            for &j in forward_steps
                .get(&trusted)
                .map(Vec::as_slice)
                .unwrap_or(&[])
            {
                if executed[j] {
                    let unwind = steps[j].action.inverse().expect("forwards are invertible");
                    unwinds.push((trusted, unwind));
                }
            }
            for &j in idxs {
                if executed[j] && !refunded.contains(&j) {
                    let refund = steps[j].action.inverse().expect("deposits are invertible");
                    unwinds.push((trusted, refund));
                }
            }
        }
        let mut done: Vec<bool> = vec![false; unwinds.len()];
        let mut progress = true;
        while progress {
            progress = false;
            for (i, (_, action)) in unwinds.iter().enumerate() {
                if !done[i] && can_apply(&ledger, action) {
                    send(&mut ledger, &mut history, &mut messages, clock, *action)?;
                    done[i] = true;
                    progress = true;
                }
            }
        }
        if let Some(i) = done.iter().position(|&d| !d) {
            return Err(SimError::TrustedMisbehaved {
                trusted: unwinds[i].0,
                what: "cannot unwind/refund a deposit it should hold",
            });
        }

        // Resolve outstanding indemnities: payout if the beneficiary
        // performed (deposited for the covered deal) and the deal fell
        // through; refund to the provider otherwise.
        for (idx, ind) in self.spec.indemnities().iter().enumerate() {
            let posted_at = steps.iter().enumerate().find_map(|(j, s)| {
                matches!(s.kind, StepKind::IndemnityDeposit(jdx) if jdx == idx).then_some(j)
            });
            let Some(posted_at) = posted_at else { continue };
            if !executed[posted_at] {
                continue; // never posted, nothing to resolve
            }
            let already_refunded = steps.iter().enumerate().any(|(j, s)| {
                matches!(s.kind, StepKind::IndemnityRefund(jdx) if jdx == idx) && executed[j]
            });
            if already_refunded {
                continue;
            }
            let deal = self.spec.deal(ind.deal)?;
            let beneficiary_performed = steps.iter().enumerate().any(|(j, s)| {
                matches!(s.kind, StepKind::Deposit(_))
                    && executed[j]
                    && s.action == Action::pay(ind.beneficiary, deal.intermediary(), deal.price())
            });
            let action = if beneficiary_performed {
                // Forfeit: the collateral goes to the beneficiary.
                Action::pay(ind.via, ind.beneficiary, ind.amount)
            } else {
                // Refund to the provider.
                Action::pay(ind.provider, ind.via, ind.amount)
                    .inverse()
                    .expect("pay invertible")
            };
            if !can_apply(&ledger, &action) {
                return Err(SimError::TrustedMisbehaved {
                    trusted: ind.via,
                    what: "cannot resolve an indemnity it should hold",
                });
            }
            send(&mut ledger, &mut history, &mut messages, clock, action)?;
        }

        ledger.check_conservation()?;

        let outcomes = match self.acceptance {
            Some(specs) => specs
                .iter()
                .map(|a| (a.party(), a.classify(&history)))
                .collect(),
            None => self
                .spec
                .acceptance_specs()
                .into_iter()
                .map(|a| (a.party(), a.classify(&history)))
                .collect(),
        };

        Ok(SimReport {
            behaviors: self.behaviors.clone(),
            final_state: history,
            outcomes,
            messages,
            skipped_steps: skipped,
            ledger,
        })
    }
}

/// Convenience: synthesises the protocol for `spec` and runs it under
/// `behaviors`.
///
/// # Errors
///
/// [`SimError::Core`] when the exchange is infeasible (no protocol exists),
/// plus any simulator error.
pub fn run_protocol(spec: &ExchangeSpec, behaviors: BehaviorMap) -> Result<SimReport, SimError> {
    let sequence = trustseq_core::synthesize(spec)?;
    let protocol = Protocol::from_sequence(spec, &sequence);
    Simulation::new(spec, &protocol, &behaviors).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::Behavior;
    use trustseq_core::fixtures;
    use trustseq_model::Money;

    #[test]
    fn all_honest_example1_reaches_preferred() {
        let (spec, _) = fixtures::example1();
        let report = run_protocol(&spec, BehaviorMap::all_honest()).unwrap();
        assert!(report.all_preferred());
        assert!(report.safety_holds());
        assert_eq!(report.message_count(), 10);
        assert!(report.skipped_steps.is_empty());
    }

    #[test]
    fn consumer_defects_everyone_safe() {
        let (spec, ids) = fixtures::example1();
        let behaviors = BehaviorMap::all_honest().with(ids.consumer, Behavior::ABSENT);
        let report = run_protocol(&spec, behaviors).unwrap();
        assert!(report.safety_holds());
        // The producer got its document back.
        assert_eq!(report.ledger.items_of(ids.producer, ids.doc), 1);
        // The broker never spent anything.
        assert_eq!(report.outcomes[&ids.broker], Outcome::Acceptable);
    }

    #[test]
    fn broker_defects_everyone_safe() {
        let (spec, ids) = fixtures::example1();
        for n in 0..2u32 {
            let behaviors = BehaviorMap::all_honest().with(ids.broker, Behavior::SilentAfter(n));
            let report = run_protocol(&spec, behaviors).unwrap();
            assert!(report.safety_holds(), "broker silent after {n}");
            assert!(report.outcomes[&ids.consumer].is_acceptable());
            // With n = 1 the broker still buys, so the producer's deal
            // completes (preferred); with n = 0 it is refunded (acceptable).
            assert!(report.outcomes[&ids.producer].is_acceptable());
        }
    }

    #[test]
    fn producer_defects_everyone_safe() {
        let (spec, ids) = fixtures::example1();
        let behaviors = BehaviorMap::all_honest().with(ids.producer, Behavior::ABSENT);
        let report = run_protocol(&spec, behaviors).unwrap();
        assert!(report.safety_holds());
        // The consumer got its money back: deposit + refund happened.
        assert_eq!(
            report.ledger.cash_of(ids.consumer),
            Money::from_dollars(180)
        );
    }

    #[test]
    fn infeasible_exchange_cannot_be_run() {
        let (spec, _) = fixtures::example2();
        assert!(matches!(
            run_protocol(&spec, BehaviorMap::all_honest()),
            Err(SimError::Core(_))
        ));
    }

    #[test]
    fn indemnified_example2_happy_path() {
        let (mut spec, ids) = fixtures::example2();
        spec.add_indemnity(ids.broker1, ids.sale1, Money::from_dollars(20))
            .unwrap();
        let report = run_protocol(&spec, BehaviorMap::all_honest()).unwrap();
        assert!(report.all_preferred());
        // The collateral came back to broker 1.
        let final_b1 = report.ledger.cash_of(ids.broker1);
        let initial = Ledger::for_spec(&spec).cash_of(ids.broker1);
        // Broker 1 nets +$2 margin ($10 sale − $8 supply).
        assert_eq!(final_b1, initial + Money::from_dollars(2));
    }

    #[test]
    fn indemnity_pays_out_when_provider_defects_after_posting() {
        let (mut spec, ids) = fixtures::example2();
        spec.add_indemnity(ids.broker1, ids.sale1, Money::from_dollars(20))
            .unwrap();
        // Broker 1 posts collateral (its first deposit) then goes silent.
        let behaviors = BehaviorMap::all_honest().with(ids.broker1, Behavior::SilentAfter(1));
        let report = run_protocol(&spec, behaviors).unwrap();
        assert!(report.safety_holds());
        // The consumer got doc 2, was refunded for doc 1, and received the
        // $20 payout.
        assert_eq!(report.outcomes[&ids.consumer], Outcome::Acceptable);
        let initial = Ledger::for_spec(&spec).cash_of(ids.consumer);
        assert_eq!(
            report.ledger.cash_of(ids.consumer),
            initial - Money::from_dollars(20) + Money::from_dollars(20)
        );
        assert_eq!(report.ledger.items_of(ids.consumer, ids.doc2), 1);
    }

    #[test]
    fn consumer_aborts_if_collateral_never_posted() {
        let (mut spec, ids) = fixtures::example2();
        spec.add_indemnity(ids.broker1, ids.sale1, Money::from_dollars(20))
            .unwrap();
        // Broker 1 never even posts the collateral.
        let behaviors = BehaviorMap::all_honest().with(ids.broker1, Behavior::ABSENT);
        let report = run_protocol(&spec, behaviors).unwrap();
        assert!(report.safety_holds());
        // The consumer must end at the status quo: no doc 2 purchase
        // without the doc 1 protection.
        let initial = Ledger::for_spec(&spec).cash_of(ids.consumer);
        assert_eq!(report.ledger.cash_of(ids.consumer), initial);
        assert_eq!(report.ledger.items_of(ids.consumer, ids.doc2), 0);
    }

    #[test]
    fn direct_trust_variant_runs_end_to_end() {
        let (mut spec, ids) = fixtures::example2();
        spec.add_trust(ids.source1, ids.broker1).unwrap();
        let report = run_protocol(&spec, BehaviorMap::all_honest()).unwrap();
        assert!(report.all_preferred());
    }

    #[test]
    fn wire_accounting() {
        let (spec, _) = fixtures::example1();
        let report = run_protocol(&spec, BehaviorMap::all_honest()).unwrap();
        assert_eq!(report.wire_bytes(), report.message_count() * 25);
        assert!(report.to_string().contains("safety OK"));
    }

    #[test]
    fn generous_deadline_changes_nothing() {
        let (spec, _) = fixtures::example1();
        let seq = trustseq_core::synthesize(&spec).unwrap();
        let protocol = Protocol::from_sequence(&spec, &seq);
        let relaxed = Simulation::new(&spec, &protocol, &BehaviorMap::all_honest())
            .run()
            .unwrap();
        let timed = Simulation::with_config(
            &spec,
            &protocol,
            &BehaviorMap::all_honest(),
            SimConfig {
                escrow_deadline: Some(100),
            },
        )
        .run()
        .unwrap();
        assert_eq!(relaxed.final_state, timed.final_state);
        assert!(timed.all_preferred());
    }

    #[test]
    fn tight_deadline_collapses_the_exchange_safely() {
        // With a one-tick deadline, the producer's early deposit expires
        // before the broker can pay: the whole exchange unwinds, but every
        // party ends whole (§2.2's "sufficiently generous" assumption made
        // visible).
        let (spec, ids) = fixtures::example1();
        let seq = trustseq_core::synthesize(&spec).unwrap();
        let protocol = Protocol::from_sequence(&spec, &seq);
        let report = Simulation::with_config(
            &spec,
            &protocol,
            &BehaviorMap::all_honest(),
            SimConfig {
                escrow_deadline: Some(1),
            },
        )
        .run()
        .unwrap();
        assert!(!report.all_preferred());
        assert!(report.safety_holds(), "{report}");
        report.ledger.check_conservation().unwrap();
        // The producer got its document back.
        assert_eq!(report.ledger.items_of(ids.producer, ids.doc), 1);
        // The consumer has all its money.
        assert_eq!(
            report.ledger.cash_of(ids.consumer),
            Ledger::for_spec(&spec).cash_of(ids.consumer)
        );
    }

    #[test]
    fn deadline_boundary_is_exact() {
        // Example #1's longest escrow wait is the consumer's: money
        // deposited at tick 3, t1 completed by the broker's document at
        // tick 8. A deadline of 5 just fits; 4 does not.
        let (spec, _) = fixtures::example1();
        let seq = trustseq_core::synthesize(&spec).unwrap();
        let protocol = Protocol::from_sequence(&spec, &seq);
        let run = |deadline: u64| {
            Simulation::with_config(
                &spec,
                &protocol,
                &BehaviorMap::all_honest(),
                SimConfig {
                    escrow_deadline: Some(deadline),
                },
            )
            .run()
            .unwrap()
        };
        assert!(run(5).all_preferred());
        assert!(!run(4).all_preferred());
        assert!(run(4).safety_holds());
    }

    #[test]
    fn expiry_and_defection_compose_safely() {
        let (spec, ids) = fixtures::example1();
        let seq = trustseq_core::synthesize(&spec).unwrap();
        let protocol = Protocol::from_sequence(&spec, &seq);
        for deadline in [1u64, 2, 3, 10] {
            for defector in [ids.consumer, ids.broker, ids.producer] {
                let report = Simulation::with_config(
                    &spec,
                    &protocol,
                    &BehaviorMap::all_honest().with(defector, Behavior::ABSENT),
                    SimConfig {
                        escrow_deadline: Some(deadline),
                    },
                )
                .run()
                .unwrap();
                assert!(
                    report.safety_holds(),
                    "deadline {deadline}, defector {defector}: {report}"
                );
                report.ledger.check_conservation().unwrap();
            }
        }
    }

    #[test]
    fn conservation_holds_across_runs() {
        let (spec, ids) = fixtures::example1();
        for behaviors in [
            BehaviorMap::all_honest(),
            BehaviorMap::all_honest().with(ids.broker, Behavior::ABSENT),
            BehaviorMap::all_honest().with(ids.producer, Behavior::ABSENT),
        ] {
            let report = run_protocol(&spec, behaviors).unwrap();
            report.ledger.check_conservation().unwrap();
        }
    }
}
