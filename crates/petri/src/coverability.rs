//! Bounded coverability search.

use crate::net::{Marking, PetriNet};
use crate::PetriError;
use std::collections::{BTreeSet, VecDeque};

/// The result of a coverability search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverabilityReport {
    /// Whether a reachable marking covers the goal.
    pub coverable: bool,
    /// Markings explored.
    pub explored: usize,
    /// Length of the shortest witness firing sequence (when coverable).
    pub witness_len: Option<usize>,
}

/// Breadth-first coverability: is some marking covering `goal` reachable
/// from `initial`?
///
/// General Petri-net coverability is EXPSPACE-hard (the paper calls the
/// variant it needs "still an open problem"); the nets compiled from
/// exchange problems are *monotone* — dead-places only gain tokens — so
/// their reachable state space is tiny and breadth-first search with a
/// visited set terminates quickly. `budget` caps the number of explored
/// markings for safety on hand-built nets.
///
/// # Errors
///
/// [`PetriError::BudgetExhausted`] when more than `budget` markings would
/// have to be explored.
pub fn coverable(
    net: &PetriNet,
    initial: &Marking,
    goal: &Marking,
    budget: usize,
) -> Result<CoverabilityReport, PetriError> {
    let mut visited: BTreeSet<Marking> = BTreeSet::new();
    let mut queue: VecDeque<(Marking, usize)> = VecDeque::new();
    visited.insert(initial.clone());
    queue.push_back((initial.clone(), 0));
    let mut explored = 0usize;

    while let Some((marking, depth)) = queue.pop_front() {
        explored += 1;
        if explored > budget {
            return Err(PetriError::BudgetExhausted { budget });
        }
        if marking.covers(goal) {
            return Ok(CoverabilityReport {
                coverable: true,
                explored,
                witness_len: Some(depth),
            });
        }
        for t in net.enabled_transitions(&marking) {
            let next = net.fire(&marking, t).expect("enabled transition fires");
            if visited.insert(next.clone()) {
                queue.push_back((next, depth + 1));
            }
        }
    }
    Ok(CoverabilityReport {
        coverable: false,
        explored,
        witness_len: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use trustseq_core::fixtures;

    #[test]
    fn example1_goal_is_coverable() {
        let (spec, _) = fixtures::example1();
        let ex = compile(&spec).unwrap();
        let report = coverable(&ex.net, &ex.initial, &ex.goal, 100_000).unwrap();
        assert!(report.coverable);
        // Six rule firings plus the completion transition.
        assert_eq!(report.witness_len, Some(7));
    }

    #[test]
    fn example2_goal_is_not_coverable() {
        let (spec, _) = fixtures::example2();
        let ex = compile(&spec).unwrap();
        let report = coverable(&ex.net, &ex.initial, &ex.goal, 1_000_000).unwrap();
        assert!(!report.coverable);
        assert!(report.explored > 0);
    }

    #[test]
    fn budget_is_enforced() {
        let (spec, _) = fixtures::example2();
        let ex = compile(&spec).unwrap();
        assert!(matches!(
            coverable(&ex.net, &ex.initial, &ex.goal, 3),
            Err(PetriError::BudgetExhausted { budget: 3 })
        ));
    }

    #[test]
    fn trivial_goal_covered_immediately() {
        let (spec, _) = fixtures::example1();
        let ex = compile(&spec).unwrap();
        let empty_goal = ex.net.empty_marking();
        let report = coverable(&ex.net, &ex.initial, &empty_goal, 10).unwrap();
        assert!(report.coverable);
        assert_eq!(report.witness_len, Some(0));
    }
}
