//! Place/transition nets with weighted arcs, markings and firing.

use crate::PetriError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PlaceId(u32);

impl PlaceId {
    /// Creates a place id from a raw index.
    pub const fn new(index: u32) -> Self {
        PlaceId(index)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifies a transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TransitionId(u32);

impl TransitionId {
    /// Creates a transition id from a raw index.
    pub const fn new(index: u32) -> Self {
        TransitionId(index)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TransitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A transition with weighted input and output arcs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transition {
    /// The transition's id.
    pub id: TransitionId,
    /// Human-readable label.
    pub label: String,
    /// `(place, weight)` input arcs: tokens consumed.
    pub inputs: Vec<(PlaceId, u32)>,
    /// `(place, weight)` output arcs: tokens produced.
    pub outputs: Vec<(PlaceId, u32)>,
}

/// A token marking: how many tokens each place holds.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Marking(Vec<u32>);

impl Marking {
    /// The empty marking over `places` places.
    pub fn empty(places: usize) -> Self {
        Marking(vec![0; places])
    }

    /// Tokens at `place`.
    pub fn tokens(&self, place: PlaceId) -> u32 {
        self.0.get(place.index()).copied().unwrap_or(0)
    }

    /// Sets the token count of `place`.
    pub fn set(&mut self, place: PlaceId, tokens: u32) {
        self.0[place.index()] = tokens;
    }

    /// Adds tokens to `place`.
    pub fn add(&mut self, place: PlaceId, tokens: u32) {
        self.0[place.index()] += tokens;
    }

    /// Whether this marking covers `other` (component-wise ≥).
    pub fn covers(&self, other: &Marking) -> bool {
        self.0.len() == other.0.len() && self.0.iter().zip(&other.0).all(|(a, b)| a >= b)
    }

    /// Total number of tokens.
    pub fn total(&self) -> u32 {
        self.0.iter().sum()
    }
}

impl fmt::Display for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, n) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "]")
    }
}

/// A place/transition Petri net.
///
/// §7.4 of the paper observes that exchanges "can be captured in a Petri net
/// formalism, with the added advantage that consumable resources (such as
/// money) are modeled very naturally in the tokens". This is that substrate:
/// a classical net with weighted arcs, used by the compiler in
/// [`compile`](crate::compile) to cross-check sequencing-graph feasibility
/// via bounded coverability.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PetriNet {
    place_labels: Vec<String>,
    transitions: Vec<Transition>,
}

impl PetriNet {
    /// An empty net.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a labelled place.
    pub fn add_place(&mut self, label: impl Into<String>) -> PlaceId {
        let id = PlaceId::new(self.place_labels.len() as u32);
        self.place_labels.push(label.into());
        id
    }

    /// Adds a transition with input and output arcs.
    ///
    /// # Errors
    ///
    /// [`PetriError::UnknownPlace`] if any arc references an undeclared
    /// place.
    pub fn add_transition(
        &mut self,
        label: impl Into<String>,
        inputs: Vec<(PlaceId, u32)>,
        outputs: Vec<(PlaceId, u32)>,
    ) -> Result<TransitionId, PetriError> {
        for (p, _) in inputs.iter().chain(&outputs) {
            if p.index() >= self.place_labels.len() {
                return Err(PetriError::UnknownPlace(*p));
            }
        }
        let id = TransitionId::new(self.transitions.len() as u32);
        self.transitions.push(Transition {
            id,
            label: label.into(),
            inputs,
            outputs,
        });
        Ok(id)
    }

    /// Number of places.
    pub fn place_count(&self) -> usize {
        self.place_labels.len()
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// A place's label.
    pub fn place_label(&self, place: PlaceId) -> &str {
        &self.place_labels[place.index()]
    }

    /// The transitions.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// The empty marking for this net.
    pub fn empty_marking(&self) -> Marking {
        Marking::empty(self.place_count())
    }

    /// Whether `transition` is enabled in `marking`.
    ///
    /// Input arcs naming the same place are aggregated: a transition with
    /// arcs `(p, 1)` and `(p, 2)` needs three tokens at `p`.
    pub fn enabled(&self, marking: &Marking, transition: TransitionId) -> bool {
        let mut needed: std::collections::BTreeMap<PlaceId, u32> =
            std::collections::BTreeMap::new();
        for &(p, w) in &self.transitions[transition.index()].inputs {
            *needed.entry(p).or_insert(0) += w;
        }
        needed.iter().all(|(&p, &w)| marking.tokens(p) >= w)
    }

    /// Fires `transition`, returning the successor marking.
    ///
    /// # Errors
    ///
    /// [`PetriError::NotEnabled`] when the transition lacks input tokens.
    pub fn fire(&self, marking: &Marking, transition: TransitionId) -> Result<Marking, PetriError> {
        if !self.enabled(marking, transition) {
            return Err(PetriError::NotEnabled(transition));
        }
        let t = &self.transitions[transition.index()];
        let mut next = marking.clone();
        for &(p, w) in &t.inputs {
            next.set(p, next.tokens(p) - w);
        }
        for &(p, w) in &t.outputs {
            next.add(p, w);
        }
        Ok(next)
    }

    /// All transitions enabled in `marking`.
    pub fn enabled_transitions(&self, marking: &Marking) -> Vec<TransitionId> {
        self.transitions
            .iter()
            .filter(|t| self.enabled(marking, t.id))
            .map(|t| t.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// p0 --t0--> p1 --t1--> p2, with t1 needing 2 tokens.
    fn chain_net() -> (PetriNet, [PlaceId; 3], [TransitionId; 2]) {
        let mut net = PetriNet::new();
        let p0 = net.add_place("src");
        let p1 = net.add_place("mid");
        let p2 = net.add_place("dst");
        let t0 = net
            .add_transition("move", vec![(p0, 1)], vec![(p1, 1)])
            .unwrap();
        let t1 = net
            .add_transition("pair", vec![(p1, 2)], vec![(p2, 1)])
            .unwrap();
        (net, [p0, p1, p2], [t0, t1])
    }

    #[test]
    fn firing_moves_tokens() {
        let (net, [p0, p1, _], [t0, _]) = chain_net();
        let mut m = net.empty_marking();
        m.set(p0, 2);
        assert!(net.enabled(&m, t0));
        let m2 = net.fire(&m, t0).unwrap();
        assert_eq!(m2.tokens(p0), 1);
        assert_eq!(m2.tokens(p1), 1);
    }

    #[test]
    fn weighted_arcs_respected() {
        let (net, [p0, p1, p2], [t0, t1]) = chain_net();
        let mut m = net.empty_marking();
        m.set(p0, 2);
        let m = net.fire(&m, t0).unwrap();
        assert!(!net.enabled(&m, t1)); // only 1 token at p1, needs 2
        let m = net.fire(&m, t0).unwrap();
        assert!(net.enabled(&m, t1));
        let m = net.fire(&m, t1).unwrap();
        assert_eq!(m.tokens(p1), 0);
        assert_eq!(m.tokens(p2), 1);
    }

    #[test]
    fn firing_disabled_transition_errors() {
        let (net, _, [t0, _]) = chain_net();
        let m = net.empty_marking();
        assert_eq!(net.fire(&m, t0), Err(PetriError::NotEnabled(t0)));
    }

    #[test]
    fn unknown_place_rejected() {
        let mut net = PetriNet::new();
        let err = net
            .add_transition("bad", vec![(PlaceId::new(9), 1)], vec![])
            .unwrap_err();
        assert_eq!(err, PetriError::UnknownPlace(PlaceId::new(9)));
    }

    #[test]
    fn covering_is_componentwise() {
        let mut a = Marking::empty(3);
        a.set(PlaceId::new(0), 2);
        a.set(PlaceId::new(1), 1);
        let mut b = Marking::empty(3);
        b.set(PlaceId::new(0), 1);
        assert!(a.covers(&b));
        assert!(!b.covers(&a));
        assert!(a.covers(&a));
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn enabled_transitions_listing() {
        let (net, [p0, _, _], [t0, _]) = chain_net();
        let mut m = net.empty_marking();
        assert!(net.enabled_transitions(&m).is_empty());
        m.set(p0, 1);
        assert_eq!(net.enabled_transitions(&m), vec![t0]);
    }

    #[test]
    fn display_marking() {
        let mut m = Marking::empty(3);
        m.set(PlaceId::new(1), 4);
        assert_eq!(m.to_string(), "[0 4 0]");
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use proptest::prelude::*;

    /// A small random net plus an initial marking.
    fn arb_net() -> impl Strategy<Value = (PetriNet, Marking)> {
        let places = 2usize..6;
        places.prop_flat_map(|p| {
            let transitions = proptest::collection::vec(
                (
                    proptest::collection::vec((0..p, 1u32..3), 0..3), // inputs
                    proptest::collection::vec((0..p, 1u32..3), 0..3), // outputs
                ),
                1..5,
            );
            let tokens = proptest::collection::vec(0u32..4, p);
            (Just(p), transitions, tokens).prop_map(|(p, ts, tokens)| {
                let mut net = PetriNet::new();
                let ids: Vec<PlaceId> = (0..p).map(|i| net.add_place(format!("p{i}"))).collect();
                for (k, (ins, outs)) in ts.into_iter().enumerate() {
                    let ins = ins.into_iter().map(|(i, w)| (ids[i], w)).collect();
                    let outs = outs.into_iter().map(|(i, w)| (ids[i], w)).collect();
                    net.add_transition(format!("t{k}"), ins, outs).unwrap();
                }
                let mut marking = net.empty_marking();
                for (i, &n) in tokens.iter().enumerate() {
                    marking.set(ids[i], n);
                }
                (net, marking)
            })
        })
    }

    proptest! {
        /// Firing changes the token count by exactly the transition's
        /// weight imbalance, and only enabled transitions fire.
        #[test]
        fn firing_accounts_exactly((net, marking) in arb_net()) {
            for t in net.transitions() {
                let enabled = net.enabled(&marking, t.id);
                match net.fire(&marking, t.id) {
                    Ok(next) => {
                        prop_assert!(enabled);
                        let consumed: u32 = t.inputs.iter().map(|&(_, w)| w).sum();
                        let produced: u32 = t.outputs.iter().map(|&(_, w)| w).sum();
                        prop_assert_eq!(
                            next.total() as i64,
                            marking.total() as i64 - consumed as i64 + produced as i64
                        );
                    }
                    Err(PetriError::NotEnabled(_)) => prop_assert!(!enabled),
                    Err(other) => return Err(TestCaseError::fail(format!("{other}"))),
                }
            }
        }

        /// `enabled_transitions` lists exactly the fireable transitions.
        #[test]
        fn enabled_listing_is_exact((net, marking) in arb_net()) {
            let listed = net.enabled_transitions(&marking);
            for t in net.transitions() {
                prop_assert_eq!(listed.contains(&t.id), net.enabled(&marking, t.id));
            }
        }

        /// Covering is reflexive and monotone under adding tokens.
        #[test]
        fn covering_is_reflexive_and_monotone((_net, marking) in arb_net()) {
            prop_assert!(marking.covers(&marking));
            let mut bigger = marking.clone();
            bigger.add(PlaceId::new(0), 1);
            prop_assert!(bigger.covers(&marking));
            prop_assert!(!marking.covers(&bigger));
        }
    }
}
