//! Compilation of exchange problems into Petri nets (§7.4).
//!
//! The paper notes that exchanges "can be captured in a Petri net formalism"
//! and that feasibility becomes a *coverability* question — "whether a token
//! is ever in the 'exchange completed' place". This module performs that
//! encoding mechanically:
//!
//! * every sequencing-graph **edge** becomes a `live`/`dead` place pair
//!   (plain nets cannot test absence, so removal is represented by a token
//!   in the complement place);
//! * every potential application of reduction **rule #1 / rule #2** becomes
//!   a transition consuming the edge's `live` token and producing its
//!   `dead` token, with *read arcs* (consume-and-reproduce) on the `dead`
//!   places of the edges whose prior removal the rule requires;
//! * red-edge pre-emption (and its clause-2 waiver) appears as read arcs on
//!   the red siblings' `dead` places;
//! * a final `complete` transition reads every `dead` place and drops a
//!   token into the **exchange-completed** place.
//!
//! Feasibility of the exchange is then exactly coverability of the
//! exchange-completed place — checked by
//! [`coverable`](crate::coverable) with breadth-first exploration, a
//! genuinely different algorithm from the greedy reduction, which makes the
//! agreement test in `trustseq-petri`'s integration suite a meaningful
//! cross-check.

use crate::net::{Marking, PetriNet, PlaceId};
use crate::PetriError;
use trustseq_core::{EdgeColor, SequencingGraph};
use trustseq_model::ExchangeSpec;

/// A compiled exchange net: the Petri net plus its initial marking and the
/// goal marking whose coverability means "exchange completed".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExchangeNet {
    /// The net.
    pub net: PetriNet,
    /// The initial marking (all edges live).
    pub initial: Marking,
    /// The goal marking (one token in the exchange-completed place).
    pub goal: Marking,
    /// The exchange-completed place.
    pub completed: PlaceId,
}

/// Compiles `spec`'s sequencing graph into an [`ExchangeNet`].
///
/// # Errors
///
/// Propagates graph-construction errors as [`PetriError::Core`].
pub fn compile(spec: &ExchangeSpec) -> Result<ExchangeNet, PetriError> {
    let graph = SequencingGraph::from_spec(spec)?;
    compile_graph(&graph)
}

/// Like [`compile`], but with explicit
/// [`BuildOptions`](trustseq_core::BuildOptions) (e.g. the §9 shared-escrow
/// delegation extension).
///
/// # Errors
///
/// Propagates graph-construction errors as [`PetriError::Core`].
pub fn compile_with(
    spec: &ExchangeSpec,
    options: trustseq_core::BuildOptions,
) -> Result<ExchangeNet, PetriError> {
    let graph = SequencingGraph::from_spec_with(spec, options)?;
    compile_graph(&graph)
}

/// Compiles a sequencing graph into an [`ExchangeNet`].
///
/// # Errors
///
/// [`PetriError::UnknownPlace`] only on internal inconsistency (never for a
/// well-formed graph).
pub fn compile_graph(graph: &SequencingGraph) -> Result<ExchangeNet, PetriError> {
    let mut net = PetriNet::new();
    let edges = graph.edges();

    let live: Vec<PlaceId> = edges
        .iter()
        .map(|e| net.add_place(format!("live_{}", e.id)))
        .collect();
    let dead: Vec<PlaceId> = edges
        .iter()
        .map(|e| net.add_place(format!("dead_{}", e.id)))
        .collect();
    let completed = net.add_place("exchange_completed");

    // Read arc helper: consume and reproduce a token.
    let read = |places: &mut Vec<(PlaceId, u32)>, back: &mut Vec<(PlaceId, u32)>, p: PlaceId| {
        places.push((p, 1));
        back.push((p, 1));
    };

    for e in edges {
        let ei = e.id.index();

        // Rule #1: the commitment is on the fringe — every *other* edge of
        // the commitment is dead — and either no *other* red edge at the
        // conjunction is live (read their dead places) or the commitment
        // has the clause-2 waiver.
        {
            let mut inputs = vec![(live[ei], 1)];
            let mut outputs = vec![(dead[ei], 1)];
            for other in edges
                .iter()
                .filter(|o| o.commitment == e.commitment && o.id != e.id)
            {
                read(&mut inputs, &mut outputs, dead[other.id.index()]);
            }
            if !graph.commitment(e.commitment).clause2_waiver {
                for red in edges.iter().filter(|o| {
                    o.conjunction == e.conjunction && o.id != e.id && o.color == EdgeColor::Red
                }) {
                    read(&mut inputs, &mut outputs, dead[red.id.index()]);
                }
            }
            net.add_transition(format!("rule1_{}", e.id), inputs, outputs)?;
        }

        // Rule #2: the conjunction is on the fringe — every other edge of
        // the conjunction is dead.
        {
            let mut inputs = vec![(live[ei], 1)];
            let mut outputs = vec![(dead[ei], 1)];
            for other in edges
                .iter()
                .filter(|o| o.conjunction == e.conjunction && o.id != e.id)
            {
                read(&mut inputs, &mut outputs, dead[other.id.index()]);
            }
            net.add_transition(format!("rule2_{}", e.id), inputs, outputs)?;
        }
    }

    // Completion: read every dead place, mark the exchange completed.
    {
        let mut inputs = Vec::new();
        let mut outputs = vec![(completed, 1)];
        for &d in &dead {
            inputs.push((d, 1));
            outputs.push((d, 1));
        }
        net.add_transition("complete", inputs, outputs)?;
    }

    let mut initial = net.empty_marking();
    for &l in &live {
        initial.set(l, 1);
    }
    let mut goal = net.empty_marking();
    goal.set(completed, 1);

    Ok(ExchangeNet {
        net,
        initial,
        goal,
        completed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustseq_core::fixtures;

    #[test]
    fn example1_net_shape() {
        let (spec, _) = fixtures::example1();
        let ex = compile(&spec).unwrap();
        // 6 edges → 12 live/dead places + completed.
        assert_eq!(ex.net.place_count(), 13);
        // 2 rules per edge + completion.
        assert_eq!(ex.net.transition_count(), 13);
        assert_eq!(ex.initial.total(), 6);
        assert_eq!(ex.goal.tokens(ex.completed), 1);
    }

    #[test]
    fn initially_only_fringe_rules_enabled() {
        let (spec, _) = fixtures::example1();
        let ex = compile(&spec).unwrap();
        let enabled = ex.net.enabled_transitions(&ex.initial);
        // Exactly the two rule-1 applications on the outermost commitments
        // (consumer→t1, t2→producer) are enabled at the start.
        assert_eq!(enabled.len(), 2);
        for t in enabled {
            assert!(ex.net.transitions()[t.index()].label.starts_with("rule1"));
        }
    }

    #[test]
    fn extended_options_change_the_net_verdict() {
        // The shared-escrow spec is infeasible under paper rules and
        // feasible under delegation — and the nets agree on both counts.
        let (spec, _) = fixtures::example2_shared_escrow();
        let paper = compile(&spec).unwrap();
        let report = crate::coverable(&paper.net, &paper.initial, &paper.goal, 5_000_000).unwrap();
        assert!(!report.coverable);
        let extended = compile_with(&spec, trustseq_core::BuildOptions::EXTENDED).unwrap();
        let report =
            crate::coverable(&extended.net, &extended.initial, &extended.goal, 5_000_000).unwrap();
        assert!(report.coverable);
    }

    #[test]
    fn example2_net_is_larger() {
        let (spec, _) = fixtures::example2();
        let ex = compile(&spec).unwrap();
        assert_eq!(ex.net.place_count(), 14 * 2 + 1);
        assert_eq!(ex.net.transition_count(), 14 * 2 + 1);
    }
}
