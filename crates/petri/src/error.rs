//! Error type for the Petri-net substrate.

use crate::net::{PlaceId, TransitionId};
use std::error::Error;
use std::fmt;
use trustseq_core::CoreError;

/// Errors produced by the Petri-net substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PetriError {
    /// An arc referenced an undeclared place.
    UnknownPlace(PlaceId),
    /// A transition was fired without being enabled.
    NotEnabled(TransitionId),
    /// Coverability search exceeded its exploration budget.
    BudgetExhausted {
        /// The exhausted budget.
        budget: usize,
    },
    /// A core-layer error while building the sequencing graph to compile.
    Core(CoreError),
}

impl fmt::Display for PetriError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PetriError::UnknownPlace(p) => write!(f, "unknown place {p}"),
            PetriError::NotEnabled(t) => write!(f, "transition {t} is not enabled"),
            PetriError::BudgetExhausted { budget } => {
                write!(f, "coverability budget of {budget} markings exhausted")
            }
            PetriError::Core(e) => write!(f, "core error: {e}"),
        }
    }
}

impl Error for PetriError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PetriError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for PetriError {
    fn from(e: CoreError) -> Self {
        PetriError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(PetriError::UnknownPlace(PlaceId::new(1))
            .to_string()
            .contains("p1"));
        assert!(PetriError::BudgetExhausted { budget: 9 }
            .to_string()
            .contains('9'));
        let e: PetriError = CoreError::Infeasible { remaining_edges: 1 }.into();
        assert!(e.source().is_some());
    }
}
