//! Petri-net substrate for trust-explicit commerce exchanges (§7.4 of the
//! paper).
//!
//! Provides a classical place/transition net ([`PetriNet`], [`Marking`]), a
//! mechanical compiler from exchange problems to nets
//! ([`compile::compile`]), and a bounded breadth-first [`coverable`] check.
//! Feasibility of an exchange equals coverability of the compiled net's
//! *exchange-completed* place — an independent algorithm used to cross-check
//! the greedy sequencing-graph reduction.
//!
//! # Example
//!
//! ```
//! use trustseq_core::fixtures;
//! use trustseq_petri::{compile, coverable};
//!
//! # fn main() -> Result<(), trustseq_petri::PetriError> {
//! let (spec, _) = fixtures::example1();
//! let exchange_net = compile::compile(&spec)?;
//! let report = coverable(
//!     &exchange_net.net,
//!     &exchange_net.initial,
//!     &exchange_net.goal,
//!     100_000,
//! )?;
//! assert!(report.coverable); // Example #1 is feasible
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod compile;
mod coverability;
mod error;
mod net;

pub use compile::{compile_graph, compile_with, ExchangeNet};
pub use coverability::{coverable, CoverabilityReport};
pub use error::PetriError;
pub use net::{Marking, PetriNet, PlaceId, Transition, TransitionId};
