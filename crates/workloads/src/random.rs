//! Random exchange topologies with a trust-density knob.

use crate::chain::ChainIds;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use trustseq_model::{AgentId, ExchangeSpec, Money, Role};

/// Configuration for [`random_exchange`].
#[derive(Debug, Clone, PartialEq)]
pub struct RandomConfig {
    /// Number of independent document chains feeding one consumer (width
    /// ≥ 2 creates a bundle conjunction at the consumer).
    pub width: usize,
    /// Maximum brokers per chain (each chain's depth is drawn uniformly
    /// from `1..=max_depth`).
    pub max_depth: usize,
    /// Retail price range in whole dollars (inclusive).
    pub price_range: (i64, i64),
    /// Probability that a seller directly trusts its buyer (enabling the
    /// buyer to play the intermediary role, §4.2.3).
    pub trust_density: f64,
    /// Probability that a link in a chain reuses the previous link's
    /// trusted component (a §9 multi-party shared escrow).
    pub shared_escrow_prob: f64,
    /// Probability that a link is *bridged* across two freshly linked
    /// trusted components (§9's hierarchy of trust).
    pub bridge_prob: f64,
    /// RNG seed; the same seed yields the same specification.
    pub seed: u64,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            width: 2,
            max_depth: 3,
            price_range: (10, 100),
            trust_density: 0.0,
            shared_escrow_prob: 0.0,
            bridge_prob: 0.0,
            seed: 0,
        }
    }
}

/// A generated random exchange: the specification plus the chain structure.
#[derive(Debug, Clone)]
pub struct RandomExchange {
    /// The generated specification.
    pub spec: ExchangeSpec,
    /// The consumer shared by every chain.
    pub consumer: AgentId,
    /// Per-chain structure (brokers, producer, deals), consumer side first.
    pub chains: Vec<ChainIds>,
}

/// Generates a random exchange problem: one consumer bundling `width`
/// documents, each sourced through its own broker chain, with direct-trust
/// edges sprinkled at `trust_density`.
///
/// Deterministic in `config.seed`.
///
/// # Panics
///
/// Panics on a degenerate configuration (`width == 0`, `max_depth == 0`, or
/// an empty/negative price range).
pub fn random_exchange(config: &RandomConfig) -> RandomExchange {
    assert!(config.width >= 1, "width must be at least 1");
    assert!(config.max_depth >= 1, "max_depth must be at least 1");
    let (lo, hi) = config.price_range;
    assert!(
        0 < lo && lo <= hi,
        "price range must be positive and ordered"
    );

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut spec = ExchangeSpec::new(format!("random-{}", config.seed));
    let consumer = spec.add_principal("consumer", Role::Consumer).unwrap();
    let mut chains = Vec::with_capacity(config.width);

    for c in 0..config.width {
        let depth = rng.random_range(1..=config.max_depth);
        let retail_dollars = rng.random_range(lo..=hi);
        // Margin: split at most half the retail price across the chain.
        let margin_cents = (retail_dollars * 100 / 2 / (depth as i64 + 1)).max(1);
        let retail = Money::from_dollars(retail_dollars);
        let margin = Money::from_cents(margin_cents);

        let brokers: Vec<AgentId> = (0..depth)
            .map(|k| {
                spec.add_principal(format!("c{c}b{k}"), Role::Broker)
                    .unwrap()
            })
            .collect();
        let producer = spec
            .add_principal(format!("c{c}src"), Role::Producer)
            .unwrap();
        let mut trusted: Vec<AgentId> = Vec::with_capacity(depth + 1);
        for k in 0..=depth {
            // Possibly share the previous link's escrow (§9 multi-party
            // trusted agent).
            if k > 0 && rng.random_bool(config.shared_escrow_prob) {
                trusted.push(trusted[k - 1]);
            } else {
                trusted.push(spec.add_trusted(format!("c{c}t{k}")).unwrap());
            }
        }
        let doc = spec
            .add_item(format!("c{c}doc"), format!("Document {c}"))
            .unwrap();

        let mut sellers = brokers.clone();
        sellers.push(producer);
        let mut buyers = vec![consumer];
        buyers.extend(brokers.iter().copied());

        let mut price = retail;
        let mut deals = Vec::with_capacity(depth + 1);
        for k in 0..=depth {
            // Possibly bridge this link across two linked escrows (§9
            // hierarchy of trust).
            let bridged = rng.random_bool(config.bridge_prob);
            let deal = if bridged {
                let east = spec.add_trusted(format!("c{c}t{k}e")).unwrap();
                spec.add_trusted_link(trusted[k], east).unwrap();
                spec.add_deal_bridged(sellers[k], buyers[k], trusted[k], east, doc, price)
                    .unwrap()
            } else {
                spec.add_deal(sellers[k], buyers[k], trusted[k], doc, price)
                    .unwrap()
            };
            deals.push(deal);
            price -= margin;
        }
        for (k, &broker) in brokers.iter().enumerate() {
            spec.add_resale_constraint(broker, deals[k], deals[k + 1])
                .unwrap();
        }
        // Direct trust: each seller trusts its buyer with the configured
        // probability.
        for k in 0..=depth {
            if rng.random_bool(config.trust_density) {
                spec.add_trust(sellers[k], buyers[k]).unwrap();
            }
        }

        chains.push(ChainIds {
            consumer,
            brokers,
            producer,
            trusted,
            doc,
            deals,
        });
    }

    RandomExchange {
        spec,
        consumer,
        chains,
    }
}

/// Fraction of `samples` random exchanges (seeds `0..samples`) that are
/// feasible under `config`'s trust density — the measurement behind the
/// feasibility-vs-trust benchmark.
///
/// Generation stays serial (it is cheap and deterministic per seed); the
/// reductions fan out across OS threads via
/// [`trustseq_core::analyze_batch`]. The result is a pure function of
/// `config` and `samples`, independent of worker count.
pub fn feasibility_rate(config: &RandomConfig, samples: u64) -> f64 {
    feasibility_rate_cached(config, samples, None)
}

/// [`feasibility_rate`] with an optional shared
/// [`AnalysisCache`](trustseq_core::AnalysisCache). Random exchanges at a
/// fixed width/depth draw from a small family of structural shapes, so a
/// warm cache answers most seeds with a hash lookup. The measured rate is
/// identical with or without a cache.
pub fn feasibility_rate_cached(
    config: &RandomConfig,
    samples: u64,
    cache: Option<&trustseq_core::AnalysisCache>,
) -> f64 {
    let specs: Vec<ExchangeSpec> = (0..samples)
        .map(|seed| {
            random_exchange(&RandomConfig {
                seed,
                ..config.clone()
            })
            .spec
        })
        .collect();
    let feasible = trustseq_core::analyze_batch_cached(&specs, cache)
        .into_iter()
        .filter(|r| r.as_ref().map(|o| o.feasible).unwrap_or(false))
        .count();
    feasible as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustseq_core::analyze;

    #[test]
    fn generation_is_deterministic() {
        let cfg = RandomConfig {
            seed: 42,
            ..Default::default()
        };
        let a = random_exchange(&cfg);
        let b = random_exchange(&cfg);
        assert_eq!(a.spec, b.spec);
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_exchange(&RandomConfig {
            seed: 1,
            ..Default::default()
        });
        let b = random_exchange(&RandomConfig {
            seed: 2,
            ..Default::default()
        });
        assert_ne!(a.spec, b.spec);
    }

    #[test]
    fn width_one_is_always_feasible() {
        for seed in 0..20 {
            let ex = random_exchange(&RandomConfig {
                width: 1,
                seed,
                ..Default::default()
            });
            assert!(analyze(&ex.spec).unwrap().feasible, "seed {seed}");
        }
    }

    #[test]
    fn distrustful_bundles_are_infeasible() {
        for seed in 0..20 {
            let ex = random_exchange(&RandomConfig {
                width: 2,
                trust_density: 0.0,
                seed,
                ..Default::default()
            });
            assert!(!analyze(&ex.spec).unwrap().feasible, "seed {seed}");
        }
    }

    #[test]
    fn full_trust_makes_bundles_feasible() {
        // With every seller trusting its buyer, every chain dominos like
        // §4.2.3 variant 1.
        for seed in 0..10 {
            let ex = random_exchange(&RandomConfig {
                width: 2,
                trust_density: 1.0,
                seed,
                ..Default::default()
            });
            assert!(analyze(&ex.spec).unwrap().feasible, "seed {seed}");
        }
    }

    #[test]
    fn feasibility_rate_is_monotone_in_trust() {
        let base = RandomConfig {
            width: 2,
            max_depth: 2,
            ..Default::default()
        };
        let none = feasibility_rate(
            &RandomConfig {
                trust_density: 0.0,
                ..base.clone()
            },
            30,
        );
        let half = feasibility_rate(
            &RandomConfig {
                trust_density: 0.5,
                ..base.clone()
            },
            30,
        );
        let full = feasibility_rate(
            &RandomConfig {
                trust_density: 1.0,
                ..base
            },
            30,
        );
        assert_eq!(none, 0.0);
        assert_eq!(full, 1.0);
        assert!((0.0..=1.0).contains(&half));
        assert!(none <= half && half <= full);
    }

    #[test]
    fn federated_features_generate_and_analyze() {
        for seed in 0..20 {
            let ex = random_exchange(&RandomConfig {
                width: 2,
                max_depth: 3,
                shared_escrow_prob: 0.4,
                bridge_prob: 0.4,
                trust_density: 0.3,
                seed,
                ..Default::default()
            });
            // Structures are valid and both analyses terminate.
            ex.spec.validate().unwrap();
            let paper = analyze(&ex.spec).unwrap();
            let extended =
                trustseq_core::analyze_with(&ex.spec, trustseq_core::BuildOptions::EXTENDED)
                    .unwrap();
            // Delegation only ever helps.
            assert!(!paper.feasible || extended.feasible, "seed {seed}");
        }
    }

    #[test]
    fn federated_generation_is_deterministic() {
        let cfg = RandomConfig {
            shared_escrow_prob: 0.5,
            bridge_prob: 0.5,
            seed: 9,
            ..Default::default()
        };
        assert_eq!(random_exchange(&cfg).spec, random_exchange(&cfg).spec);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_panics() {
        let _ = random_exchange(&RandomConfig {
            width: 0,
            ..Default::default()
        });
    }
}
