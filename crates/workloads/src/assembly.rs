//! Assembly markets: §3.2's combined documents generalised to `n` parts.

use trustseq_model::{AgentId, DealId, ExchangeSpec, ItemId, Money, Role};

/// Identifiers of a generated [`assembly_market`] scenario.
#[derive(Debug, Clone)]
pub struct AssemblyIds {
    /// The consumer buying the composite.
    pub consumer: AgentId,
    /// The assembling publisher.
    pub publisher: AgentId,
    /// One source per part.
    pub sources: Vec<AgentId>,
    /// The consumer-side escrow.
    pub t_sale: AgentId,
    /// One escrow per part purchase.
    pub t_parts: Vec<AgentId>,
    /// The part items.
    pub parts: Vec<ItemId>,
    /// The composite item.
    pub composite: ItemId,
    /// The composite sale.
    pub sale: DealId,
    /// The part purchases.
    pub supplies: Vec<DealId>,
}

/// Builds an `n`-part assembly market: a publisher buys `n` parts from `n`
/// sources (at `part_price` each), composes them, and sells the composite
/// to a consumer for `sale_price`, securing the sale before every purchase.
///
/// With `n = 2` this is the §3.2 patent (text + diagrams). Feasible at any
/// width: the publisher is a single bundling principal, so unlike the
/// multi-*broker* bundles of Example #2 there is no circular wait — one red
/// edge gates all its purchases.
///
/// # Panics
///
/// Panics if `n == 0` or a price is non-positive.
pub fn assembly_market(
    n: usize,
    sale_price: Money,
    part_price: Money,
) -> (ExchangeSpec, AssemblyIds) {
    assert!(n >= 1, "an assembly needs at least one part");
    let mut spec = ExchangeSpec::new(format!("assembly-{n}"));
    let consumer = spec.add_principal("consumer", Role::Consumer).unwrap();
    let publisher = spec.add_principal("publisher", Role::Broker).unwrap();
    let sources: Vec<AgentId> = (0..n)
        .map(|k| {
            spec.add_principal(format!("source{}", k + 1), Role::Producer)
                .unwrap()
        })
        .collect();
    let t_sale = spec.add_trusted("t_sale").unwrap();
    let t_parts: Vec<AgentId> = (0..n)
        .map(|k| spec.add_trusted(format!("t_part{}", k + 1)).unwrap())
        .collect();
    let parts: Vec<ItemId> = (0..n)
        .map(|k| {
            spec.add_item(format!("part{}", k + 1), format!("Part {}", k + 1))
                .unwrap()
        })
        .collect();
    let composite = spec.add_item("composite", "The Composite Work").unwrap();
    spec.add_assembly(publisher, parts.clone(), composite)
        .unwrap();

    let sale = spec
        .add_deal(publisher, consumer, t_sale, composite, sale_price)
        .unwrap();
    let supplies: Vec<DealId> = (0..n)
        .map(|k| {
            let d = spec
                .add_deal(sources[k], publisher, t_parts[k], parts[k], part_price)
                .unwrap();
            spec.add_resale_constraint(publisher, sale, d).unwrap();
            d
        })
        .collect();

    (
        spec,
        AssemblyIds {
            consumer,
            publisher,
            sources,
            t_sale,
            t_parts,
            parts,
            composite,
            sale,
            supplies,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustseq_core::{analyze, synthesize};

    #[test]
    fn assembly_markets_are_feasible_at_any_width() {
        for n in 1..=8 {
            let (spec, _) = assembly_market(n, Money::from_dollars(100), Money::from_dollars(5));
            assert!(analyze(&spec).unwrap().feasible, "n = {n}");
        }
    }

    #[test]
    fn synthesised_protocols_verify() {
        for n in [1usize, 3, 6] {
            let (spec, ids) = assembly_market(n, Money::from_dollars(100), Money::from_dollars(5));
            let seq = synthesize(&spec).unwrap();
            seq.verify(&spec).unwrap();
            // One sale + n supplies, each deal 4 transfer steps + 1 notify.
            assert_eq!(seq.len(), (n + 1) * 5, "n = {n}");
            // The composite is delivered exactly once.
            let deliveries = seq
                .actions()
                .filter(|a| {
                    matches!(a, trustseq_model::Action::Give { item, .. }
                        if *item == ids.composite)
                })
                .count();
            assert_eq!(deliveries, 2, "escrow in + consumer out, n = {n}");
        }
    }

    #[test]
    fn two_parts_is_the_patent_shape() {
        let (spec, ids) = assembly_market(2, Money::from_dollars(50), Money::from_dollars(15));
        assert_eq!(spec.assemblies().len(), 1);
        assert_eq!(spec.assemblies()[0].inputs.len(), 2);
        assert_eq!(ids.supplies.len(), 2);
        assert_eq!(spec.resale_constraints().len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn zero_parts_panics() {
        let _ = assembly_market(0, Money::from_dollars(1), Money::from_dollars(1));
    }
}
