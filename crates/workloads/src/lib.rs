//! Parametric exchange-scenario generators for benchmarks and tests.
//!
//! * [`broker_chain`] — Example #1 generalised to resale chains of any
//!   depth;
//! * [`bundle`] / [`bundle_arithmetic`] — Example #2 / Figure 7 generalised
//!   to `n`-document bundles;
//! * [`assembly_market`] — §3.2's combined documents generalised to `n`
//!   parts composed by one publisher;
//! * [`random_exchange`] — seeded random topologies with a
//!   [`trust_density`](RandomConfig::trust_density) knob, and
//!   [`feasibility_rate`] to measure how trust unlocks exchanges;
//! * [`sweep_streaming`] — the same sweep in bounded memory: corpora far
//!   larger than RAM are generated, analyzed and folded chunk by chunk;
//! * [`run_market`] — a streaming marketplace mutating a population of
//!   structures under post/accept/cancel/expire events, with verdicts
//!   maintained incrementally ([`MarketMode::Delta`]) or recomputed from
//!   scratch ([`MarketMode::Full`]).
//!
//! # Example
//!
//! ```
//! use trustseq_model::Money;
//! use trustseq_workloads::{broker_chain, bundle_arithmetic};
//!
//! // A three-broker resale chain is feasible…
//! let (chain, _) = broker_chain(3, Money::from_dollars(100), Money::from_dollars(10));
//! assert!(trustseq_core::analyze(&chain).unwrap().feasible);
//!
//! // …while a three-document bundle deadlocks without indemnities.
//! let (bundle, _) = bundle_arithmetic(3);
//! assert!(!trustseq_core::analyze(&bundle).unwrap().feasible);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod assembly;
mod bundle;
mod chain;
mod market;
mod random;
mod stream;

pub use assembly::{assembly_market, AssemblyIds};
pub use bundle::{bundle, bundle_arithmetic, BundleIds};
pub use chain::{broker_chain, ChainIds};
pub use market::{
    fnv_fold, run_market, Market, MarketConfig, MarketMode, MarketOp, MarketReport, SlotOutOfRange,
    Stall, FNV_OFFSET,
};
pub use random::{
    feasibility_rate, feasibility_rate_cached, random_exchange, RandomConfig, RandomExchange,
};
pub use stream::{feasibility_rate_streaming, sweep_streaming, StreamReport};
