//! A streaming marketplace: a fixed population of exchange structures
//! mutating under post/accept/cancel/expire events, re-certified after
//! every event.
//!
//! This is the workload the delta engine exists for. A live marketplace
//! holds many concurrent exchange structures; most events only *touch* one
//! of them — a trust edge gained after a successful trade (**accept**) or
//! withdrawn after a defection (**cancel**), an indemnity **post**ed or
//! **expire**d — and after every event the touched structure's §4.2.4
//! feasibility verdict must be current before the next trade step is
//! released. [`run_market`] drives exactly that loop in one of two modes:
//!
//! * [`MarketMode::Delta`] — each structure keeps a resident
//!   [`DeltaAnalyzer`](trustseq_core::DeltaAnalyzer); events map to
//!   [`GraphDelta`]s (via
//!   [`trust_deltas`](trustseq_core::SequencingGraph::trust_deltas) /
//!   [`indemnity_deltas`](trustseq_core::SequencingGraph::indemnity_deltas))
//!   and re-certification reads the maintained verdict;
//! * [`MarketMode::Full`] — the same graphs mutate identically, but every
//!   event *and* every re-certification pays a full verdict-only
//!   re-reduction, the way a batch pipeline would.
//!
//! Both modes fold every per-event verdict into an order-sensitive
//! [`verdict_hash`](MarketReport::verdict_hash), so equality of two
//! reports proves the modes agreed on every single event, not just in
//! aggregate.
//!
//! Generation and event choice are deterministic in
//! [`MarketConfig::seed`].

use crate::random::{random_exchange, RandomConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use trustseq_core::{
    AnalysisCache, CommitmentId, DeltaAnalyzer, DeltaStats, EdgeId, GraphDelta, SequencingGraph,
};

/// Configuration for [`run_market`].
#[derive(Debug, Clone, PartialEq)]
pub struct MarketConfig {
    /// Number of concurrent exchange structures in the marketplace.
    pub structures: usize,
    /// Total events to stream.
    pub events: u64,
    /// Probability that an event mutates its structure (the rest are pure
    /// re-certifications). `1.0` is a pure single-mutation stream.
    pub mutation_rate: f64,
    /// RNG seed for generation and event choice.
    pub seed: u64,
    /// Shape of the generated structures (structure `i` uses seed
    /// `seed + i`). Shared-escrow and bridged links are rejected by
    /// [`run_market`]: the event-to-delta mapping is exact only when each
    /// deal has a dedicated trusted component (see
    /// [`trust_deltas`](trustseq_core::SequencingGraph::trust_deltas)).
    pub base: RandomConfig,
    /// Undo fallback threshold for the delta analyzers; `None` uses the
    /// per-graph default.
    pub threshold: Option<usize>,
}

impl Default for MarketConfig {
    fn default() -> Self {
        MarketConfig {
            structures: 16,
            events: 1000,
            mutation_rate: 0.2,
            seed: 0,
            base: RandomConfig::default(),
            threshold: None,
        }
    }
}

/// How [`run_market`] maintains verdicts across events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarketMode {
    /// Incremental: resident delta analyzers, mutation cost proportional
    /// to the disturbed region, re-certification is a read.
    Delta,
    /// Non-incremental baseline: full verdict-only re-reduction on every
    /// mutation and every re-certification.
    Full,
}

/// What a [`run_market`] run did and concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarketReport {
    /// Events streamed.
    pub events: u64,
    /// Events that mutated a structure.
    pub mutations: u64,
    /// Events that only re-certified.
    pub recerts: u64,
    /// Mutations that flipped their structure's feasibility verdict.
    pub flips: u64,
    /// Structures feasible when the stream ended.
    pub feasible_final: usize,
    /// Order-sensitive FNV-1a fold of every per-event
    /// `(event, structure, verdict)` triple: two runs over the same
    /// config agree on this iff they agreed on every verdict in order.
    pub verdict_hash: u64,
    /// Aggregated maintenance counters across all structures (all zeros
    /// except `applied`/`full_runs` in [`MarketMode::Full`]).
    pub stats: DeltaStats,
}

/// A marketplace event kind applied to one slot of a [`Stall`]:
/// accept/cancel toggle the `slot`-th seller→buyer trust pair, post/expire
/// toggle the `slot`-th deal's indemnity. This is the shared event
/// vocabulary of the streaming market workload *and* the analysis
/// service's `Mutate` request — both sides apply events through
/// [`Stall::apply`], so a loadgen mirror replaying accepted events is
/// bit-equivalent to the server's resident state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarketOp {
    /// A trade settles and the seller comes to trust its buyer
    /// (§4.2.3 variant 1): clause-2 waivers switch on.
    Accept,
    /// A defection withdraws that trust: the waivers switch off.
    Cancel,
    /// A buyer collateralizes one deal (§6): its buyer-side principal
    /// edges split away.
    Post,
    /// The indemnity runs out: the edges are restored.
    Expire,
}

/// A [`Stall::apply`] slot index beyond the stall's pair/deal population.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotOutOfRange {
    /// The offending event kind.
    pub op: MarketOp,
    /// The requested slot.
    pub slot: usize,
    /// The number of valid slots for that kind.
    pub limit: usize,
}

impl std::fmt::Display for SlotOutOfRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} slot {} out of range: stall has {} slots for that event",
            self.op, self.slot, self.limit
        )
    }
}

impl std::error::Error for SlotOutOfRange {}

/// One structure's mutable marketplace state: its resident analyzer plus
/// the seller→buyer trust toggles and per-deal indemnity toggles the event
/// stream can flip.
///
/// The event-to-delta mapping depends only on the graph's *shape* (which
/// commitments a principal pair spans, which edges an indemnity splits),
/// and marketplace events never change the shape — so the mapping is
/// computed once per stall via
/// [`trust_deltas`](SequencingGraph::trust_deltas) /
/// [`indemnity_deltas`](SequencingGraph::indemnity_deltas) and each event
/// replays its precomputed target list instead of re-scanning the
/// structure. Both maintenance modes share this, so the delta-vs-full
/// comparison stays about verdict maintenance, not event decoding — and
/// the analysis server and its loadgen verifier share it too, so their
/// comparison stays about the serving stack.
#[derive(Debug)]
pub struct Stall {
    analyzer: DeltaAnalyzer,
    trusted: Vec<bool>,
    /// How many of `trusted` are set (kept so event choice is O(1) in the
    /// common no-candidate case).
    trusted_count: usize,
    indemnified: Vec<bool>,
    /// How many of `indemnified` are set.
    indemnified_count: usize,
    /// Per-pair clause-2 waiver targets of an accept/cancel on pair `k`.
    waiver_targets: Vec<Vec<CommitmentId>>,
    /// Per-deal principal-side edges a post/expire on deal `k` toggles.
    indemnity_edges: Vec<Vec<EdgeId>>,
}

impl Stall {
    /// Generates one marketplace structure: a [`random_exchange`] under
    /// `seed` with `base`'s shape, its resident analyzer in the chosen
    /// maintenance `mode`, and the precomputed event-to-delta mappings.
    ///
    /// # Panics
    ///
    /// Panics if `base` enables shared escrows or bridges — the
    /// event-to-delta mapping is exact only when each deal has a dedicated
    /// trusted component (see
    /// [`trust_deltas`](SequencingGraph::trust_deltas)).
    pub fn generate(
        seed: u64,
        base: &RandomConfig,
        mode: MarketMode,
        threshold: Option<usize>,
    ) -> Stall {
        assert!(
            base.shared_escrow_prob == 0.0 && base.bridge_prob == 0.0,
            "market structures need dedicated trusted components per deal"
        );
        let ex = random_exchange(&RandomConfig {
            seed,
            ..base.clone()
        });
        let mut pairs = Vec::new();
        let mut deals = Vec::new();
        for chain in &ex.chains {
            let mut sellers = chain.brokers.clone();
            sellers.push(chain.producer);
            let mut buyers = vec![chain.consumer];
            buyers.extend(chain.brokers.iter().copied());
            for k in 0..chain.deals.len() {
                pairs.push((sellers[k], buyers[k]));
                deals.push(chain.deals[k]);
            }
        }
        let trusted: Vec<bool> = pairs
            .iter()
            .map(|&(s, b)| ex.spec.trust().trusts(s, b))
            .collect();
        let trusted_count = trusted.iter().filter(|&&t| t).count();
        let indemnified = vec![false; deals.len()];
        let graph = SequencingGraph::from_spec(&ex.spec).unwrap();
        // Decode every possible event once, against the canonical
        // mappings, so the per-event hot path is toggle + maintain.
        let waiver_targets = pairs
            .iter()
            .map(|&(seller, buyer)| {
                graph
                    .trust_deltas(seller, buyer, true)
                    .into_iter()
                    .map(|d| match d {
                        GraphDelta::SetWaiver { commitment, .. } => commitment,
                        _ => unreachable!("trust deltas are waiver toggles"),
                    })
                    .collect()
            })
            .collect();
        let indemnity_edges = deals
            .iter()
            .map(|&deal| {
                graph
                    .indemnity_deltas(deal, true)
                    .into_iter()
                    .map(|d| match d {
                        GraphDelta::RemoveEdge(e) => e,
                        _ => unreachable!("posting maps to edge removals"),
                    })
                    .collect()
            })
            .collect();
        let analyzer = match (mode, threshold) {
            (MarketMode::Full, _) => DeltaAnalyzer::full_baseline(graph),
            (MarketMode::Delta, Some(t)) => DeltaAnalyzer::with_threshold(graph, t),
            (MarketMode::Delta, None) => DeltaAnalyzer::new(graph),
        };
        Stall {
            analyzer,
            trusted,
            trusted_count,
            indemnified,
            indemnified_count: 0,
            waiver_targets,
            indemnity_edges,
        }
    }

    /// Number of trust-pair slots (valid for [`MarketOp::Accept`] /
    /// [`MarketOp::Cancel`]).
    pub fn pairs(&self) -> usize {
        self.trusted.len()
    }

    /// Number of deal slots (valid for [`MarketOp::Post`] /
    /// [`MarketOp::Expire`]).
    pub fn deals(&self) -> usize {
        self.indemnified.len()
    }

    /// The stall's current feasibility verdict (maintained, not
    /// recomputed).
    pub fn feasible(&self) -> bool {
        self.analyzer.feasible()
    }

    /// Edges currently surviving the maintained reduction (0 iff
    /// feasible).
    pub fn remaining_edges(&self) -> usize {
        self.analyzer.remaining_edges()
    }

    /// The stall's live graph, in its current mutation state.
    pub fn graph(&self) -> &SequencingGraph {
        self.analyzer.graph()
    }

    /// The resident analyzer's maintenance counters.
    pub fn stats(&self) -> DeltaStats {
        self.analyzer.stats()
    }

    /// Applies one marketplace event to `slot`, maintaining the verdict
    /// through the resident analyzer. Returns whether the toggle changed
    /// state: re-accepting an already-trusted pair (or re-posting a posted
    /// indemnity, …) is a well-defined no-op reporting `Ok(false)`, so the
    /// operation is idempotent and a replay — e.g. the loadgen verifier
    /// mirroring accepted server events — converges to the same state.
    pub fn apply(&mut self, op: MarketOp, slot: usize) -> Result<bool, SlotOutOfRange> {
        let (state, limit) = match op {
            MarketOp::Accept | MarketOp::Cancel => (&self.trusted, self.trusted.len()),
            MarketOp::Post | MarketOp::Expire => (&self.indemnified, self.indemnified.len()),
        };
        if slot >= limit {
            return Err(SlotOutOfRange { op, slot, limit });
        }
        let want = matches!(op, MarketOp::Accept | MarketOp::Post);
        if state[slot] == want {
            return Ok(false);
        }
        match op {
            MarketOp::Accept | MarketOp::Cancel => {
                self.trusted[slot] = want;
                if want {
                    self.trusted_count += 1;
                } else {
                    self.trusted_count -= 1;
                }
                for &commitment in &self.waiver_targets[slot] {
                    self.analyzer
                        .apply(GraphDelta::SetWaiver {
                            commitment,
                            waived: want,
                        })
                        .unwrap();
                }
            }
            MarketOp::Post | MarketOp::Expire => {
                self.indemnified[slot] = want;
                if want {
                    self.indemnified_count += 1;
                } else {
                    self.indemnified_count -= 1;
                }
                for &edge in &self.indemnity_edges[slot] {
                    let delta = if want {
                        GraphDelta::RemoveEdge(edge)
                    } else {
                        GraphDelta::RestoreEdge(edge)
                    };
                    self.analyzer.apply(delta).unwrap();
                }
            }
        }
        Ok(true)
    }
}

/// FNV-1a offset basis: the seed of every verdict-hash fold.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One order-sensitive FNV-1a-style round over a whole 64-bit word (the
/// verdict hash only needs determinism and order sensitivity, so it folds
/// words, not bytes — the fold is on the per-event hot path). Public so
/// the analysis service's loadgen folds its reply stream with the same
/// function the centralised-reducer mirror uses.
pub fn fnv_fold(hash: u64, word: u64) -> u64 {
    (hash ^ word).wrapping_mul(FNV_PRIME)
}

/// A resident marketplace: the generated structure population plus the
/// deterministic event stream's RNG, kept warm between
/// [`drive`](Market::drive) batches.
///
/// Construction (generation, graph building, the initial full analyses,
/// event decoding) is the cold part; [`drive`](Market::drive) is the
/// sustained part benchmarks measure. [`run_market`] composes the two for
/// one-shot runs.
#[derive(Debug)]
pub struct Market {
    mode: MarketMode,
    mutation_rate: f64,
    stalls: Vec<Stall>,
    rng: StdRng,
    recert_scratch: trustseq_core::ScratchReducer,
    events_streamed: u64,
}

/// Streams `config.events` marketplace events over `config.structures`
/// generated structures, maintaining every verdict in the chosen `mode`.
///
/// With a `cache`, every mutation also exercises the delta-aware
/// invalidation path: the structure's *pre-mutation* labelled key is
/// dropped with
/// [`invalidate_graph`](trustseq_core::AnalysisCache::invalidate_graph),
/// the post-mutation verdict is re-interned through the cache, and the two
/// maintenance paths are asserted to agree — a live cross-check of the
/// engine against the canonicalizing pipeline (and correspondingly slower;
/// benches pass `None`).
///
/// # Panics
///
/// Panics on a degenerate configuration (`structures == 0`, `events == 0`,
/// `mutation_rate` outside `[0, 1]`, shared-escrow or bridged base
/// shapes), and on any verdict disagreement when `cache` is present.
pub fn run_market(
    config: &MarketConfig,
    mode: MarketMode,
    cache: Option<&AnalysisCache>,
) -> MarketReport {
    assert!(config.events >= 1, "events must be at least 1");
    Market::new(config, mode).drive(config.events, cache)
}

impl Market {
    /// Builds the structure population and decodes the event vocabulary
    /// for the chosen maintenance `mode`. Panics on degenerate
    /// configurations (see [`run_market`]).
    pub fn new(config: &MarketConfig, mode: MarketMode) -> Market {
        assert!(config.structures >= 1, "structures must be at least 1");
        assert!(
            (0.0..=1.0).contains(&config.mutation_rate),
            "mutation rate must be within [0, 1]"
        );

        let stalls: Vec<Stall> = (0..config.structures)
            .map(|i| {
                Stall::generate(
                    config.seed.wrapping_add(i as u64),
                    &config.base,
                    mode,
                    config.threshold,
                )
            })
            .collect();

        Market {
            mode,
            mutation_rate: config.mutation_rate,
            stalls,
            rng: StdRng::seed_from_u64(config.seed ^ 0x6d61_726b_6574), // "market"
            recert_scratch: trustseq_core::ScratchReducer::new(),
            events_streamed: 0,
        }
    }

    /// Streams the next `events` events of the deterministic stream,
    /// maintaining every verdict, and reports on the batch. Repeated
    /// calls continue where the previous batch stopped (the sustained
    /// regime the `delta` bench measures);
    /// [`stats`](MarketReport::stats) and
    /// [`feasible_final`](MarketReport::feasible_final) describe the
    /// market's cumulative state. See [`run_market`] for the `cache`
    /// cross-check and panics.
    pub fn drive(&mut self, events: u64, cache: Option<&AnalysisCache>) -> MarketReport {
        let mut report = MarketReport {
            events,
            mutations: 0,
            recerts: 0,
            flips: 0,
            feasible_final: 0,
            verdict_hash: FNV_OFFSET,
            stats: DeltaStats::default(),
        };

        for _ in 0..events {
            let event = self.events_streamed;
            self.events_streamed += 1;
            let s = self.rng.random_range(0..self.stalls.len());
            let stall = &mut self.stalls[s];
            let verdict = if self.rng.random_bool(self.mutation_rate) {
                report.mutations += 1;
                let before = stall.analyzer.feasible();
                if let Some(cache) = cache {
                    // The structure is about to stop presenting this labelled
                    // shape: drop exactly its key, nothing else.
                    cache.invalidate_graph(stall.analyzer.graph());
                }
                // Four marketplace event kinds; rotate to the next applicable
                // one so the stream never stalls (at least one toggle of each
                // pair is always available). The slot draw only happens when
                // candidates exist, so the RNG sequence — and therefore the
                // verdict hash — is unchanged by routing the application
                // through the shared [`Stall::apply`].
                let wanted = self.rng.random_range(0..4u8);
                for offset in 0..4u8 {
                    let kind = (wanted + offset) % 4;
                    let picked = match kind {
                        0 => pick(
                            &mut self.rng,
                            &stall.trusted,
                            false,
                            stall.trusted.len() - stall.trusted_count,
                        )
                        .map(|k| (MarketOp::Accept, k)),
                        1 => pick(&mut self.rng, &stall.trusted, true, stall.trusted_count)
                            .map(|k| (MarketOp::Cancel, k)),
                        2 => pick(
                            &mut self.rng,
                            &stall.indemnified,
                            false,
                            stall.indemnified.len() - stall.indemnified_count,
                        )
                        .map(|k| (MarketOp::Post, k)),
                        _ => pick(
                            &mut self.rng,
                            &stall.indemnified,
                            true,
                            stall.indemnified_count,
                        )
                        .map(|k| (MarketOp::Expire, k)),
                    };
                    match picked {
                        Some((op, k)) => {
                            let changed = stall.apply(op, k).unwrap();
                            debug_assert!(changed, "pick only returns eligible slots");
                        }
                        None => continue,
                    }
                    break;
                }
                let verdict = stall.analyzer.feasible();
                if verdict != before {
                    report.flips += 1;
                }
                if let Some(cache) = cache {
                    let interned = cache.verdict(stall.analyzer.graph());
                    assert_eq!(
                        interned.feasible, verdict,
                        "delta engine and canonicalizing cache disagree \
                     (event {event}, structure {s})"
                    );
                }
                verdict
            } else {
                report.recerts += 1;
                match self.mode {
                    MarketMode::Delta => stall.analyzer.feasible(),
                    // The baseline re-certifies the hard way, like a batch
                    // pipeline fielding a verdict query.
                    MarketMode::Full => self.recert_scratch.run_verdict_only(
                        stall.analyzer.graph(),
                        trustseq_core::Strategy::Deterministic,
                    ),
                }
            };
            report.verdict_hash = fnv_fold(report.verdict_hash, event);
            report.verdict_hash = fnv_fold(report.verdict_hash, s as u64);
            report.verdict_hash = fnv_fold(report.verdict_hash, u64::from(verdict));
        }

        for stall in &self.stalls {
            if stall.analyzer.feasible() {
                report.feasible_final += 1;
            }
            let s = stall.analyzer.stats();
            report.stats.applied += s.applied;
            report.stats.resumed += s.resumed;
            report.stats.undos += s.undos;
            report.stats.undone_steps += s.undone_steps;
            report.stats.fallbacks += s.fallbacks;
            report.stats.full_runs += s.full_runs;
        }
        report
    }
}

/// Uniformly picks an index of `state` whose value is `want`, or `None`
/// if there is none. `available` is the caller-maintained count of
/// matching entries, saving the counting pass on the hot event path.
fn pick(rng: &mut StdRng, state: &[bool], want: bool, available: usize) -> Option<usize> {
    debug_assert_eq!(available, state.iter().filter(|&&v| v == want).count());
    if available == 0 {
        return None;
    }
    let target = rng.random_range(0..available);
    state
        .iter()
        .enumerate()
        .filter(|&(_, &v)| v == want)
        .nth(target)
        .map(|(k, _)| k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MarketConfig {
        MarketConfig {
            structures: 4,
            events: 200,
            mutation_rate: 0.5,
            seed: 7,
            base: RandomConfig {
                max_depth: 3,
                trust_density: 0.3,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_market(&small(), MarketMode::Delta, None);
        let b = run_market(&small(), MarketMode::Delta, None);
        assert_eq!(a, b);
        assert_eq!(a.events, 200);
        assert_eq!(a.mutations + a.recerts, 200);
        assert!(a.mutations > 0 && a.recerts > 0);
    }

    #[test]
    fn delta_and_full_agree_on_every_verdict() {
        let delta = run_market(&small(), MarketMode::Delta, None);
        let full = run_market(&small(), MarketMode::Full, None);
        assert_eq!(delta.verdict_hash, full.verdict_hash);
        assert_eq!(delta.flips, full.flips);
        assert_eq!(delta.feasible_final, full.feasible_final);
        // The baseline re-reduced on every event touching it; the delta
        // engine never fell back to a full run by itself here or it did —
        // either way it must not have *started* from full runs.
        assert!(full.stats.full_runs >= full.mutations);
        assert!(delta.stats.resumed > 0);
    }

    #[test]
    fn cache_cross_check_exercises_invalidation() {
        let cache = trustseq_core::AnalysisCache::new();
        let checked = run_market(&small(), MarketMode::Delta, Some(&cache));
        let plain = run_market(&small(), MarketMode::Delta, None);
        assert_eq!(checked, plain, "cache cross-check must not change results");
        let stats = cache.stats();
        assert!(
            stats.invalidations > 0,
            "mutations must drop stale labelled keys: {stats:?}"
        );
    }

    #[test]
    fn pure_recert_stream_never_mutates() {
        let config = MarketConfig {
            mutation_rate: 0.0,
            events: 50,
            ..small()
        };
        let report = run_market(&config, MarketMode::Delta, None);
        assert_eq!(report.mutations, 0);
        assert_eq!(report.recerts, 50);
        assert_eq!(report.flips, 0);
    }

    #[test]
    fn pure_mutation_stream_never_recerts() {
        let config = MarketConfig {
            mutation_rate: 1.0,
            events: 50,
            ..small()
        };
        let delta = run_market(&config, MarketMode::Delta, None);
        assert_eq!(delta.mutations, 50);
        assert_eq!(delta.recerts, 0);
        let full = run_market(&config, MarketMode::Full, None);
        assert_eq!(delta.verdict_hash, full.verdict_hash);
    }

    #[test]
    fn explicit_threshold_changes_strategy_not_verdicts() {
        let eager = run_market(
            &MarketConfig {
                threshold: Some(0),
                ..small()
            },
            MarketMode::Delta,
            None,
        );
        let lazy = run_market(
            &MarketConfig {
                threshold: Some(usize::MAX),
                ..small()
            },
            MarketMode::Delta,
            None,
        );
        assert_eq!(eager.verdict_hash, lazy.verdict_hash);
        assert_eq!(lazy.stats.fallbacks, 0);
    }

    #[test]
    #[should_panic(expected = "mutation rate")]
    fn out_of_range_mutation_rate_panics() {
        let config = MarketConfig {
            mutation_rate: 1.5,
            ..small()
        };
        let _ = run_market(&config, MarketMode::Delta, None);
    }
}
