//! Document bundles: Example #2 and Figure 7 generalised to `n` documents.

use trustseq_model::{AgentId, DealId, ExchangeSpec, ItemId, Money, Role};

/// Identifiers of a generated [`bundle`] scenario.
#[derive(Debug, Clone)]
pub struct BundleIds {
    /// The bundling consumer.
    pub consumer: AgentId,
    /// One broker per document.
    pub brokers: Vec<AgentId>,
    /// One source per document.
    pub sources: Vec<AgentId>,
    /// The consumer-side trusted intermediaries.
    pub consumer_side: Vec<AgentId>,
    /// The source-side trusted intermediaries.
    pub source_side: Vec<AgentId>,
    /// The documents.
    pub docs: Vec<ItemId>,
    /// The broker→consumer sales.
    pub sales: Vec<DealId>,
    /// The source→broker supplies.
    pub supplies: Vec<DealId>,
}

/// Builds an `n`-document bundle: the consumer wants every document or none;
/// each document comes from its own broker/source pair through dedicated
/// trusted intermediaries, with the usual resale constraints.
///
/// `prices[k]` is document `k`'s retail price; the wholesale price is 80% of
/// retail (rounded down to a cent, minimum one cent).
///
/// With `prices = [$10, $20]` this is the paper's Example #2 (Figures 2/4);
/// with `[$10, $20, $30]` it is Figure 7. Bundles of two or more documents
/// are infeasible without indemnities.
///
/// # Panics
///
/// Panics if `prices` is empty or any price is non-positive.
pub fn bundle(prices: &[Money]) -> (ExchangeSpec, BundleIds) {
    assert!(!prices.is_empty(), "a bundle needs at least one document");
    let n = prices.len();
    let mut spec = ExchangeSpec::new(format!("bundle-{n}"));
    let consumer = spec.add_principal("consumer", Role::Consumer).unwrap();
    let mut ids = BundleIds {
        consumer,
        brokers: Vec::with_capacity(n),
        sources: Vec::with_capacity(n),
        consumer_side: Vec::with_capacity(n),
        source_side: Vec::with_capacity(n),
        docs: Vec::with_capacity(n),
        sales: Vec::with_capacity(n),
        supplies: Vec::with_capacity(n),
    };
    for k in 0..n {
        ids.brokers.push(
            spec.add_principal(format!("broker{}", k + 1), Role::Broker)
                .unwrap(),
        );
        ids.sources.push(
            spec.add_principal(format!("source{}", k + 1), Role::Producer)
                .unwrap(),
        );
        ids.consumer_side
            .push(spec.add_trusted(format!("t{}", 2 * k + 1)).unwrap());
        ids.source_side
            .push(spec.add_trusted(format!("t{}", 2 * k + 2)).unwrap());
        ids.docs.push(
            spec.add_item(format!("doc{}", k + 1), format!("Document {}", k + 1))
                .unwrap(),
        );
    }
    #[allow(clippy::needless_range_loop)]
    for k in 0..n {
        let retail = prices[k];
        assert!(retail > Money::ZERO, "prices must be positive");
        let wholesale = Money::from_cents((retail.cents() * 4 / 5).max(1));
        ids.sales.push(
            spec.add_deal(
                ids.brokers[k],
                consumer,
                ids.consumer_side[k],
                ids.docs[k],
                retail,
            )
            .unwrap(),
        );
        ids.supplies.push(
            spec.add_deal(
                ids.sources[k],
                ids.brokers[k],
                ids.source_side[k],
                ids.docs[k],
                wholesale,
            )
            .unwrap(),
        );
        spec.add_resale_constraint(ids.brokers[k], ids.sales[k], ids.supplies[k])
            .unwrap();
    }
    (spec, ids)
}

/// Convenience: a bundle of `n` documents priced `$10, $20, …, $10·n`
/// (Figure 7's schedule extended).
pub fn bundle_arithmetic(n: usize) -> (ExchangeSpec, BundleIds) {
    let prices: Vec<Money> = (1..=n as i64)
        .map(|k| Money::from_dollars(10 * k))
        .collect();
    bundle(&prices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustseq_core::analyze;
    use trustseq_core::indemnity::{greedy_plan, make_feasible};

    #[test]
    fn two_doc_bundle_matches_example2() {
        let (spec, _) = bundle(&[Money::from_dollars(10), Money::from_dollars(20)]);
        let g = spec.interaction_graph().unwrap();
        assert_eq!(g.principal_count(), 5);
        assert_eq!(g.trusted_count(), 4);
        assert_eq!(g.edge_count(), 8);
        assert!(!analyze(&spec).unwrap().feasible);
    }

    #[test]
    fn single_doc_bundle_is_feasible() {
        let (spec, _) = bundle(&[Money::from_dollars(10)]);
        assert!(analyze(&spec).unwrap().feasible);
    }

    #[test]
    fn bundles_infeasible_without_indemnities() {
        for n in 2..=6 {
            let (spec, _) = bundle_arithmetic(n);
            assert!(!analyze(&spec).unwrap().feasible, "n = {n}");
        }
    }

    #[test]
    fn greedy_indemnities_unlock_any_bundle() {
        for n in 2..=6 {
            let (mut spec, _) = bundle_arithmetic(n);
            let plans = make_feasible(&mut spec).unwrap();
            assert_eq!(plans.len(), 1, "n = {n}");
            assert_eq!(plans[0].len(), n - 1);
            assert!(analyze(&spec).unwrap().feasible);
        }
    }

    #[test]
    fn greedy_total_formula() {
        // With prices 10, 20, …, 10n the greedy total is
        // Σ_{k=2..n} (S − 10k) where S = 10·n(n+1)/2.
        for n in 2..=6i64 {
            let (spec, ids) = bundle_arithmetic(n as usize);
            let plan = greedy_plan(&spec, ids.consumer);
            let s = 10 * n * (n + 1) / 2;
            let expected: i64 = (2..=n).map(|k| s - 10 * k).sum();
            assert_eq!(plan.total(), Money::from_dollars(expected), "n = {n}");
        }
    }

    #[test]
    fn wholesale_is_below_retail() {
        let (spec, ids) = bundle_arithmetic(3);
        for k in 0..3 {
            let retail = spec.deal(ids.sales[k]).unwrap().price();
            let wholesale = spec.deal(ids.supplies[k]).unwrap().price();
            assert!(wholesale < retail);
        }
    }
}
