//! Broker chains: Example #1 generalised to arbitrary resale depth.

use trustseq_model::{AgentId, DealId, ExchangeSpec, ItemId, Money, Role};

/// Identifiers of a generated [`broker_chain`] scenario.
#[derive(Debug, Clone)]
pub struct ChainIds {
    /// The consumer at the head of the chain.
    pub consumer: AgentId,
    /// The brokers, outermost (selling to the consumer) first.
    pub brokers: Vec<AgentId>,
    /// The producer at the tail.
    pub producer: AgentId,
    /// The trusted intermediaries, consumer side first.
    pub trusted: Vec<AgentId>,
    /// The traded document.
    pub doc: ItemId,
    /// The deals, consumer side first.
    pub deals: Vec<DealId>,
}

/// Builds a resale chain: `consumer ← b₁ ← b₂ ← … ← b_depth ← producer`,
/// each adjacent pair trading the same document through its own trusted
/// intermediary, every broker constrained to secure its sale before its
/// purchase (§4.1's red edges).
///
/// With `depth = 1` this is exactly the paper's Example #1. Prices fall by
/// `margin` at each resale step so every broker earns a spread; the retail
/// price is `retail`.
///
/// # Panics
///
/// Panics if the margin schedule would drive a price to zero — pick
/// `retail > depth * margin`.
pub fn broker_chain(depth: usize, retail: Money, margin: Money) -> (ExchangeSpec, ChainIds) {
    assert!(depth >= 1, "a chain needs at least one broker");
    let mut spec = ExchangeSpec::new(format!("chain-{depth}"));
    let consumer = spec.add_principal("consumer", Role::Consumer).unwrap();
    let brokers: Vec<AgentId> = (0..depth)
        .map(|k| {
            spec.add_principal(format!("broker{}", k + 1), Role::Broker)
                .unwrap()
        })
        .collect();
    let producer = spec.add_principal("producer", Role::Producer).unwrap();
    let trusted: Vec<AgentId> = (0..=depth)
        .map(|k| spec.add_trusted(format!("t{}", k + 1)).unwrap())
        .collect();
    let doc = spec.add_item("doc", "The Document").unwrap();

    // Sellers from the consumer side inward: b1, …, b_depth, producer.
    let mut sellers = brokers.clone();
    sellers.push(producer);
    // Buyers: consumer, b1, …, b_depth.
    let mut buyers = vec![consumer];
    buyers.extend(brokers.iter().copied());

    let mut price = retail;
    let mut deals = Vec::with_capacity(depth + 1);
    for k in 0..=depth {
        assert!(
            price > Money::ZERO,
            "margin schedule exhausted the price; raise `retail`"
        );
        deals.push(
            spec.add_deal(sellers[k], buyers[k], trusted[k], doc, price)
                .unwrap(),
        );
        price -= margin;
    }
    for (k, &broker) in brokers.iter().enumerate() {
        // broker k sells deal k and buys deal k+1.
        spec.add_resale_constraint(broker, deals[k], deals[k + 1])
            .unwrap();
    }

    (
        spec,
        ChainIds {
            consumer,
            brokers,
            producer,
            trusted,
            doc,
            deals,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustseq_core::{analyze, synthesize};

    #[test]
    fn depth_one_is_example1_shaped() {
        let (spec, ids) = broker_chain(1, Money::from_dollars(100), Money::from_dollars(20));
        assert_eq!(spec.deals().len(), 2);
        assert_eq!(ids.brokers.len(), 1);
        assert_eq!(spec.resale_constraints().len(), 1);
        let g = spec.interaction_graph().unwrap();
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn chains_are_feasible_at_any_depth() {
        for depth in 1..=8 {
            let (spec, _) = broker_chain(depth, Money::from_dollars(1000), Money::from_dollars(10));
            assert!(analyze(&spec).unwrap().feasible, "depth {depth}");
        }
    }

    #[test]
    fn chain_execution_verifies() {
        for depth in [1, 3, 5] {
            let (spec, _) = broker_chain(depth, Money::from_dollars(1000), Money::from_dollars(10));
            let seq = synthesize(&spec).unwrap();
            seq.verify(&spec).unwrap();
            // Each deal: 2 deposits + 2 forwards; each trusted notifies once.
            let deals = depth + 1;
            assert_eq!(seq.len(), deals * 4 + deals);
        }
    }

    #[test]
    fn prices_fall_along_the_chain() {
        let (spec, ids) = broker_chain(3, Money::from_dollars(100), Money::from_dollars(5));
        let prices: Vec<Money> = ids
            .deals
            .iter()
            .map(|&d| spec.deal(d).unwrap().price())
            .collect();
        for w in prices.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn deep_chains_scale() {
        // A 100-broker resale chain (202 participants, 101 deals) still
        // analyses, synthesises and verifies in well under a second.
        let (spec, _) = broker_chain(100, Money::from_dollars(100_000), Money::from_dollars(1));
        assert!(analyze(&spec).unwrap().feasible);
        let seq = synthesize(&spec).unwrap();
        seq.verify(&spec).unwrap();
        assert_eq!(seq.len(), 101 * 5);
    }

    #[test]
    #[should_panic(expected = "margin schedule")]
    fn exhausted_margin_panics() {
        let _ = broker_chain(5, Money::from_dollars(4), Money::from_dollars(1));
    }
}
