//! Bounded-memory streaming sweeps: generate → analyze → fold in fixed
//! chunks.
//!
//! [`feasibility_rate`](crate::feasibility_rate) materializes the whole
//! corpus of random exchanges before fanning the reductions out, which is
//! fine for thousands of samples and fatal for billions: resident memory
//! grows linearly with the corpus. The streaming driver caps residency at
//! one *chunk*: it generates `chunk_len` specs into a reused buffer,
//! analyzes the chunk through the regular batch machinery (so worker
//! fan-out, the analysis cache and the batch mode all apply unchanged),
//! folds the verdicts into running statistics, and reuses the buffer for
//! the next chunk. A corpus 10×, 1000×, any× larger than the chunk budget
//! completes in the same peak memory — the property the `hotpath` bench
//! asserts with a byte-tracking allocator.
//!
//! The measured statistics are a pure per-spec fold, so they are
//! *identical* to the materialized driver's on the same configuration —
//! chunking changes when a spec is analyzed, never its verdict.

use crate::random::{random_exchange, RandomConfig};
use trustseq_model::ExchangeSpec;

/// Folded statistics of one streaming sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamReport {
    /// Total specs generated and analyzed (seeds `0..samples`).
    pub samples: u64,
    /// Specs whose exchange was feasible.
    pub feasible: u64,
    /// Specs whose graph construction failed (counted, not fatal — same
    /// per-spec error policy as the batch analyzer).
    pub errors: u64,
    /// Chunks the corpus was processed in.
    pub chunks: u64,
    /// The resident chunk budget the sweep ran under (specs per chunk).
    pub chunk_len: usize,
}

impl StreamReport {
    /// Feasible fraction of all samples (0.0 on an empty sweep).
    pub fn rate(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.feasible as f64 / self.samples as f64
        }
    }
}

/// Sweeps `samples` random exchanges (seeds `0..samples`) under `config`
/// without materializing the corpus: at most `chunk_len` specs are
/// resident at any point. Analysis runs through
/// [`trustseq_core::analyze_batch_cached`], so the persistent worker
/// pool, the process-wide [`BatchMode`](trustseq_core::BatchMode) and the
/// optional shared cache behave exactly as in the materialized driver.
///
/// The report is a pure function of `config` and `samples` — independent
/// of `chunk_len`, worker count, batch mode and cache (equality with the
/// materialized [`feasibility_rate`](crate::feasibility_rate) is property
/// tested).
///
/// # Panics
///
/// Panics if `chunk_len` is zero or on a degenerate `config` (same rules
/// as [`random_exchange`]).
pub fn sweep_streaming(
    config: &RandomConfig,
    samples: u64,
    chunk_len: usize,
    cache: Option<&trustseq_core::AnalysisCache>,
) -> StreamReport {
    assert!(chunk_len >= 1, "chunk_len must be at least 1");
    let mut report = StreamReport {
        samples,
        feasible: 0,
        errors: 0,
        chunks: 0,
        chunk_len,
    };
    // The chunk buffer is the whole resident corpus; it is cleared and
    // refilled in place, so its capacity — and with it peak residency —
    // never exceeds one chunk of specs.
    let mut chunk: Vec<ExchangeSpec> = Vec::with_capacity(chunk_len.min(samples as usize));
    let mut seed = 0u64;
    while seed < samples {
        let end = samples.min(seed + chunk_len as u64);
        chunk.clear();
        chunk.extend((seed..end).map(|seed| {
            random_exchange(&RandomConfig {
                seed,
                ..config.clone()
            })
            .spec
        }));
        for result in trustseq_core::analyze_batch_cached(&chunk, cache) {
            match result {
                Ok(outcome) => report.feasible += u64::from(outcome.feasible),
                Err(_) => report.errors += 1,
            }
        }
        report.chunks += 1;
        seed = end;
    }
    report
}

/// [`feasibility_rate`](crate::feasibility_rate) in bounded memory: the
/// feasible fraction of `samples` random exchanges, never holding more
/// than `chunk_len` specs resident. The rate is identical to the
/// materialized driver's.
pub fn feasibility_rate_streaming(
    config: &RandomConfig,
    samples: u64,
    chunk_len: usize,
    cache: Option<&trustseq_core::AnalysisCache>,
) -> f64 {
    sweep_streaming(config, samples, chunk_len, cache).rate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility_rate_cached;

    fn half_trust() -> RandomConfig {
        RandomConfig {
            width: 2,
            max_depth: 2,
            trust_density: 0.5,
            ..Default::default()
        }
    }

    #[test]
    fn streaming_rate_equals_materialized_rate() {
        for density in [0.0, 0.5, 1.0] {
            let config = RandomConfig {
                trust_density: density,
                ..half_trust()
            };
            let materialized = feasibility_rate_cached(&config, 40, None);
            for chunk_len in [1usize, 7, 16, 40, 100] {
                let streamed = feasibility_rate_streaming(&config, 40, chunk_len, None);
                assert_eq!(
                    streamed, materialized,
                    "density {density}, chunk {chunk_len}"
                );
            }
        }
    }

    #[test]
    fn chunk_accounting_is_exact() {
        let report = sweep_streaming(&half_trust(), 25, 8, None);
        assert_eq!(report.samples, 25);
        assert_eq!(report.chunks, 4, "ceil(25 / 8)");
        assert_eq!(report.chunk_len, 8);
        assert_eq!(report.errors, 0);
        assert!(report.feasible <= 25);
        // A chunk larger than the corpus degenerates to one chunk.
        let one = sweep_streaming(&half_trust(), 5, 1000, None);
        assert_eq!(one.chunks, 1);
        // An empty sweep is well-defined.
        let empty = sweep_streaming(&half_trust(), 0, 8, None);
        assert_eq!(empty.chunks, 0);
        assert_eq!(empty.rate(), 0.0);
    }

    #[test]
    fn shared_cache_leaves_the_report_unchanged() {
        let cache = trustseq_core::AnalysisCache::new();
        let cold = sweep_streaming(&half_trust(), 30, 10, Some(&cache));
        let warm = sweep_streaming(&half_trust(), 30, 10, Some(&cache));
        let uncached = sweep_streaming(&half_trust(), 30, 10, None);
        assert_eq!(cold, warm);
        assert_eq!(cold, uncached);
        assert!(cache.stats().hits > 0, "second pass must hit the cache");
    }

    #[test]
    #[should_panic(expected = "chunk_len")]
    fn zero_chunk_panics() {
        let _ = sweep_streaming(&half_trust(), 10, 0, None);
    }
}
