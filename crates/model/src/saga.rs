//! Sagas (§7.2): per-party *ordered* acceptable executions.
//!
//! The paper's state representation "was motivated by the saga": each agent
//! effectively has its own set of acceptable sagas, and the graph machinery
//! establishes "that there is an execution satisfying the sagas for all of
//! the involved parties". This module makes that reading executable: a
//! party's view of an execution — the ordered subsequence of actions
//! involving it — is an **admissible saga** when
//!
//! 1. its action *set* matches one of the party's acceptable partial states
//!    (§2.3), and
//! 2. every compensation (`give⁻¹`/`pay⁻¹`) comes after the forward action
//!    it undoes — a saga compensates work already done, never work to come.
//!
//! The simulator's integration tests check every honest party's view of
//! every run (including defection runs) against this definition.

use crate::{AcceptanceSpec, Action, AgentId, ExchangeState, Outcome};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A party's ordered view of an execution: the subsequence of *transfer*
/// actions involving it.
///
/// ```
/// use trustseq_model::{Action, AgentId, ItemId, Money, SagaView};
///
/// let (c, p, t) = (AgentId::new(0), AgentId::new(1), AgentId::new(2));
/// let run = [
///     Action::give(p, t, ItemId::new(0)),
///     Action::notify(t, c),
///     Action::pay(c, t, Money::from_dollars(20)),
///     Action::give(t, c, ItemId::new(0)),
/// ];
/// let view = SagaView::extract(c, run);
/// assert_eq!(view.len(), 2); // the notify is informational
/// assert!(view.compensations_ordered());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SagaView {
    party: AgentId,
    actions: Vec<Action>,
}

impl SagaView {
    /// Extracts `party`'s view from a totally-ordered action sequence.
    ///
    /// `notify` actions are informational and excluded, matching the
    /// acceptability semantics of [`PartialState`](crate::PartialState).
    pub fn extract(party: AgentId, sequence: impl IntoIterator<Item = Action>) -> Self {
        SagaView {
            party,
            actions: sequence
                .into_iter()
                .filter(|a| a.is_transfer() && a.involves(party))
                .collect(),
        }
    }

    /// The viewing party.
    pub fn party(&self) -> AgentId {
        self.party
    }

    /// The ordered actions.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// Number of actions in the view.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// `true` when the party never acted (the status-quo saga).
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Whether every compensation follows the forward action it undoes —
    /// the saga ordering discipline.
    pub fn compensations_ordered(&self) -> bool {
        self.actions
            .iter()
            .enumerate()
            .all(|(i, a)| match a.compensated() {
                Some(forward) => self.actions[..i].contains(&forward),
                None => true,
            })
    }

    /// Classifies the view against the party's acceptance specification:
    /// [`Outcome::Unacceptable`] if the set does not match any acceptable
    /// partial state *or* a compensation precedes its forward action.
    pub fn classify(&self, accept: &AcceptanceSpec) -> Outcome {
        if !self.compensations_ordered() {
            return Outcome::Unacceptable;
        }
        let state: ExchangeState = self.actions.iter().copied().collect();
        accept.classify(&state)
    }

    /// Whether the view is an admissible saga (acceptable or preferred).
    pub fn is_admissible(&self, accept: &AcceptanceSpec) -> bool {
        self.classify(accept).is_acceptable()
    }
}

impl fmt::Display for SagaView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.party)?;
        for (i, a) in self.actions.iter().enumerate() {
            if i > 0 {
                write!(f, " ; ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExchangeSpec, ItemId, Money, Role};

    fn sale() -> (ExchangeSpec, AgentId, AgentId, AgentId, ItemId, Money) {
        let mut spec = ExchangeSpec::new("sale");
        let p = spec.add_principal("p", Role::Producer).unwrap();
        let c = spec.add_principal("c", Role::Consumer).unwrap();
        let t = spec.add_trusted("t").unwrap();
        let i = spec.add_item("doc", "Doc").unwrap();
        spec.add_deal(p, c, t, i, Money::from_dollars(20)).unwrap();
        (spec, p, c, t, i, Money::from_dollars(20))
    }

    #[test]
    fn extraction_filters_to_the_party() {
        let (_, p, c, t, i, m) = sale();
        let seq = [
            Action::give(p, t, i),
            Action::notify(t, c),
            Action::pay(c, t, m),
            Action::give(t, c, i),
            Action::pay(t, p, m),
        ];
        let view = SagaView::extract(c, seq);
        assert_eq!(view.len(), 2); // pay + receive; notify excluded
        assert_eq!(view.actions()[0], Action::pay(c, t, m));
        let view_p = SagaView::extract(p, seq);
        assert_eq!(view_p.len(), 2);
    }

    #[test]
    fn happy_path_is_an_admissible_saga() {
        let (spec, p, c, t, i, m) = sale();
        let seq = [
            Action::give(p, t, i),
            Action::pay(c, t, m),
            Action::give(t, c, i),
            Action::pay(t, p, m),
        ];
        for party in [p, c] {
            let view = SagaView::extract(party, seq);
            let accept = spec.acceptance_spec_of(party);
            assert_eq!(view.classify(&accept), Outcome::Preferred);
        }
    }

    #[test]
    fn refund_saga_is_admissible_only_in_order() {
        let (spec, _p, c, t, _i, m) = sale();
        let accept = spec.acceptance_spec_of(c);
        let pay = Action::pay(c, t, m);
        let refund = pay.inverse().unwrap();

        let good = SagaView::extract(c, [pay, refund]);
        assert!(good.is_admissible(&accept));
        assert!(good.compensations_ordered());

        // A refund *before* the payment is no saga at all.
        let bad = SagaView::extract(c, [refund, pay]);
        assert!(!bad.compensations_ordered());
        assert_eq!(bad.classify(&accept), Outcome::Unacceptable);
    }

    #[test]
    fn dangling_payment_is_inadmissible() {
        let (spec, _p, c, t, _i, m) = sale();
        let accept = spec.acceptance_spec_of(c);
        let view = SagaView::extract(c, [Action::pay(c, t, m)]);
        assert!(!view.is_admissible(&accept));
    }

    #[test]
    fn empty_view_is_the_status_quo_saga() {
        let (spec, _p, c, ..) = sale();
        let accept = spec.acceptance_spec_of(c);
        let view = SagaView::extract(c, []);
        assert!(view.is_empty());
        assert_eq!(view.classify(&accept), Outcome::Acceptable);
    }

    #[test]
    fn display_joins_actions() {
        let (_, _p, c, t, _i, m) = sale();
        let view = SagaView::extract(c, [Action::pay(c, t, m)]);
        assert!(view.to_string().starts_with("a1: pay"));
    }
}
