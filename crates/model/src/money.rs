//! Exact monetary amounts.

use crate::ModelError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// A monetary amount in integer cents.
///
/// Indemnity planning (§6 of the paper) sums and compares prices, so amounts
/// must be exact; floating point is never used. Arithmetic is implemented
/// with the `+`/`-` operators and **panics on overflow** (the checked
/// variants [`Money::checked_add`] / [`Money::checked_sub`] are available
/// where overflow is reachable from untrusted inputs).
///
/// ```
/// use trustseq_model::Money;
///
/// let price = Money::from_dollars(30);
/// let total = price + Money::from_cents(50);
/// assert_eq!(total.to_string(), "$30.50");
/// assert_eq!(total.cents(), 3050);
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Money(i64);

impl Money {
    /// The zero amount.
    pub const ZERO: Money = Money(0);

    /// Creates an amount from integer cents.
    pub const fn from_cents(cents: i64) -> Self {
        Money(cents)
    }

    /// Creates an amount from whole dollars.
    ///
    /// # Panics
    ///
    /// Panics if `dollars * 100` overflows `i64`.
    pub const fn from_dollars(dollars: i64) -> Self {
        match dollars.checked_mul(100) {
            Some(cents) => Money(cents),
            None => panic!("dollar amount overflows Money"),
        }
    }

    /// Returns the amount in cents.
    pub const fn cents(self) -> i64 {
        self.0
    }

    /// Returns `true` if the amount is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if the amount is strictly negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Checked addition; `None` on overflow.
    pub const fn checked_add(self, rhs: Money) -> Option<Money> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Money(v)),
            None => None,
        }
    }

    /// Checked subtraction; `None` on overflow.
    pub const fn checked_sub(self, rhs: Money) -> Option<Money> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Money(v)),
            None => None,
        }
    }

    /// Saturating addition, clamping at the representable extremes.
    pub const fn saturating_add(self, rhs: Money) -> Money {
        Money(self.0.saturating_add(rhs.0))
    }
}

impl Add for Money {
    type Output = Money;

    fn add(self, rhs: Money) -> Money {
        Money(
            self.0
                .checked_add(rhs.0)
                .expect("money addition overflowed"),
        )
    }
}

impl Sub for Money {
    type Output = Money;

    fn sub(self, rhs: Money) -> Money {
        Money(
            self.0
                .checked_sub(rhs.0)
                .expect("money subtraction overflowed"),
        )
    }
}

impl AddAssign for Money {
    fn add_assign(&mut self, rhs: Money) {
        *self = *self + rhs;
    }
}

impl SubAssign for Money {
    fn sub_assign(&mut self, rhs: Money) {
        *self = *self - rhs;
    }
}

impl Neg for Money {
    type Output = Money;

    fn neg(self) -> Money {
        Money(-self.0)
    }
}

impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, |acc, m| acc + m)
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.unsigned_abs();
        write!(f, "{sign}${}.{:02}", abs / 100, abs % 100)
    }
}

impl FromStr for Money {
    type Err = ModelError;

    /// Parses `"12"`, `"12.5"`, `"12.50"`, `"$12.50"` or `"-$3.07"`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidMoney`] when the string is not a dollar
    /// amount with at most two decimal places.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let original = s;
        let err = || ModelError::InvalidMoney(original.to_owned());
        let mut s = s.trim();
        let negative = if let Some(rest) = s.strip_prefix('-') {
            s = rest;
            true
        } else {
            false
        };
        s = s.strip_prefix('$').unwrap_or(s);
        if s.is_empty() {
            return Err(err());
        }
        let (dollars_str, cents_str) = match s.split_once('.') {
            Some((d, c)) => (d, c),
            None => (s, ""),
        };
        if dollars_str.is_empty() && cents_str.is_empty() {
            return Err(err());
        }
        let dollars: i64 = if dollars_str.is_empty() {
            0
        } else {
            dollars_str.parse().map_err(|_| err())?
        };
        let cents: i64 = match cents_str.len() {
            0 => 0,
            1 => cents_str.parse::<i64>().map_err(|_| err())? * 10,
            2 => cents_str.parse().map_err(|_| err())?,
            _ => return Err(err()),
        };
        if dollars < 0 || cents < 0 {
            // Signs inside the numeric body ("$-3") are rejected; only a
            // leading '-' is accepted.
            return Err(err());
        }
        let magnitude = dollars
            .checked_mul(100)
            .and_then(|d| d.checked_add(cents))
            .ok_or_else(err)?;
        Ok(Money(if negative { -magnitude } else { magnitude }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dollars_and_cents_constructors_agree() {
        assert_eq!(Money::from_dollars(3), Money::from_cents(300));
        assert_eq!(Money::from_dollars(0), Money::ZERO);
        assert_eq!(Money::from_dollars(-2).cents(), -200);
    }

    #[test]
    fn arithmetic_behaves_like_integers() {
        let a = Money::from_cents(150);
        let b = Money::from_cents(75);
        assert_eq!((a + b).cents(), 225);
        assert_eq!((a - b).cents(), 75);
        assert_eq!((-a).cents(), -150);
        let mut c = a;
        c += b;
        c -= a;
        assert_eq!(c, b);
    }

    #[test]
    fn sum_of_prices() {
        let total: Money = [10, 20, 30].iter().map(|&d| Money::from_dollars(d)).sum();
        assert_eq!(total, Money::from_dollars(60));
    }

    #[test]
    fn display_formats_dollars() {
        assert_eq!(Money::from_cents(0).to_string(), "$0.00");
        assert_eq!(Money::from_cents(5).to_string(), "$0.05");
        assert_eq!(Money::from_cents(1234).to_string(), "$12.34");
        assert_eq!(Money::from_cents(-1005).to_string(), "-$10.05");
    }

    #[test]
    fn parse_accepts_common_forms() {
        for (input, cents) in [
            ("12", 1200),
            ("12.5", 1250),
            ("12.50", 1250),
            ("$12.50", 1250),
            ("-$3.07", -307),
            (".5", 50),
            ("$0.99", 99),
            (" 7 ", 700),
        ] {
            assert_eq!(input.parse::<Money>().unwrap().cents(), cents, "{input}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for input in ["", "$", "abc", "1.234", "1..2", "$-3", "--1", "1.x"] {
            assert!(input.parse::<Money>().is_err(), "{input}");
        }
    }

    #[test]
    fn parse_display_roundtrip() {
        for cents in [-100_000, -7, 0, 5, 99, 100, 123_456] {
            let m = Money::from_cents(cents);
            assert_eq!(m.to_string().parse::<Money>().unwrap(), m);
        }
    }

    #[test]
    fn checked_ops_catch_overflow() {
        let max = Money::from_cents(i64::MAX);
        assert!(max.checked_add(Money::from_cents(1)).is_none());
        assert_eq!(max.saturating_add(Money::from_cents(1)), max);
        let min = Money::from_cents(i64::MIN);
        assert!(min.checked_sub(Money::from_cents(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "money addition overflowed")]
    fn unchecked_add_panics_on_overflow() {
        let _ = Money::from_cents(i64::MAX) + Money::from_cents(1);
    }
}
