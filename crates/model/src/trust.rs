//! The directed trust relation between principals (§4.2.3).

use crate::AgentId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A directed trust relation between principals.
///
/// Trust need not be symmetric: `a` trusting `b` lets `b` play the role of
/// the trusted intermediary in exchanges between them, which — as §4.2.3 of
/// the paper shows — can make a transaction feasible in one direction and
/// leave it infeasible in the other.
///
/// ```
/// use trustseq_model::{AgentId, TrustRelation};
///
/// let source = AgentId::new(0);
/// let broker = AgentId::new(1);
/// let mut trust = TrustRelation::new();
/// trust.add(source, broker); // the source trusts the broker…
/// assert!(trust.trusts(source, broker));
/// assert!(!trust.trusts(broker, source)); // …but not vice versa
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrustRelation {
    pairs: BTreeSet<(AgentId, AgentId)>,
}

impl TrustRelation {
    /// Creates an empty relation (universal distrust).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `truster` directly trusts `trustee`.
    ///
    /// Returns `false` if the pair was already present. Self-trust is
    /// ignored (every agent trivially trusts itself).
    pub fn add(&mut self, truster: AgentId, trustee: AgentId) -> bool {
        if truster == trustee {
            return false;
        }
        self.pairs.insert((truster, trustee))
    }

    /// Records mutual trust between `a` and `b`.
    pub fn add_mutual(&mut self, a: AgentId, b: AgentId) {
        self.add(a, b);
        self.add(b, a);
    }

    /// Withdraws direct trust from `truster` towards `trustee` (a defection,
    /// or a reputation decay event in a live marketplace).
    ///
    /// Returns `false` if the pair was not present. Self-trust cannot be
    /// withdrawn — it is implicit and never stored.
    pub fn remove(&mut self, truster: AgentId, trustee: AgentId) -> bool {
        self.pairs.remove(&(truster, trustee))
    }

    /// Whether `truster` directly trusts `trustee`.
    ///
    /// Self-trust always holds.
    pub fn trusts(&self, truster: AgentId, trustee: AgentId) -> bool {
        truster == trustee || self.pairs.contains(&(truster, trustee))
    }

    /// Whether the trust between `a` and `b` is mutual.
    pub fn mutual(&self, a: AgentId, b: AgentId) -> bool {
        self.trusts(a, b) && self.trusts(b, a)
    }

    /// Number of directed trust pairs recorded.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` when no trust pair has been recorded.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates over `(truster, trustee)` pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (AgentId, AgentId)> + '_ {
        self.pairs.iter().copied()
    }
}

impl FromIterator<(AgentId, AgentId)> for TrustRelation {
    fn from_iter<I: IntoIterator<Item = (AgentId, AgentId)>>(iter: I) -> Self {
        let mut rel = TrustRelation::new();
        for (a, b) in iter {
            rel.add(a, b);
        }
        rel
    }
}

impl Extend<(AgentId, AgentId)> for TrustRelation {
    fn extend<I: IntoIterator<Item = (AgentId, AgentId)>>(&mut self, iter: I) {
        for (a, b) in iter {
            self.add(a, b);
        }
    }
}

impl fmt::Display for TrustRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pairs.is_empty() {
            return f.write_str("(no direct trust)");
        }
        for (i, (a, b)) in self.pairs.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{a} trusts {b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trust_is_directed() {
        let mut t = TrustRelation::new();
        assert!(t.add(AgentId::new(0), AgentId::new(1)));
        assert!(t.trusts(AgentId::new(0), AgentId::new(1)));
        assert!(!t.trusts(AgentId::new(1), AgentId::new(0)));
        assert!(!t.mutual(AgentId::new(0), AgentId::new(1)));
    }

    #[test]
    fn self_trust_is_implicit_and_not_stored() {
        let mut t = TrustRelation::new();
        assert!(!t.add(AgentId::new(3), AgentId::new(3)));
        assert!(t.trusts(AgentId::new(3), AgentId::new(3)));
        assert!(t.is_empty());
    }

    #[test]
    fn mutual_trust() {
        let mut t = TrustRelation::new();
        t.add_mutual(AgentId::new(0), AgentId::new(1));
        assert!(t.mutual(AgentId::new(0), AgentId::new(1)));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn remove_withdraws_only_the_named_direction() {
        let mut t = TrustRelation::new();
        t.add_mutual(AgentId::new(0), AgentId::new(1));
        assert!(t.remove(AgentId::new(0), AgentId::new(1)));
        assert!(!t.trusts(AgentId::new(0), AgentId::new(1)));
        assert!(t.trusts(AgentId::new(1), AgentId::new(0)));
        assert!(!t.remove(AgentId::new(0), AgentId::new(1)));
        // Implicit self-trust survives any removal attempt.
        assert!(!t.remove(AgentId::new(2), AgentId::new(2)));
        assert!(t.trusts(AgentId::new(2), AgentId::new(2)));
    }

    #[test]
    fn duplicate_add_returns_false() {
        let mut t = TrustRelation::new();
        assert!(t.add(AgentId::new(0), AgentId::new(1)));
        assert!(!t.add(AgentId::new(0), AgentId::new(1)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn from_iterator_and_display() {
        let t: TrustRelation = [(AgentId::new(1), AgentId::new(0))].into_iter().collect();
        assert_eq!(t.to_string(), "a1 trusts a0");
        assert_eq!(TrustRelation::new().to_string(), "(no direct trust)");
    }
}
