//! Interaction graphs (§3): the bipartite graph of principals and trusted
//! components.

use crate::{AgentId, DealId, ExchangeSpec, ParticipantKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Which side of a deal an interaction-graph edge carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DealSide {
    /// The buyer's engagement: deposit payment with the intermediary.
    Buyer,
    /// The seller's engagement: deposit the item with the intermediary.
    Seller,
}

impl fmt::Display for DealSide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DealSide::Buyer => "buyer",
            DealSide::Seller => "seller",
        })
    }
}

/// One edge `(p, t)` of the interaction graph: principal `p` uses trusted
/// intermediary `t` to carry out one side of a deal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InteractionEdge {
    /// The principal endpoint.
    pub principal: AgentId,
    /// The trusted-component endpoint.
    pub trusted: AgentId,
    /// The deal this edge belongs to.
    pub deal: DealId,
    /// Which side of the deal the principal takes.
    pub side: DealSide,
}

impl fmt::Display for InteractionEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({} -- {}) [{} {}]",
            self.principal, self.trusted, self.deal, self.side
        )
    }
}

/// The interaction graph `I = (P, T, E)` of §3: principals `P`, trusted
/// components `T`, and edges `E ⊆ P × T`, one per deal side.
///
/// The graph is bipartite by construction — principals only ever interact
/// through trusted intermediaries (which may be *personas* of principals
/// when direct trust exists, see
/// [`ExchangeSpec::plays_role`]).
///
/// ```
/// # use trustseq_model::{ExchangeSpec, Money, Role};
/// # fn main() -> Result<(), trustseq_model::ModelError> {
/// # let mut spec = ExchangeSpec::new("e");
/// # let a = spec.add_principal("a", Role::Producer)?;
/// # let b = spec.add_principal("b", Role::Consumer)?;
/// # let t = spec.add_trusted("t")?;
/// # let i = spec.add_item("i", "I")?;
/// # spec.add_deal(a, b, t, i, Money::from_dollars(5))?;
/// let graph = spec.interaction_graph()?;
/// assert_eq!(graph.edge_count(), 2); // one edge per deal side
/// assert!(graph.internal_nodes().any(|n| n == t)); // t joins two edges
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InteractionGraph {
    principals: Vec<AgentId>,
    trusted: Vec<AgentId>,
    edges: Vec<InteractionEdge>,
    degree: BTreeMap<AgentId, usize>,
}

impl InteractionGraph {
    /// Builds the interaction graph of a validated specification.
    pub(crate) fn from_spec(spec: &ExchangeSpec) -> Self {
        let mut principals = Vec::new();
        let mut trusted = Vec::new();
        for p in spec.participants() {
            match p.kind() {
                ParticipantKind::Principal(_) => principals.push(p.id()),
                ParticipantKind::Trusted => trusted.push(p.id()),
            }
        }
        let mut edges = Vec::with_capacity(spec.deals().len() * 2);
        let mut degree: BTreeMap<AgentId, usize> = BTreeMap::new();
        for deal in spec.deals() {
            for (principal, side) in [
                (deal.buyer(), DealSide::Buyer),
                (deal.seller(), DealSide::Seller),
            ] {
                let trusted = deal.intermediary_of(side);
                edges.push(InteractionEdge {
                    principal,
                    trusted,
                    deal: deal.id(),
                    side,
                });
                *degree.entry(principal).or_default() += 1;
                *degree.entry(trusted).or_default() += 1;
            }
        }
        InteractionGraph {
            principals,
            trusted,
            edges,
            degree,
        }
    }

    /// The principals (circles in the paper's figures).
    pub fn principals(&self) -> &[AgentId] {
        &self.principals
    }

    /// The trusted components (squares in the paper's figures).
    pub fn trusted(&self) -> &[AgentId] {
        &self.trusted
    }

    /// All edges, in deal order (buyer side before seller side).
    pub fn edges(&self) -> &[InteractionEdge] {
        &self.edges
    }

    /// Number of principals.
    pub fn principal_count(&self) -> usize {
        self.principals.len()
    }

    /// Number of trusted components.
    pub fn trusted_count(&self) -> usize {
        self.trusted.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The degree (number of incident edges) of a node; zero for isolated or
    /// unknown nodes.
    pub fn degree(&self, agent: AgentId) -> usize {
        self.degree.get(&agent).copied().unwrap_or(0)
    }

    /// Nodes with more than one incident edge — these become conjunction
    /// nodes in the sequencing graph (§4.1).
    pub fn internal_nodes(&self) -> impl Iterator<Item = AgentId> + '_ {
        self.degree.iter().filter(|&(_, &d)| d > 1).map(|(&a, _)| a)
    }

    /// Edges incident to `agent`.
    pub fn edges_of(&self, agent: AgentId) -> impl Iterator<Item = &InteractionEdge> {
        self.edges
            .iter()
            .filter(move |e| e.principal == agent || e.trusted == agent)
    }
}

impl fmt::Display for InteractionGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "interaction graph: {} principals, {} trusted, {} edges",
            self.principal_count(),
            self.trusted_count(),
            self.edge_count()
        )?;
        for e in &self.edges {
            writeln!(f, "  {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExchangeSpec, Money, Role};

    /// The paper's Example #1 interaction graph (Figure 1).
    fn example1_graph() -> (InteractionGraph, [AgentId; 5]) {
        let mut spec = ExchangeSpec::new("example1");
        let c = spec.add_principal("consumer", Role::Consumer).unwrap();
        let b = spec.add_principal("broker", Role::Broker).unwrap();
        let p = spec.add_principal("producer", Role::Producer).unwrap();
        let t1 = spec.add_trusted("t1").unwrap();
        let t2 = spec.add_trusted("t2").unwrap();
        let doc = spec.add_item("doc", "Doc").unwrap();
        spec.add_deal(b, c, t1, doc, Money::from_dollars(100))
            .unwrap();
        spec.add_deal(p, b, t2, doc, Money::from_dollars(80))
            .unwrap();
        (spec.interaction_graph().unwrap(), [c, b, p, t1, t2])
    }

    #[test]
    fn figure1_shape() {
        let (g, [c, b, p, t1, t2]) = example1_graph();
        assert_eq!(g.principal_count(), 3);
        assert_eq!(g.trusted_count(), 2);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(c), 1);
        assert_eq!(g.degree(b), 2);
        assert_eq!(g.degree(p), 1);
        assert_eq!(g.degree(t1), 2);
        assert_eq!(g.degree(t2), 2);
    }

    #[test]
    fn internal_nodes_are_conjunction_candidates() {
        let (g, [_c, b, _p, t1, t2]) = example1_graph();
        let internal: Vec<_> = g.internal_nodes().collect();
        assert_eq!(internal, vec![b, t1, t2]);
    }

    #[test]
    fn graph_is_bipartite() {
        let (g, _) = example1_graph();
        for e in g.edges() {
            assert!(g.principals().contains(&e.principal));
            assert!(g.trusted().contains(&e.trusted));
        }
    }

    #[test]
    fn edges_of_filters_by_endpoint() {
        let (g, [c, b, _p, t1, _t2]) = example1_graph();
        assert_eq!(g.edges_of(c).count(), 1);
        assert_eq!(g.edges_of(b).count(), 2);
        assert_eq!(g.edges_of(t1).count(), 2);
        let sides: Vec<_> = g.edges_of(b).map(|e| e.side).collect();
        assert!(sides.contains(&DealSide::Buyer));
        assert!(sides.contains(&DealSide::Seller));
    }

    #[test]
    fn degree_of_unknown_agent_is_zero() {
        let (g, _) = example1_graph();
        assert_eq!(g.degree(AgentId::new(42)), 0);
    }

    #[test]
    fn display_lists_edges() {
        let (g, _) = example1_graph();
        let s = g.to_string();
        assert!(s.contains("3 principals, 2 trusted, 4 edges"));
        assert!(s.contains("buyer"));
        assert!(s.contains("seller"));
    }
}
