//! Error type for model construction and validation.

use crate::{AgentId, DealId, ItemId};
use std::error::Error;
use std::fmt;

/// Errors produced while building or validating an exchange specification.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A participant or item name was declared twice.
    DuplicateName(String),
    /// An [`AgentId`] does not refer to a declared participant.
    UnknownAgent(AgentId),
    /// An [`ItemId`] does not refer to a declared item.
    UnknownItem(ItemId),
    /// A [`DealId`] does not refer to a declared deal.
    UnknownDeal(DealId),
    /// A principal was required but the agent is a trusted component.
    NotAPrincipal(AgentId),
    /// A trusted component was required but the agent is a principal.
    NotTrusted(AgentId),
    /// A deal's buyer and seller are the same agent.
    SelfDeal(AgentId),
    /// A deal's price must be strictly positive.
    NonPositivePrice(DealId),
    /// A monetary string could not be parsed.
    InvalidMoney(String),
    /// A resale constraint references a deal the principal is not party to.
    ConstraintNotParty {
        /// The principal of the constraint.
        principal: AgentId,
        /// The offending deal.
        deal: DealId,
    },
    /// A resale constraint's two deals are the same.
    ConstraintSelfLoop(DealId),
    /// In a resale constraint the principal must *sell* in the deal to be
    /// secured first and *buy* in the deferred deal.
    ConstraintDirection {
        /// The principal of the constraint.
        principal: AgentId,
        /// The deal with the wrong direction.
        deal: DealId,
    },
    /// A principal cannot play the trusted role of an exchange it is not
    /// party to via that trusted component.
    RoleNotParty {
        /// The trusted component whose role would be played.
        trusted: AgentId,
        /// The principal proposed to play it.
        principal: AgentId,
    },
    /// An indemnity must cover a deal its beneficiary is buying.
    IndemnityNotBuyer {
        /// The proposed beneficiary.
        beneficiary: AgentId,
        /// The covered deal.
        deal: DealId,
    },
    /// An indemnity amount must be strictly positive.
    NonPositiveIndemnity(DealId),
    /// An indemnity provider must share a trusted intermediary with the
    /// beneficiary (§6 of the paper).
    NoSharedIntermediary {
        /// The indemnity provider.
        provider: AgentId,
        /// The indemnity beneficiary.
        beneficiary: AgentId,
    },
    /// A bridged deal's two trusted components must be linked (trust each
    /// other, directly or transitively).
    UnlinkedBridge {
        /// The buyer-side component.
        buyer_side: AgentId,
        /// The seller-side component.
        seller_side: AgentId,
    },
    /// An assembly declaration was structurally invalid.
    BadAssembly {
        /// Why it was rejected.
        reason: &'static str,
    },
    /// The specification has no deals, so there is nothing to sequence.
    EmptySpec,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateName(name) => write!(f, "duplicate name `{name}`"),
            ModelError::UnknownAgent(a) => write!(f, "unknown agent {a}"),
            ModelError::UnknownItem(i) => write!(f, "unknown item {i}"),
            ModelError::UnknownDeal(d) => write!(f, "unknown deal {d}"),
            ModelError::NotAPrincipal(a) => write!(f, "agent {a} is not a principal"),
            ModelError::NotTrusted(a) => write!(f, "agent {a} is not a trusted component"),
            ModelError::SelfDeal(a) => write!(f, "agent {a} cannot trade with itself"),
            ModelError::NonPositivePrice(d) => write!(f, "deal {d} has a non-positive price"),
            ModelError::InvalidMoney(s) => write!(f, "invalid money amount `{s}`"),
            ModelError::ConstraintNotParty { principal, deal } => {
                write!(f, "principal {principal} is not party to deal {deal}")
            }
            ModelError::ConstraintSelfLoop(d) => {
                write!(f, "resale constraint relates deal {d} to itself")
            }
            ModelError::ConstraintDirection { principal, deal } => write!(
                f,
                "resale constraint for {principal} has the wrong direction on deal {deal} \
                 (must sell in the secured deal and buy in the deferred deal)"
            ),
            ModelError::RoleNotParty { trusted, principal } => write!(
                f,
                "principal {principal} cannot play the role of {trusted}: \
                 it is not party to an exchange through {trusted}"
            ),
            ModelError::IndemnityNotBuyer { beneficiary, deal } => write!(
                f,
                "indemnity beneficiary {beneficiary} is not the buyer of deal {deal}"
            ),
            ModelError::NonPositiveIndemnity(d) => {
                write!(f, "indemnity for deal {d} must be positive")
            }
            ModelError::NoSharedIntermediary {
                provider,
                beneficiary,
            } => write!(
                f,
                "indemnity provider {provider} shares no trusted intermediary \
                 with beneficiary {beneficiary}"
            ),
            ModelError::UnlinkedBridge {
                buyer_side,
                seller_side,
            } => write!(
                f,
                "bridged deal requires linked trusted components, but \
                 {buyer_side} and {seller_side} do not trust each other"
            ),
            ModelError::BadAssembly { reason } => write!(f, "invalid assembly: {reason}"),
            ModelError::EmptySpec => write!(f, "exchange specification contains no deals"),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_period() {
        let cases: Vec<ModelError> = vec![
            ModelError::DuplicateName("x".into()),
            ModelError::UnknownAgent(AgentId::new(0)),
            ModelError::UnknownItem(ItemId::new(1)),
            ModelError::UnknownDeal(DealId::new(2)),
            ModelError::NotAPrincipal(AgentId::new(0)),
            ModelError::NotTrusted(AgentId::new(0)),
            ModelError::SelfDeal(AgentId::new(0)),
            ModelError::NonPositivePrice(DealId::new(0)),
            ModelError::InvalidMoney("zz".into()),
            ModelError::ConstraintSelfLoop(DealId::new(0)),
            ModelError::EmptySpec,
        ];
        for e in cases {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'), "no trailing period: {msg}");
            assert!(
                msg.chars().next().unwrap().is_lowercase() || msg.starts_with(char::is_numeric),
                "lowercase start: {msg}"
            );
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ModelError>();
    }
}
