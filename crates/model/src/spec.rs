//! Exchange-problem specifications: participants, items, deals, constraints,
//! trust and indemnities.

use crate::{
    AgentId, DealId, FundingConstraint, InteractionGraph, ItemId, ModelError, Money, Participant,
    ParticipantKind, ResaleConstraint, Role, TrustRelation,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A catalogued item that can be bought and sold.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Item {
    id: ItemId,
    key: String,
    title: String,
}

impl Item {
    /// The item's identifier.
    pub fn id(&self) -> ItemId {
        self.id
    }

    /// The short unique key used in specifications.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The human-readable title.
    pub fn title(&self) -> &str {
        &self.title
    }
}

/// A pairwise exchange: `seller` sells `item` to `buyer` for `price` through
/// trusted `intermediary`.
///
/// Each deal corresponds to two edges of the interaction graph (buyer-side
/// and seller-side) and therefore to two commitment nodes of the sequencing
/// graph. A *bridged* deal (§9's "hierarchy of trust") uses a different
/// trusted component on each side: the buyer deposits with the component it
/// trusts, the seller with its own, and the two — who trust each other —
/// relay the goods between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Deal {
    id: DealId,
    seller: AgentId,
    buyer: AgentId,
    intermediary: AgentId,
    seller_intermediary: AgentId,
    item: ItemId,
    price: Money,
}

impl Deal {
    /// The deal's identifier.
    pub fn id(&self) -> DealId {
        self.id
    }

    /// The selling principal.
    pub fn seller(&self) -> AgentId {
        self.seller
    }

    /// The buying principal.
    pub fn buyer(&self) -> AgentId {
        self.buyer
    }

    /// The trusted component mediating the buyer's side of the exchange
    /// (and, for unbridged deals, the whole exchange).
    pub fn intermediary(&self) -> AgentId {
        self.intermediary
    }

    /// The trusted component mediating the seller's side — equal to
    /// [`Deal::intermediary`] unless the deal is bridged.
    pub fn seller_intermediary(&self) -> AgentId {
        self.seller_intermediary
    }

    /// Whether the two sides use different trusted components.
    pub fn is_bridged(&self) -> bool {
        self.intermediary != self.seller_intermediary
    }

    /// The trusted component mediating the given side.
    pub fn intermediary_of(&self, side: crate::DealSide) -> AgentId {
        match side {
            crate::DealSide::Buyer => self.intermediary,
            crate::DealSide::Seller => self.seller_intermediary,
        }
    }

    /// The item sold.
    pub fn item(&self) -> ItemId {
        self.item
    }

    /// The price paid by the buyer.
    pub fn price(&self) -> Money {
        self.price
    }

    /// Whether `agent` is the buyer or seller of this deal.
    pub fn involves_principal(&self, agent: AgentId) -> bool {
        self.buyer == agent || self.seller == agent
    }
}

impl fmt::Display for Deal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} sells {} to {} for {} via {}",
            self.id, self.seller, self.item, self.buyer, self.price, self.intermediary
        )
    }
}

/// A document assembly (§3.2's "information and documents will be combined
/// and enhanced"): `assembler` can produce one `output` by consuming one of
/// each `input` it holds.
///
/// Assembly is internal to the assembler — it is not a transfer, so it
/// never appears as an [`Action`](crate::Action); the execution layer and
/// the simulator's ledger perform it implicitly when the assembler must
/// deliver an `output` it has not yet composed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assembly {
    /// The principal doing the composition (typically a broker/publisher).
    pub assembler: AgentId,
    /// The component items, consumed one each per unit produced.
    pub inputs: Vec<ItemId>,
    /// The composite item produced.
    pub output: ItemId,
}

impl fmt::Display for Assembly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} assembles {} from", self.assembler, self.output)?;
        for (i, input) in self.inputs.iter().enumerate() {
            write!(f, "{}{input}", if i == 0 { " " } else { " + " })?;
        }
        Ok(())
    }
}

/// An indemnity (§6): `provider` deposits `amount` with trusted `via`; the
/// amount is forfeited to `beneficiary` if deal `deal` fails after the
/// beneficiary has performed, and refunded to the provider otherwise.
///
/// Applying an indemnity *splits* the beneficiary's conjunction node: the
/// covered deal is decoupled from the rest of the bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Indemnity {
    /// Who posts the collateral (usually the covered deal's seller).
    pub provider: AgentId,
    /// The deal whose failure the indemnity compensates.
    pub deal: DealId,
    /// Who collects on failure (the covered deal's buyer).
    pub beneficiary: AgentId,
    /// The trusted component holding the collateral; must be shared between
    /// provider and beneficiary.
    pub via: AgentId,
    /// The collateral amount.
    pub amount: Money,
}

impl fmt::Display for Indemnity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} indemnifies {} for {} via {} (covers {})",
            self.provider, self.beneficiary, self.amount, self.via, self.deal
        )
    }
}

/// A complete commercial-exchange problem specification (§2 of the paper).
///
/// An `ExchangeSpec` declares the participants, items, pairwise deals,
/// resale (ordering) constraints, the directed trust relation, and any
/// indemnities. It is the input to sequencing-graph construction, protocol
/// synthesis, and the simulator.
///
/// See the [crate-level documentation](crate) for a worked example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExchangeSpec {
    name: String,
    participants: Vec<Participant>,
    items: Vec<Item>,
    deals: Vec<Deal>,
    resale_constraints: Vec<ResaleConstraint>,
    funding_constraints: Vec<FundingConstraint>,
    trusted_links: Vec<(AgentId, AgentId)>,
    assemblies: Vec<Assembly>,
    trust: TrustRelation,
    role_players: BTreeMap<AgentId, BTreeSet<AgentId>>,
    /// Role players recorded via [`ExchangeSpec::set_role_player`] — kept
    /// apart from the trust-derived ones so withdrawing trust can re-derive
    /// `role_players` from scratch without forgetting explicit grants.
    explicit_role_players: BTreeMap<AgentId, BTreeSet<AgentId>>,
    indemnities: Vec<Indemnity>,
}

impl ExchangeSpec {
    /// Creates an empty specification with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        ExchangeSpec {
            name: name.into(),
            participants: Vec::new(),
            items: Vec::new(),
            deals: Vec::new(),
            resale_constraints: Vec::new(),
            funding_constraints: Vec::new(),
            trusted_links: Vec::new(),
            assemblies: Vec::new(),
            trust: TrustRelation::new(),
            role_players: BTreeMap::new(),
            explicit_role_players: BTreeMap::new(),
            indemnities: Vec::new(),
        }
    }

    /// The specification's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    // ------------------------------------------------------------------
    // Declarations
    // ------------------------------------------------------------------

    /// Declares a principal with the given unique name and role.
    ///
    /// # Errors
    ///
    /// [`ModelError::DuplicateName`] if the name is taken.
    pub fn add_principal(
        &mut self,
        name: impl Into<String>,
        role: Role,
    ) -> Result<AgentId, ModelError> {
        self.add_participant(name.into(), ParticipantKind::Principal(role))
    }

    /// Declares a trusted component with the given unique name.
    ///
    /// # Errors
    ///
    /// [`ModelError::DuplicateName`] if the name is taken.
    pub fn add_trusted(&mut self, name: impl Into<String>) -> Result<AgentId, ModelError> {
        self.add_participant(name.into(), ParticipantKind::Trusted)
    }

    fn add_participant(
        &mut self,
        name: String,
        kind: ParticipantKind,
    ) -> Result<AgentId, ModelError> {
        if self.participants.iter().any(|p| p.name() == name) {
            return Err(ModelError::DuplicateName(name));
        }
        let id = AgentId::new(self.participants.len() as u32);
        self.participants.push(Participant::new(id, name, kind));
        Ok(id)
    }

    /// Declares an item with a unique key and a human-readable title.
    ///
    /// # Errors
    ///
    /// [`ModelError::DuplicateName`] if the key is taken.
    pub fn add_item(
        &mut self,
        key: impl Into<String>,
        title: impl Into<String>,
    ) -> Result<ItemId, ModelError> {
        let key = key.into();
        if self.items.iter().any(|i| i.key == key) {
            return Err(ModelError::DuplicateName(key));
        }
        let id = ItemId::new(self.items.len() as u32);
        self.items.push(Item {
            id,
            key,
            title: title.into(),
        });
        Ok(id)
    }

    /// Declares a deal: `seller` sells `item` to `buyer` for `price` through
    /// trusted component `intermediary`.
    ///
    /// # Errors
    ///
    /// * [`ModelError::UnknownAgent`] / [`ModelError::UnknownItem`] for
    ///   dangling references;
    /// * [`ModelError::NotAPrincipal`] if buyer or seller is a trusted
    ///   component, [`ModelError::NotTrusted`] if the intermediary is not;
    /// * [`ModelError::SelfDeal`] if buyer equals seller;
    /// * [`ModelError::NonPositivePrice`] if `price <= 0`.
    pub fn add_deal(
        &mut self,
        seller: AgentId,
        buyer: AgentId,
        intermediary: AgentId,
        item: ItemId,
        price: Money,
    ) -> Result<DealId, ModelError> {
        self.expect_principal(seller)?;
        self.expect_principal(buyer)?;
        self.expect_trusted(intermediary)?;
        if item.index() >= self.items.len() {
            return Err(ModelError::UnknownItem(item));
        }
        if seller == buyer {
            return Err(ModelError::SelfDeal(seller));
        }
        let id = DealId::new(self.deals.len() as u32);
        if price <= Money::ZERO {
            return Err(ModelError::NonPositivePrice(id));
        }
        self.deals.push(Deal {
            id,
            seller,
            buyer,
            intermediary,
            seller_intermediary: intermediary,
            item,
            price,
        });
        self.refresh_role_players();
        Ok(id)
    }

    /// Declares a *bridged* deal (§9's hierarchy of trust): the buyer
    /// deposits with `buyer_side`, the seller with `seller_side`, and the
    /// two components relay the goods between them.
    ///
    /// # Errors
    ///
    /// As for [`ExchangeSpec::add_deal`], plus
    /// [`ModelError::UnlinkedBridge`] unless the two components are in the
    /// same [trusted-link group](ExchangeSpec::trusted_group_of) (they must
    /// trust each other, directly or transitively).
    pub fn add_deal_bridged(
        &mut self,
        seller: AgentId,
        buyer: AgentId,
        buyer_side: AgentId,
        seller_side: AgentId,
        item: ItemId,
        price: Money,
    ) -> Result<DealId, ModelError> {
        self.expect_trusted(seller_side)?;
        if self.trusted_group_of(buyer_side) != self.trusted_group_of(seller_side) {
            return Err(ModelError::UnlinkedBridge {
                buyer_side,
                seller_side,
            });
        }
        let id = self.add_deal(seller, buyer, buyer_side, item, price)?;
        self.deals[id.index()].seller_intermediary = seller_side;
        self.refresh_role_players();
        Ok(id)
    }

    /// Declares that `assembler` can compose `output` from `inputs` (§3.2's
    /// combined-and-enhanced documents).
    ///
    /// # Errors
    ///
    /// * [`ModelError::NotAPrincipal`] if the assembler is not a principal;
    /// * [`ModelError::UnknownItem`] for dangling items;
    /// * [`ModelError::BadAssembly`] when inputs are empty, repeat, include
    ///   the output, or the output already has an assembly.
    pub fn add_assembly(
        &mut self,
        assembler: AgentId,
        inputs: Vec<ItemId>,
        output: ItemId,
    ) -> Result<(), ModelError> {
        self.expect_principal(assembler)?;
        for &i in inputs.iter().chain(std::iter::once(&output)) {
            if i.index() >= self.items.len() {
                return Err(ModelError::UnknownItem(i));
            }
        }
        if inputs.is_empty() {
            return Err(ModelError::BadAssembly {
                reason: "an assembly needs at least one input",
            });
        }
        let mut distinct = inputs.clone();
        distinct.sort_unstable();
        distinct.dedup();
        if distinct.len() != inputs.len() {
            return Err(ModelError::BadAssembly {
                reason: "assembly inputs must be distinct",
            });
        }
        if inputs.contains(&output) {
            return Err(ModelError::BadAssembly {
                reason: "an assembly cannot output one of its inputs",
            });
        }
        if self.assemblies.iter().any(|a| a.output == output) {
            return Err(ModelError::BadAssembly {
                reason: "the output already has an assembly",
            });
        }
        // Reject cycles: the output must not be (transitively) among the
        // components of its own inputs.
        let mut frontier: Vec<ItemId> = inputs.clone();
        let mut seen: BTreeSet<ItemId> = BTreeSet::new();
        while let Some(item) = frontier.pop() {
            if item == output {
                return Err(ModelError::BadAssembly {
                    reason: "assembly cycles are not allowed",
                });
            }
            if seen.insert(item) {
                if let Some(a) = self.assemblies.iter().find(|a| a.output == item) {
                    frontier.extend(a.inputs.iter().copied());
                }
            }
        }
        self.assemblies.push(Assembly {
            assembler,
            inputs,
            output,
        });
        Ok(())
    }

    /// The declared assemblies.
    pub fn assemblies(&self) -> &[Assembly] {
        &self.assemblies
    }

    /// The assembly producing `output` for `assembler`, if declared.
    pub fn assembly_of(&self, assembler: AgentId, output: ItemId) -> Option<&Assembly> {
        self.assemblies
            .iter()
            .find(|a| a.assembler == assembler && a.output == output)
    }

    /// Records mutual trust between two trusted components (§9's "hierarchy
    /// of trust"): linked components form a composite escrow whose members
    /// enforce guarantees jointly and may mediate *bridged* deals.
    ///
    /// # Errors
    ///
    /// [`ModelError::NotTrusted`] if either agent is not a trusted
    /// component.
    pub fn add_trusted_link(&mut self, a: AgentId, b: AgentId) -> Result<(), ModelError> {
        self.expect_trusted(a)?;
        self.expect_trusted(b)?;
        if a != b && !self.trusted_links.contains(&(a, b)) && !self.trusted_links.contains(&(b, a))
        {
            self.trusted_links.push((a, b));
        }
        Ok(())
    }

    /// The declared trusted links.
    pub fn trusted_links(&self) -> &[(AgentId, AgentId)] {
        &self.trusted_links
    }

    /// The representative of `trusted`'s link group (the smallest member
    /// id). Unlinked components are their own group.
    pub fn trusted_group_of(&self, trusted: AgentId) -> AgentId {
        // Tiny union-find over the (few) trusted components.
        let mut parent: BTreeMap<AgentId, AgentId> = BTreeMap::new();
        fn find(parent: &mut BTreeMap<AgentId, AgentId>, x: AgentId) -> AgentId {
            let p = *parent.get(&x).unwrap_or(&x);
            if p == x {
                x
            } else {
                let root = find(parent, p);
                parent.insert(x, root);
                root
            }
        }
        for &(a, b) in &self.trusted_links {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
                parent.insert(hi, lo);
            }
        }
        find(&mut parent, trusted)
    }

    /// Adds a resale constraint: `principal` must secure its sale
    /// `secure_first` before undertaking its purchase `before` (§4.1's third
    /// conjunction type — the red edge).
    ///
    /// # Errors
    ///
    /// * [`ModelError::UnknownDeal`] for dangling deal references;
    /// * [`ModelError::ConstraintSelfLoop`] if the two deals coincide;
    /// * [`ModelError::ConstraintNotParty`] if the principal is party to
    ///   neither side;
    /// * [`ModelError::ConstraintDirection`] if the principal does not sell
    ///   in `secure_first` or does not buy in `before`.
    pub fn add_resale_constraint(
        &mut self,
        principal: AgentId,
        secure_first: DealId,
        before: DealId,
    ) -> Result<(), ModelError> {
        self.expect_principal(principal)?;
        if secure_first == before {
            return Err(ModelError::ConstraintSelfLoop(secure_first));
        }
        let sale = self.deal(secure_first)?;
        let purchase = self.deal(before)?;
        if !sale.involves_principal(principal) {
            return Err(ModelError::ConstraintNotParty {
                principal,
                deal: secure_first,
            });
        }
        if !purchase.involves_principal(principal) {
            return Err(ModelError::ConstraintNotParty {
                principal,
                deal: before,
            });
        }
        if sale.seller() != principal {
            return Err(ModelError::ConstraintDirection {
                principal,
                deal: secure_first,
            });
        }
        if purchase.buyer() != principal {
            return Err(ModelError::ConstraintDirection {
                principal,
                deal: before,
            });
        }
        self.resale_constraints.push(ResaleConstraint {
            principal,
            secure_first,
            before,
        });
        Ok(())
    }

    /// Adds a funding constraint: `principal` can only pay for `purchase`
    /// out of the proceeds of its sale `funded_by` (the "poor broker" of
    /// §5). This puts a second red edge on the principal's conjunction and
    /// typically renders the exchange infeasible.
    ///
    /// # Errors
    ///
    /// Mirror those of [`ExchangeSpec::add_resale_constraint`], with the
    /// directions swapped: the principal must *buy* in `purchase` and *sell*
    /// in `funded_by`.
    pub fn add_funding_constraint(
        &mut self,
        principal: AgentId,
        purchase: DealId,
        funded_by: DealId,
    ) -> Result<(), ModelError> {
        self.expect_principal(principal)?;
        if purchase == funded_by {
            return Err(ModelError::ConstraintSelfLoop(purchase));
        }
        let bought = self.deal(purchase)?;
        let sold = self.deal(funded_by)?;
        if !bought.involves_principal(principal) {
            return Err(ModelError::ConstraintNotParty {
                principal,
                deal: purchase,
            });
        }
        if !sold.involves_principal(principal) {
            return Err(ModelError::ConstraintNotParty {
                principal,
                deal: funded_by,
            });
        }
        if bought.buyer() != principal {
            return Err(ModelError::ConstraintDirection {
                principal,
                deal: purchase,
            });
        }
        if sold.seller() != principal {
            return Err(ModelError::ConstraintDirection {
                principal,
                deal: funded_by,
            });
        }
        self.funding_constraints.push(FundingConstraint {
            principal,
            purchase,
            funded_by,
        });
        Ok(())
    }

    /// Records that `truster` directly trusts `trustee` and re-derives which
    /// principals may play trusted-agent roles (§4.2.3).
    ///
    /// # Errors
    ///
    /// [`ModelError::NotAPrincipal`] if either agent is not a principal.
    pub fn add_trust(&mut self, truster: AgentId, trustee: AgentId) -> Result<(), ModelError> {
        self.expect_principal(truster)?;
        self.expect_principal(trustee)?;
        self.trust.add(truster, trustee);
        self.refresh_role_players();
        Ok(())
    }

    /// Withdraws direct trust from `truster` towards `trustee` (a defection
    /// or reputation-decay event in a live marketplace) and re-derives which
    /// principals may play trusted-agent roles.
    ///
    /// Role players recorded explicitly via
    /// [`ExchangeSpec::set_role_player`] are kept; only the trust-implied
    /// ones are recomputed. Returns whether the pair was present.
    ///
    /// # Errors
    ///
    /// [`ModelError::NotAPrincipal`] if either agent is not a principal.
    pub fn remove_trust(&mut self, truster: AgentId, trustee: AgentId) -> Result<bool, ModelError> {
        self.expect_principal(truster)?;
        self.expect_principal(trustee)?;
        let removed = self.trust.remove(truster, trustee);
        if removed {
            self.refresh_role_players();
        }
        Ok(removed)
    }

    /// Explicitly records that `principal` plays the trusted-agent role of
    /// `trusted` (without going through the trust relation).
    ///
    /// # Errors
    ///
    /// [`ModelError::RoleNotParty`] unless `principal` is party to a deal
    /// mediated by `trusted`.
    pub fn set_role_player(
        &mut self,
        trusted: AgentId,
        principal: AgentId,
    ) -> Result<(), ModelError> {
        self.expect_trusted(trusted)?;
        self.expect_principal(principal)?;
        let is_party = self
            .deals
            .iter()
            .any(|d| d.intermediary == trusted && d.involves_principal(principal));
        if !is_party {
            return Err(ModelError::RoleNotParty { trusted, principal });
        }
        self.explicit_role_players
            .entry(trusted)
            .or_default()
            .insert(principal);
        self.role_players
            .entry(trusted)
            .or_default()
            .insert(principal);
        Ok(())
    }

    /// Derives role players from the trust relation: for a deal between `p`
    /// and `q` through `t`, `p` plays `t`'s role when `q` trusts `p`.
    fn refresh_role_players(&mut self) {
        // Keep explicitly-set role players; re-derive the trust-implied ones
        // from scratch so withdrawn trust edges actually revoke the roles
        // they once implied.
        let mut derived: BTreeMap<AgentId, BTreeSet<AgentId>> = self.explicit_role_players.clone();
        for deal in &self.deals {
            let (s, b, t) = (deal.seller, deal.buyer, deal.intermediary);
            if self.trust.trusts(b, s) {
                derived.entry(t).or_default().insert(s);
            }
            if self.trust.trusts(s, b) {
                derived.entry(t).or_default().insert(b);
            }
        }
        self.role_players = derived;
    }

    /// Posts an indemnity: `provider` covers `deal` with `amount`, held by a
    /// trusted component shared with the deal's buyer.
    ///
    /// The beneficiary is the covered deal's buyer; the holding intermediary
    /// is chosen as the trusted component of a deal between provider and
    /// beneficiary (per §6, the provider "must share a trusted intermediary
    /// with the one requesting the indemnification").
    ///
    /// # Errors
    ///
    /// * [`ModelError::UnknownDeal`] for a dangling deal;
    /// * [`ModelError::NonPositiveIndemnity`] if `amount <= 0`;
    /// * [`ModelError::NoSharedIntermediary`] if no trusted component links
    ///   provider and beneficiary.
    pub fn add_indemnity(
        &mut self,
        provider: AgentId,
        deal: DealId,
        amount: Money,
    ) -> Result<Indemnity, ModelError> {
        self.expect_principal(provider)?;
        let covered = *self.deal(deal)?;
        if amount <= Money::ZERO {
            return Err(ModelError::NonPositiveIndemnity(deal));
        }
        let beneficiary = covered.buyer();
        let via = self
            .deals
            .iter()
            .find(|d| d.involves_principal(provider) && d.involves_principal(beneficiary))
            .map(|d| d.intermediary)
            .ok_or(ModelError::NoSharedIntermediary {
                provider,
                beneficiary,
            })?;
        let indemnity = Indemnity {
            provider,
            deal,
            beneficiary,
            via,
            amount,
        };
        self.indemnities.push(indemnity);
        Ok(indemnity)
    }

    /// Withdraws every indemnity covering `deal` (an expired cover in a live
    /// marketplace). Returns how many were removed.
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownDeal`] for a dangling deal.
    pub fn remove_indemnities(&mut self, deal: DealId) -> Result<usize, ModelError> {
        self.deal(deal)?;
        let before = self.indemnities.len();
        self.indemnities.retain(|i| i.deal != deal);
        Ok(before - self.indemnities.len())
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// All participants in declaration order.
    pub fn participants(&self) -> &[Participant] {
        &self.participants
    }

    /// Looks up a participant.
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownAgent`] for a dangling id.
    pub fn participant(&self, id: AgentId) -> Result<&Participant, ModelError> {
        self.participants
            .get(id.index())
            .ok_or(ModelError::UnknownAgent(id))
    }

    /// Looks up a participant by name.
    pub fn participant_by_name(&self, name: &str) -> Option<&Participant> {
        self.participants.iter().find(|p| p.name() == name)
    }

    /// All items in declaration order.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Looks up an item.
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownItem`] for a dangling id.
    pub fn item(&self, id: ItemId) -> Result<&Item, ModelError> {
        self.items
            .get(id.index())
            .ok_or(ModelError::UnknownItem(id))
    }

    /// Looks up an item by key.
    pub fn item_by_key(&self, key: &str) -> Option<&Item> {
        self.items.iter().find(|i| i.key == key)
    }

    /// All deals in declaration order.
    pub fn deals(&self) -> &[Deal] {
        &self.deals
    }

    /// Looks up a deal.
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownDeal`] for a dangling id.
    pub fn deal(&self, id: DealId) -> Result<&Deal, ModelError> {
        self.deals
            .get(id.index())
            .ok_or(ModelError::UnknownDeal(id))
    }

    /// The resale constraints.
    pub fn resale_constraints(&self) -> &[ResaleConstraint] {
        &self.resale_constraints
    }

    /// The funding constraints.
    pub fn funding_constraints(&self) -> &[FundingConstraint] {
        &self.funding_constraints
    }

    /// The directed trust relation.
    pub fn trust(&self) -> &TrustRelation {
        &self.trust
    }

    /// The posted indemnities.
    pub fn indemnities(&self) -> &[Indemnity] {
        &self.indemnities
    }

    /// The set of deals covered by an indemnity.
    pub fn indemnified_deals(&self) -> BTreeSet<DealId> {
        self.indemnities.iter().map(|i| i.deal).collect()
    }

    /// Whether `principal` plays the trusted-agent role of `trusted` — i.e.
    /// the other party to an exchange through `trusted` directly trusts
    /// `principal` (or the role was set explicitly).
    pub fn plays_role(&self, trusted: AgentId, principal: AgentId) -> bool {
        self.role_players
            .get(&trusted)
            .is_some_and(|set| set.contains(&principal))
    }

    /// Resales routed *inside* one trusted component: pairs `(supply,
    /// sale)` where a principal buys an item through an intermediary and
    /// resells the same item through the **same** intermediary.
    ///
    /// Such a component can route the item internally — the middleman never
    /// physically holds it — and can enforce the middleman's resale
    /// ordering itself, which is the germ of the §9 "agent trusted by more
    /// than two parties" extension.
    pub fn internal_resales(&self) -> Vec<(DealId, DealId)> {
        let mut pairs = Vec::new();
        for supply in &self.deals {
            for sale in &self.deals {
                if supply.id != sale.id
                    && supply.buyer == sale.seller
                    && supply.item == sale.item
                    // The middleman receives at the supply's buyer side and
                    // re-deposits at the sale's seller side: an internal
                    // hop needs those to be the same physical component.
                    && supply.intermediary == sale.seller_intermediary
                {
                    pairs.push((supply.id, sale.id));
                }
            }
        }
        pairs
    }

    /// The item hops that stay *inside* a trusted component because of
    /// [`internal_resales`](ExchangeSpec::internal_resales): the set of
    /// `(from, to, item)` give-transfers that are virtual — the component
    /// already holds (and keeps) the item.
    ///
    /// Both directions of each internal pair are included: the supply's
    /// delivery to the middleman (`t → middleman`) and the middleman's
    /// sale deposit back (`middleman → t`).
    pub fn internal_transfers(&self) -> BTreeSet<(AgentId, AgentId, ItemId)> {
        let mut set = BTreeSet::new();
        for (supply, sale) in self.internal_resales() {
            let (Ok(supply), Ok(sale)) = (self.deal(supply), self.deal(sale)) else {
                continue;
            };
            set.insert((supply.intermediary(), supply.buyer(), supply.item()));
            set.insert((sale.seller(), sale.seller_intermediary(), sale.item()));
        }
        set
    }

    /// The principal acting as `trusted`'s *persona*, if direct trust lets
    /// one play that role (§4.2.3). When mutual trust makes both parties
    /// eligible, the smaller [`AgentId`] is chosen deterministically.
    pub fn persona_of(&self, trusted: AgentId) -> Option<AgentId> {
        let mut players: Vec<AgentId> = self
            .deals_via(trusted)
            .flat_map(|d| [d.buyer(), d.seller()])
            .filter(|&x| self.plays_role(trusted, x))
            .collect();
        players.sort_unstable();
        players.dedup();
        players.first().copied()
    }

    /// Deals in which `agent` participates as a principal, in declaration
    /// order.
    pub fn deals_of(&self, agent: AgentId) -> impl Iterator<Item = &Deal> {
        self.deals
            .iter()
            .filter(move |d| d.involves_principal(agent))
    }

    /// Deals in which `agent` is the buyer.
    pub fn purchases_of(&self, agent: AgentId) -> impl Iterator<Item = &Deal> {
        self.deals.iter().filter(move |d| d.buyer == agent)
    }

    /// Deals in which `agent` is the seller.
    pub fn sales_of(&self, agent: AgentId) -> impl Iterator<Item = &Deal> {
        self.deals.iter().filter(move |d| d.seller == agent)
    }

    /// Deals mediated by trusted component `trusted` on either side.
    pub fn deals_via(&self, trusted: AgentId) -> impl Iterator<Item = &Deal> {
        self.deals
            .iter()
            .filter(move |d| d.intermediary == trusted || d.seller_intermediary == trusted)
    }

    /// Deals mediated by any member of the trusted-link group whose
    /// representative is `group` (see
    /// [`trusted_group_of`](ExchangeSpec::trusted_group_of)).
    pub fn deals_via_group(&self, group: AgentId) -> impl Iterator<Item = &Deal> + '_ {
        self.deals.iter().filter(move |d| {
            self.trusted_group_of(d.intermediary) == group
                || self.trusted_group_of(d.seller_intermediary) == group
        })
    }

    /// All principals, in declaration order.
    pub fn principals(&self) -> impl Iterator<Item = &Participant> {
        self.participants.iter().filter(|p| p.is_principal())
    }

    /// All trusted components, in declaration order.
    pub fn trusted_components(&self) -> impl Iterator<Item = &Participant> {
        self.participants.iter().filter(|p| p.is_trusted())
    }

    // ------------------------------------------------------------------
    // Validation & derived structures
    // ------------------------------------------------------------------

    fn expect_principal(&self, id: AgentId) -> Result<(), ModelError> {
        let p = self.participant(id)?;
        if !p.is_principal() {
            return Err(ModelError::NotAPrincipal(id));
        }
        Ok(())
    }

    fn expect_trusted(&self, id: AgentId) -> Result<(), ModelError> {
        let p = self.participant(id)?;
        if !p.is_trusted() {
            return Err(ModelError::NotTrusted(id));
        }
        Ok(())
    }

    /// Validates the whole specification.
    ///
    /// Individual mutators validate incrementally; this re-checks global
    /// conditions (e.g. at least one deal exists).
    ///
    /// # Errors
    ///
    /// [`ModelError::EmptySpec`] when no deal has been declared.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.deals.is_empty() {
            return Err(ModelError::EmptySpec);
        }
        Ok(())
    }

    /// Builds the interaction graph (§3) of this specification.
    ///
    /// # Errors
    ///
    /// Propagates [`ExchangeSpec::validate`] errors.
    pub fn interaction_graph(&self) -> Result<InteractionGraph, ModelError> {
        self.validate()?;
        Ok(InteractionGraph::from_spec(self))
    }
}

impl fmt::Display for ExchangeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "exchange \"{}\":", self.name)?;
        for p in &self.participants {
            writeln!(f, "  {} = {}", p.id(), p)?;
        }
        for d in &self.deals {
            writeln!(f, "  {d}")?;
        }
        for r in &self.resale_constraints {
            writeln!(f, "  constraint {r}")?;
        }
        for fc in &self.funding_constraints {
            writeln!(f, "  constraint {fc}")?;
        }
        for a in &self.assemblies {
            writeln!(f, "  {a}")?;
        }
        if !self.trust.is_empty() {
            writeln!(f, "  trust: {}", self.trust)?;
        }
        for i in &self.indemnities {
            writeln!(f, "  indemnity {i}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the paper's Example #1 spec.
    pub(crate) fn example1() -> (ExchangeSpec, [AgentId; 5], ItemId, [DealId; 2]) {
        let mut spec = ExchangeSpec::new("example1");
        let c = spec.add_principal("consumer", Role::Consumer).unwrap();
        let b = spec.add_principal("broker", Role::Broker).unwrap();
        let p = spec.add_principal("producer", Role::Producer).unwrap();
        let t1 = spec.add_trusted("t1").unwrap();
        let t2 = spec.add_trusted("t2").unwrap();
        let doc = spec.add_item("doc", "The Document").unwrap();
        let sale = spec
            .add_deal(b, c, t1, doc, Money::from_dollars(100))
            .unwrap();
        let supply = spec
            .add_deal(p, b, t2, doc, Money::from_dollars(80))
            .unwrap();
        spec.add_resale_constraint(b, sale, supply).unwrap();
        (spec, [c, b, p, t1, t2], doc, [sale, supply])
    }

    #[test]
    fn example1_builds_and_validates() {
        let (spec, _, _, _) = example1();
        spec.validate().unwrap();
        assert_eq!(spec.deals().len(), 2);
        assert_eq!(spec.resale_constraints().len(), 1);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut spec = ExchangeSpec::new("x");
        spec.add_principal("a", Role::Consumer).unwrap();
        assert_eq!(
            spec.add_principal("a", Role::Broker),
            Err(ModelError::DuplicateName("a".into()))
        );
        assert_eq!(
            spec.add_trusted("a"),
            Err(ModelError::DuplicateName("a".into()))
        );
        spec.add_item("i", "I").unwrap();
        assert_eq!(
            spec.add_item("i", "J"),
            Err(ModelError::DuplicateName("i".into()))
        );
    }

    #[test]
    fn deal_validation() {
        let mut spec = ExchangeSpec::new("x");
        let a = spec.add_principal("a", Role::Producer).unwrap();
        let b = spec.add_principal("b", Role::Consumer).unwrap();
        let t = spec.add_trusted("t").unwrap();
        let i = spec.add_item("i", "I").unwrap();

        // trusted component cannot be a buyer/seller
        assert_eq!(
            spec.add_deal(t, b, t, i, Money::from_dollars(1)),
            Err(ModelError::NotAPrincipal(t))
        );
        // principal cannot be the intermediary
        assert_eq!(
            spec.add_deal(a, b, a, i, Money::from_dollars(1)),
            Err(ModelError::NotTrusted(a))
        );
        // self deal
        assert_eq!(
            spec.add_deal(a, a, t, i, Money::from_dollars(1)),
            Err(ModelError::SelfDeal(a))
        );
        // zero price
        assert_eq!(
            spec.add_deal(a, b, t, i, Money::ZERO),
            Err(ModelError::NonPositivePrice(DealId::new(0)))
        );
        // dangling item
        assert_eq!(
            spec.add_deal(a, b, t, ItemId::new(9), Money::from_dollars(1)),
            Err(ModelError::UnknownItem(ItemId::new(9)))
        );
        // a valid one
        spec.add_deal(a, b, t, i, Money::from_dollars(1)).unwrap();
        spec.validate().unwrap();
    }

    #[test]
    fn resale_constraint_direction_checked() {
        let (mut spec, [c, b, _p, ..], _, [sale, supply]) = example1();
        // broker sells in `sale`, buys in `supply`: correct direction only.
        assert_eq!(
            spec.add_resale_constraint(b, supply, sale),
            Err(ModelError::ConstraintDirection {
                principal: b,
                deal: supply
            })
        );
        // consumer is not party to `supply`
        assert_eq!(
            spec.add_resale_constraint(c, sale, supply),
            Err(ModelError::ConstraintNotParty {
                principal: c,
                deal: supply
            })
        );
        assert_eq!(
            spec.add_resale_constraint(b, sale, sale),
            Err(ModelError::ConstraintSelfLoop(sale))
        );
    }

    #[test]
    fn trust_derives_role_players() {
        let (mut spec, [_c, b, p, _t1, t2], _, _) = example1();
        assert!(!spec.plays_role(t2, b));
        // Producer trusts the broker → the broker plays t2's role.
        spec.add_trust(p, b).unwrap();
        assert!(spec.plays_role(t2, b));
        assert!(!spec.plays_role(t2, p));
        // The reverse direction gives the role to the producer instead.
        spec.add_trust(b, p).unwrap();
        assert!(spec.plays_role(t2, p));
    }

    #[test]
    fn removing_trust_revokes_derived_roles_but_keeps_explicit_ones() {
        let (mut spec, [_c, b, p, _t1, t2], _, _) = example1();
        spec.add_trust(p, b).unwrap();
        assert!(spec.plays_role(t2, b));
        assert!(spec.remove_trust(p, b).unwrap());
        assert!(!spec.plays_role(t2, b));
        assert!(!spec.remove_trust(p, b).unwrap());

        // An explicitly granted role survives a trust withdrawal that would
        // have revoked the same derived role.
        spec.add_trust(p, b).unwrap();
        spec.set_role_player(t2, b).unwrap();
        spec.remove_trust(p, b).unwrap();
        assert!(spec.plays_role(t2, b));

        assert!(matches!(
            spec.remove_trust(t2, b),
            Err(ModelError::NotAPrincipal(_))
        ));
    }

    #[test]
    fn remove_indemnities_withdraws_cover() {
        let (mut spec, [_c, b, ..], _, [sale, _supply]) = example1();
        spec.add_indemnity(b, sale, Money::from_dollars(20))
            .unwrap();
        assert_eq!(spec.indemnified_deals().len(), 1);
        assert_eq!(spec.remove_indemnities(sale).unwrap(), 1);
        assert!(spec.indemnified_deals().is_empty());
        assert_eq!(spec.remove_indemnities(sale).unwrap(), 0);
        assert!(matches!(
            spec.remove_indemnities(DealId::new(99)),
            Err(ModelError::UnknownDeal(_))
        ));
    }

    #[test]
    fn trust_added_before_deals_still_derives_roles() {
        let mut spec = ExchangeSpec::new("x");
        let a = spec.add_principal("a", Role::Producer).unwrap();
        let b = spec.add_principal("b", Role::Consumer).unwrap();
        let t = spec.add_trusted("t").unwrap();
        let i = spec.add_item("i", "I").unwrap();
        spec.add_trust(a, b).unwrap();
        spec.add_deal(a, b, t, i, Money::from_dollars(1)).unwrap();
        assert!(spec.plays_role(t, b));
    }

    #[test]
    fn explicit_role_player_requires_partyhood() {
        let (mut spec, [c, b, _p, _t1, t2], _, _) = example1();
        assert_eq!(
            spec.set_role_player(t2, c),
            Err(ModelError::RoleNotParty {
                trusted: t2,
                principal: c
            })
        );
        spec.set_role_player(t2, b).unwrap();
        assert!(spec.plays_role(t2, b));
    }

    #[test]
    fn indemnity_finds_shared_intermediary() {
        let (mut spec, [c, b, _p, t1, _t2], _, [sale, _supply]) = example1();
        let ind = spec
            .add_indemnity(b, sale, Money::from_dollars(20))
            .unwrap();
        assert_eq!(ind.beneficiary, c);
        assert_eq!(ind.via, t1);
        assert_eq!(spec.indemnified_deals().len(), 1);
    }

    #[test]
    fn indemnity_requires_shared_intermediary_and_positive_amount() {
        let (mut spec, [_c, b, p, ..], _, [sale, supply]) = example1();
        assert_eq!(
            spec.add_indemnity(b, sale, Money::ZERO),
            Err(ModelError::NonPositiveIndemnity(sale))
        );
        // The producer shares no trusted intermediary with the consumer
        // (the buyer of `sale`).
        assert!(matches!(
            spec.add_indemnity(p, sale, Money::from_dollars(1)),
            Err(ModelError::NoSharedIntermediary { .. })
        ));
        // But the producer and broker share t2, so covering `supply` works.
        spec.add_indemnity(p, supply, Money::from_dollars(1))
            .unwrap();
    }

    #[test]
    fn assembly_validation() {
        let (mut spec, [_c, b, _p, ..], doc, _) = example1();
        let text = spec.add_item("text", "Text").unwrap();
        let diagrams = spec.add_item("diagrams", "Diagrams").unwrap();

        // Valid assembly.
        spec.add_assembly(b, vec![text, diagrams], doc).unwrap();
        assert_eq!(spec.assemblies().len(), 1);
        assert!(spec.assembly_of(b, doc).is_some());
        assert!(spec.assembly_of(_c, doc).is_none());

        // Duplicate output.
        assert!(matches!(
            spec.add_assembly(b, vec![text], doc),
            Err(ModelError::BadAssembly { .. })
        ));
        // Empty inputs.
        let combo = spec.add_item("combo", "Combo").unwrap();
        assert!(matches!(
            spec.add_assembly(b, vec![], combo),
            Err(ModelError::BadAssembly { .. })
        ));
        // Output among inputs.
        assert!(matches!(
            spec.add_assembly(b, vec![combo], combo),
            Err(ModelError::BadAssembly { .. })
        ));
        // Repeated inputs.
        assert!(matches!(
            spec.add_assembly(b, vec![text, text], combo),
            Err(ModelError::BadAssembly { .. })
        ));
        // Cycle: doc is assembled from text; text from doc would cycle.
        assert!(matches!(
            spec.add_assembly(b, vec![doc], text),
            Err(ModelError::BadAssembly { .. })
        ));
        // Chains (no cycle) are fine: combo composed from the composite doc
        // plus diagrams (reusing an input of another assembly is allowed).
        spec.add_assembly(b, vec![doc, diagrams], combo).unwrap();
        assert_eq!(spec.assemblies().len(), 2);
    }

    #[test]
    fn empty_spec_rejected() {
        let spec = ExchangeSpec::new("empty");
        assert_eq!(spec.validate(), Err(ModelError::EmptySpec));
        assert!(spec.interaction_graph().is_err());
    }

    #[test]
    fn accessors_and_lookups() {
        let (spec, [c, b, _p, t1, _t2], doc, [sale, _]) = example1();
        assert_eq!(spec.name(), "example1");
        assert_eq!(spec.participant_by_name("broker").unwrap().id(), b);
        assert_eq!(spec.item_by_key("doc").unwrap().id(), doc);
        assert_eq!(spec.item(doc).unwrap().title(), "The Document");
        assert_eq!(spec.deal(sale).unwrap().buyer(), c);
        assert_eq!(spec.purchases_of(c).count(), 1);
        assert_eq!(spec.sales_of(b).count(), 1);
        assert_eq!(spec.purchases_of(b).count(), 1);
        assert_eq!(spec.deals_via(t1).count(), 1);
        assert_eq!(spec.principals().count(), 3);
        assert_eq!(spec.trusted_components().count(), 2);
        assert!(spec.participant(AgentId::new(99)).is_err());
        assert!(spec.deal(DealId::new(99)).is_err());
        assert!(spec.item(ItemId::new(99)).is_err());
    }

    #[test]
    fn display_mentions_all_parts() {
        let (mut spec, [_c, b, p, ..], _, [sale, _]) = example1();
        spec.add_trust(p, b).unwrap();
        spec.add_indemnity(b, sale, Money::from_dollars(5)).unwrap();
        let s = spec.to_string();
        assert!(s.contains("exchange \"example1\""));
        assert!(s.contains("consumer"));
        assert!(s.contains("sells"));
        assert!(s.contains("constraint"));
        assert!(s.contains("trust:"));
        assert!(s.contains("indemnity"));
    }
}
