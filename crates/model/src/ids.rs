//! Identifier newtypes.
//!
//! All entities in an exchange problem are referred to by small copyable
//! index-based identifiers. The indices are assigned by [`ExchangeSpec`] in
//! declaration order, which keeps every downstream structure (interaction
//! graphs, sequencing graphs, simulator ledgers) array-indexable and makes
//! runs deterministic.
//!
//! [`ExchangeSpec`]: crate::ExchangeSpec

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from a raw index.
            ///
            /// Indices are normally assigned by `ExchangeSpec`; constructing
            /// them by hand is only needed in tests and generators.
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the raw index, suitable for indexing into arenas.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifies a participant (principal or trusted component) of an
    /// exchange problem.
    ///
    /// ```
    /// use trustseq_model::AgentId;
    /// let a = AgentId::new(3);
    /// assert_eq!(a.index(), 3);
    /// assert_eq!(a.to_string(), "a3");
    /// ```
    AgentId,
    "a"
);

define_id!(
    /// Identifies an item (document, good, computation result) that can be
    /// transferred between participants.
    ///
    /// ```
    /// use trustseq_model::ItemId;
    /// assert_eq!(ItemId::new(0).to_string(), "i0");
    /// ```
    ItemId,
    "i"
);

define_id!(
    /// Identifies a pairwise deal (one item sold for one price through one
    /// trusted intermediary).
    ///
    /// ```
    /// use trustseq_model::DealId;
    /// assert_eq!(DealId::new(7).to_string(), "d7");
    /// ```
    DealId,
    "d"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn ids_roundtrip_index() {
        for i in [0u32, 1, 17, u32::MAX] {
            assert_eq!(AgentId::new(i).index(), i as usize);
            assert_eq!(ItemId::new(i).index(), i as usize);
            assert_eq!(DealId::new(i).index(), i as usize);
        }
    }

    #[test]
    fn ids_are_ordered_by_index() {
        let mut set = BTreeSet::new();
        set.insert(DealId::new(2));
        set.insert(DealId::new(0));
        set.insert(DealId::new(1));
        let ordered: Vec<_> = set.into_iter().map(|d| d.index()).collect();
        assert_eq!(ordered, vec![0, 1, 2]);
    }

    #[test]
    fn display_uses_distinct_prefixes() {
        assert_eq!(AgentId::new(5).to_string(), "a5");
        assert_eq!(ItemId::new(5).to_string(), "i5");
        assert_eq!(DealId::new(5).to_string(), "d5");
    }

    #[test]
    fn usize_conversion_matches_index() {
        let id = AgentId::new(9);
        let as_usize: usize = id.into();
        assert_eq!(as_usize, 9);
    }

    #[test]
    fn ids_hash_and_eq_consistently() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(AgentId::new(1));
        set.insert(AgentId::new(1));
        assert_eq!(set.len(), 1);
        assert!(set.contains(&AgentId::new(1)));
        assert!(!set.contains(&AgentId::new(2)));
    }
}
