//! Exchange states and per-party acceptability (§2.3).

use crate::{Action, AgentId, ItemId, Money};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// The state of an exchange: the unordered set of actions executed so far.
///
/// Following §2.3 of the paper, a state is a plain set — ordering is captured
/// separately by execution sequences. `ExchangeState` is a thin wrapper over
/// a sorted set so that states print deterministically and compare
/// structurally.
///
/// ```
/// use trustseq_model::{Action, AgentId, ExchangeState, ItemId, Money};
///
/// let c = AgentId::new(0);
/// let p = AgentId::new(1);
/// let mut state = ExchangeState::new();
/// state.record(Action::give(p, c, ItemId::new(0)));
/// state.record(Action::pay(c, p, Money::from_dollars(20)));
/// assert_eq!(state.len(), 2);
/// assert!(state.contains(&Action::give(p, c, ItemId::new(0))));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExchangeState {
    actions: BTreeSet<Action>,
}

impl ExchangeState {
    /// The empty (status quo) state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an executed action. Returns `false` if it was already present.
    pub fn record(&mut self, action: Action) -> bool {
        self.actions.insert(action)
    }

    /// Whether `action` has been executed.
    pub fn contains(&self, action: &Action) -> bool {
        self.actions.contains(action)
    }

    /// Number of recorded actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// `true` when no action has been executed (the status quo).
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Iterates over the recorded actions in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Action> {
        self.actions.iter()
    }

    /// `true` if every action of `other` is contained in `self`.
    pub fn is_superset(&self, other: &ExchangeState) -> bool {
        self.actions.is_superset(&other.actions)
    }

    /// The actions in `self` that involve `party` (as actor or recipient).
    pub fn actions_by(&self, party: AgentId) -> impl Iterator<Item = &Action> {
        self.actions.iter().filter(move |a| a.involves(party))
    }

    /// Computes the net material position change of `party` in this state.
    ///
    /// Forward actions move assets, inverse actions move them back; a
    /// `give`/`give⁻¹` (or `pay`/`pay⁻¹`) pair therefore cancels. `notify`
    /// has no material effect.
    pub fn net_position(&self, party: AgentId) -> NetPosition {
        let mut pos = NetPosition::default();
        for action in &self.actions {
            match *action {
                Action::Give { from, to, item } => {
                    let undone = self.contains(&Action::InverseGive { from, to, item });
                    if !undone {
                        if from == party {
                            pos.items_lost.insert(item);
                        }
                        if to == party {
                            pos.items_gained.insert(item);
                        }
                    }
                }
                Action::Pay { from, to, amount } => {
                    let undone = self.contains(&Action::InversePay { from, to, amount });
                    if !undone {
                        if from == party {
                            pos.money -= amount;
                        }
                        if to == party {
                            pos.money += amount;
                        }
                    }
                }
                // Inverses are handled by cancelling their forward action;
                // an inverse without its forward action is ill-formed and
                // ignored here (the simulator's ledger rejects it earlier).
                Action::InverseGive { .. } | Action::InversePay { .. } | Action::Notify { .. } => {}
            }
        }
        pos
    }
}

impl FromIterator<Action> for ExchangeState {
    fn from_iter<I: IntoIterator<Item = Action>>(iter: I) -> Self {
        ExchangeState {
            actions: iter.into_iter().collect(),
        }
    }
}

impl Extend<Action> for ExchangeState {
    fn extend<I: IntoIterator<Item = Action>>(&mut self, iter: I) {
        self.actions.extend(iter);
    }
}

impl fmt::Display for ExchangeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.actions.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

/// Net material change for one party: money delta plus items gained/lost,
/// after cancelling compensated actions.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetPosition {
    /// Net money received minus money paid.
    pub money: Money,
    /// Items this party ended up holding that it did not hold before.
    pub items_gained: BTreeSet<ItemId>,
    /// Items this party gave away and did not get back.
    pub items_lost: BTreeSet<ItemId>,
}

impl NetPosition {
    /// `true` when the party is exactly where it started.
    pub fn is_status_quo(&self) -> bool {
        self.money.is_zero() && self.items_gained.is_empty() && self.items_lost.is_empty()
    }
}

/// A partial state description: one element of a party's acceptable set.
///
/// Per §2.3, a final state is acceptable to a party if it contains a superset
/// of the actions of some partial description *and no other action involving
/// that party*.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartialState {
    actions: BTreeSet<Action>,
}

impl PartialState {
    /// The empty description — matched only by states where the party did
    /// nothing (the status quo for that party).
    pub fn status_quo() -> Self {
        Self::default()
    }

    /// Builds a partial state from actions.
    pub fn from_actions(actions: impl IntoIterator<Item = Action>) -> Self {
        PartialState {
            actions: actions.into_iter().collect(),
        }
    }

    /// The actions required by this description.
    pub fn actions(&self) -> impl Iterator<Item = &Action> {
        self.actions.iter()
    }

    /// Whether `state` matches this description for `party`: it contains all
    /// required actions, and every *transfer* action of `state` involving
    /// `party` is among them.
    ///
    /// `notify` actions are informational rather than material and are
    /// ignored on the state side unless the description explicitly requires
    /// them (as the trusted-component guarantees of §2.5 do).
    pub fn matches(&self, state: &ExchangeState, party: AgentId) -> bool {
        self.actions.iter().all(|a| state.contains(a))
            && state
                .actions_by(party)
                .all(|a| !a.is_transfer() || self.actions.contains(a))
    }
}

impl FromIterator<Action> for PartialState {
    fn from_iter<I: IntoIterator<Item = Action>>(iter: I) -> Self {
        Self::from_actions(iter)
    }
}

impl fmt::Display for PartialState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.actions.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

/// A party's acceptability specification: its acceptable partial states and
/// which of them it prefers (§2.3).
///
/// The preferred state prevents degenerate protocols (e.g. a seller always
/// refunding): among acceptable executions, the one reaching the preferred
/// state should be chosen when every party complies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AcceptanceSpec {
    party: AgentId,
    acceptable: Vec<PartialState>,
    preferred: usize,
}

impl AcceptanceSpec {
    /// Creates a specification. `preferred` is an index into `acceptable`.
    ///
    /// # Panics
    ///
    /// Panics if `acceptable` is empty or `preferred` is out of bounds.
    pub fn new(party: AgentId, acceptable: Vec<PartialState>, preferred: usize) -> Self {
        assert!(
            !acceptable.is_empty(),
            "a party must accept at least one final state"
        );
        assert!(
            preferred < acceptable.len(),
            "preferred index {preferred} out of bounds ({} states)",
            acceptable.len()
        );
        AcceptanceSpec {
            party,
            acceptable,
            preferred,
        }
    }

    /// The party this specification belongs to.
    pub fn party(&self) -> AgentId {
        self.party
    }

    /// The acceptable partial states.
    pub fn acceptable(&self) -> &[PartialState] {
        &self.acceptable
    }

    /// The preferred partial state.
    pub fn preferred(&self) -> &PartialState {
        &self.acceptable[self.preferred]
    }

    /// Classifies a final `state` for this party.
    pub fn classify(&self, state: &ExchangeState) -> Outcome {
        if self.preferred().matches(state, self.party) {
            Outcome::Preferred
        } else if self.acceptable.iter().any(|p| p.matches(state, self.party)) {
            Outcome::Acceptable
        } else {
            Outcome::Unacceptable
        }
    }
}

/// How a final state rates for one party.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Outcome {
    /// The state the party most wants (usually the completed exchange).
    Preferred,
    /// Acceptable but not preferred (e.g. refunded, or status quo).
    Acceptable,
    /// The party lost something it was not compensated for — the protocol
    /// failed to protect it.
    Unacceptable,
}

impl Outcome {
    /// `true` unless the outcome is [`Outcome::Unacceptable`].
    pub fn is_acceptable(self) -> bool {
        !matches!(self, Outcome::Unacceptable)
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Outcome::Preferred => "preferred",
            Outcome::Acceptable => "acceptable",
            Outcome::Unacceptable => "UNACCEPTABLE",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids() -> (AgentId, AgentId, ItemId, Money) {
        (
            AgentId::new(0), // customer
            AgentId::new(1), // producer
            ItemId::new(0),
            Money::from_dollars(20),
        )
    }

    /// The four acceptable customer states from §2.3 of the paper.
    fn customer_spec() -> AcceptanceSpec {
        let (c, p, d, m) = ids();
        let done = PartialState::from_actions([Action::give(p, c, d), Action::pay(c, p, m)]);
        let refunded = PartialState::from_actions([
            Action::pay(c, p, m),
            Action::pay(c, p, m).inverse().unwrap(),
        ]);
        let status_quo = PartialState::status_quo();
        let windfall = PartialState::from_actions([Action::give(p, c, d)]);
        AcceptanceSpec::new(c, vec![done, refunded, status_quo, windfall], 0)
    }

    #[test]
    fn completed_exchange_is_preferred() {
        let (c, p, d, m) = ids();
        let spec = customer_spec();
        let state: ExchangeState = [Action::give(p, c, d), Action::pay(c, p, m)]
            .into_iter()
            .collect();
        assert_eq!(spec.classify(&state), Outcome::Preferred);
    }

    #[test]
    fn refund_is_acceptable_not_preferred() {
        let (c, p, _, m) = ids();
        let spec = customer_spec();
        let state: ExchangeState = [
            Action::pay(c, p, m),
            Action::pay(c, p, m).inverse().unwrap(),
        ]
        .into_iter()
        .collect();
        assert_eq!(spec.classify(&state), Outcome::Acceptable);
    }

    #[test]
    fn status_quo_is_acceptable() {
        let spec = customer_spec();
        assert_eq!(spec.classify(&ExchangeState::new()), Outcome::Acceptable);
    }

    #[test]
    fn paying_without_goods_is_unacceptable() {
        let (c, p, _, m) = ids();
        let spec = customer_spec();
        let state: ExchangeState = [Action::pay(c, p, m)].into_iter().collect();
        assert_eq!(spec.classify(&state), Outcome::Unacceptable);
    }

    #[test]
    fn extra_party_action_breaks_the_match() {
        let (c, p, d, m) = ids();
        let spec = customer_spec();
        // Completed exchange *plus* an extra uncompensated payment by the
        // customer: not acceptable, the partial description must cover every
        // action involving the party.
        let state: ExchangeState = [
            Action::give(p, c, d),
            Action::pay(c, p, m),
            Action::pay(c, p, Money::from_dollars(5)),
        ]
        .into_iter()
        .collect();
        assert_eq!(spec.classify(&state), Outcome::Unacceptable);
    }

    #[test]
    fn unrelated_actions_do_not_affect_the_match() {
        let (c, p, d, m) = ids();
        let spec = customer_spec();
        let x = AgentId::new(7);
        let y = AgentId::new(8);
        let state: ExchangeState = [
            Action::give(p, c, d),
            Action::pay(c, p, m),
            Action::pay(x, y, Money::from_dollars(99)),
        ]
        .into_iter()
        .collect();
        assert_eq!(spec.classify(&state), Outcome::Preferred);
    }

    #[test]
    fn net_position_cancels_compensations() {
        let (c, p, d, m) = ids();
        let state: ExchangeState = [
            Action::pay(c, p, m),
            Action::pay(c, p, m).inverse().unwrap(),
            Action::give(p, c, d),
        ]
        .into_iter()
        .collect();
        let pos_c = state.net_position(c);
        assert_eq!(pos_c.money, Money::ZERO);
        assert!(pos_c.items_gained.contains(&d));
        let pos_p = state.net_position(p);
        assert!(pos_p.items_lost.contains(&d));
        assert_eq!(pos_p.money, Money::ZERO);
    }

    #[test]
    fn net_position_of_completed_sale() {
        let (c, p, d, m) = ids();
        let state: ExchangeState = [Action::pay(c, p, m), Action::give(p, c, d)]
            .into_iter()
            .collect();
        let pos_c = state.net_position(c);
        assert_eq!(pos_c.money, -m);
        assert!(pos_c.items_gained.contains(&d));
        assert!(!pos_c.is_status_quo());
        let pos_p = state.net_position(p);
        assert_eq!(pos_p.money, m);
        assert!(pos_p.items_lost.contains(&d));
    }

    #[test]
    fn empty_state_is_status_quo_for_everyone() {
        let (c, ..) = ids();
        assert!(ExchangeState::new().net_position(c).is_status_quo());
    }

    #[test]
    fn record_is_idempotent() {
        let (c, p, _, m) = ids();
        let mut state = ExchangeState::new();
        assert!(state.record(Action::pay(c, p, m)));
        assert!(!state.record(Action::pay(c, p, m)));
        assert_eq!(state.len(), 1);
    }

    #[test]
    fn state_display_is_sorted_and_braced() {
        let (c, p, d, m) = ids();
        let state: ExchangeState = [Action::pay(c, p, m), Action::give(p, c, d)]
            .into_iter()
            .collect();
        let s = state.to_string();
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("give[a1->a0](i0)"));
        assert!(s.contains("pay[a0->a1]($20.00)"));
    }

    #[test]
    #[should_panic(expected = "at least one final state")]
    fn empty_acceptance_spec_panics() {
        let _ = AcceptanceSpec::new(AgentId::new(0), vec![], 0);
    }

    #[test]
    fn superset_check() {
        let (c, p, d, m) = ids();
        let small: ExchangeState = [Action::pay(c, p, m)].into_iter().collect();
        let big: ExchangeState = [Action::pay(c, p, m), Action::give(p, c, d)]
            .into_iter()
            .collect();
        assert!(big.is_superset(&small));
        assert!(!small.is_superset(&big));
        assert!(big.is_superset(&big));
    }
}
