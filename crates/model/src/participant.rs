//! Participants of a distributed transaction.

use crate::AgentId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three classes of principals from §2.1 of the paper.
///
/// In the information-sales context, producers are retrieval sources or
/// libraries, consumers are users with an information request, and brokers
/// are intermediaries that know which sources are relevant. In the
/// computation-subcontracting context they are idle processors, users needing
/// compute, and network managers respectively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Role {
    /// Sells items (information source, library, idle processor).
    Producer,
    /// Buys items (user with an information request or compute need).
    Consumer,
    /// Buys and resells items, matching consumers to producers.
    Broker,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Role::Producer => "producer",
            Role::Consumer => "consumer",
            Role::Broker => "broker",
        })
    }
}

/// Whether a participant is a principal (with its own commercial interests)
/// or a trusted component (a neutral conduit bound by its guarantees, §2.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParticipantKind {
    /// A self-interested principal with one of the three [`Role`]s.
    Principal(Role),
    /// A trusted component: forwards goods/payments once all inputs arrive,
    /// reverses them otherwise, and issues notifications.
    Trusted,
}

impl ParticipantKind {
    /// Returns `true` for principals.
    pub fn is_principal(&self) -> bool {
        matches!(self, ParticipantKind::Principal(_))
    }

    /// Returns `true` for trusted components.
    pub fn is_trusted(&self) -> bool {
        matches!(self, ParticipantKind::Trusted)
    }

    /// Returns the principal role, if any.
    pub fn role(&self) -> Option<Role> {
        match self {
            ParticipantKind::Principal(r) => Some(*r),
            ParticipantKind::Trusted => None,
        }
    }
}

/// A participant of an exchange problem: a named principal or trusted
/// component.
///
/// Participants are created through
/// [`ExchangeSpec::add_principal`](crate::ExchangeSpec::add_principal) and
/// [`ExchangeSpec::add_trusted`](crate::ExchangeSpec::add_trusted), which
/// assign the [`AgentId`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Participant {
    id: AgentId,
    name: String,
    kind: ParticipantKind,
}

impl Participant {
    pub(crate) fn new(id: AgentId, name: impl Into<String>, kind: ParticipantKind) -> Self {
        Participant {
            id,
            name: name.into(),
            kind,
        }
    }

    /// The participant's identifier.
    pub fn id(&self) -> AgentId {
        self.id
    }

    /// The participant's human-readable name (unique within a spec).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Principal or trusted component.
    pub fn kind(&self) -> ParticipantKind {
        self.kind
    }

    /// Returns `true` for principals.
    pub fn is_principal(&self) -> bool {
        self.kind.is_principal()
    }

    /// Returns `true` for trusted components.
    pub fn is_trusted(&self) -> bool {
        self.kind.is_trusted()
    }
}

impl fmt::Display for Participant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParticipantKind::Principal(role) => write!(f, "{} ({role})", self.name),
            ParticipantKind::Trusted => write!(f, "{} (trusted)", self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        let p = ParticipantKind::Principal(Role::Broker);
        assert!(p.is_principal());
        assert!(!p.is_trusted());
        assert_eq!(p.role(), Some(Role::Broker));

        let t = ParticipantKind::Trusted;
        assert!(t.is_trusted());
        assert!(!t.is_principal());
        assert_eq!(t.role(), None);
    }

    #[test]
    fn participant_accessors() {
        let p = Participant::new(
            AgentId::new(2),
            "alice",
            ParticipantKind::Principal(Role::Consumer),
        );
        assert_eq!(p.id(), AgentId::new(2));
        assert_eq!(p.name(), "alice");
        assert!(p.is_principal());
        assert_eq!(p.to_string(), "alice (consumer)");
    }

    #[test]
    fn trusted_display() {
        let t = Participant::new(AgentId::new(0), "escrow", ParticipantKind::Trusted);
        assert_eq!(t.to_string(), "escrow (trusted)");
        assert!(t.is_trusted());
    }

    #[test]
    fn role_display() {
        assert_eq!(Role::Producer.to_string(), "producer");
        assert_eq!(Role::Consumer.to_string(), "consumer");
        assert_eq!(Role::Broker.to_string(), "broker");
    }
}
