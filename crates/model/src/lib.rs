//! Foundational model types for trust-explicit distributed commerce
//! transactions.
//!
//! This crate implements the problem-specification framework of §2–§3 of
//! *"Making Trust Explicit in Distributed Commerce Transactions"*
//! (Ketchpel & Garcia-Molina, ICDCS 1996):
//!
//! * [`AgentId`], [`Participant`], [`Role`] — the principals (consumers,
//!   brokers, producers) and trusted components of a distributed transaction;
//! * [`Action`] — the transfer vocabulary: `give`, `pay`, their compensating
//!   inverses and `notify`;
//! * [`ExchangeState`] and [`AcceptanceSpec`] — unordered action-set states
//!   and each party's acceptable / preferred final states;
//! * [`Deal`] and [`ExchangeSpec`] — pairwise exchanges through trusted
//!   intermediaries, bundles, resale (ordering) constraints and the directed
//!   [`TrustRelation`];
//! * [`InteractionGraph`] — the bipartite principals/trusted-components graph
//!   of §3 from which sequencing graphs are built.
//!
//! # Example
//!
//! Build the paper's Example #1 (consumer buys a document from a producer
//! through a broker, with two local trusted intermediaries):
//!
//! ```
//! use trustseq_model::{ExchangeSpec, Money, Role};
//!
//! # fn main() -> Result<(), trustseq_model::ModelError> {
//! let mut spec = ExchangeSpec::new("example1");
//! let c = spec.add_principal("consumer", Role::Consumer)?;
//! let b = spec.add_principal("broker", Role::Broker)?;
//! let p = spec.add_principal("producer", Role::Producer)?;
//! let t1 = spec.add_trusted("t1")?;
//! let t2 = spec.add_trusted("t2")?;
//! let doc = spec.add_item("doc", "The Document")?;
//!
//! let sale = spec.add_deal(b, c, t1, doc, Money::from_dollars(100))?;
//! let supply = spec.add_deal(p, b, t2, doc, Money::from_dollars(80))?;
//! // The broker resells: it must secure the sale before purchasing.
//! spec.add_resale_constraint(b, sale, supply)?;
//!
//! let graph = spec.interaction_graph()?;
//! assert_eq!(graph.principal_count(), 3);
//! assert_eq!(graph.trusted_count(), 2);
//! assert_eq!(graph.edge_count(), 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod accept;
mod action;
mod constraint;
mod error;
mod ids;
mod interaction;
mod money;
mod participant;
mod saga;
mod spec;
mod state;
mod trust;

pub use accept::MAX_ENUMERATED_DEALS;
pub use action::{Action, ActionKind, Payload, Transfer};
pub use constraint::{FundingConstraint, OrderingConstraint, ResaleConstraint};
pub use error::ModelError;
pub use ids::{AgentId, DealId, ItemId};
pub use interaction::{DealSide, InteractionEdge, InteractionGraph};
pub use money::Money;
pub use participant::{Participant, ParticipantKind, Role};
pub use saga::SagaView;
pub use spec::{Assembly, Deal, ExchangeSpec, Indemnity, Item};
pub use state::{AcceptanceSpec, ExchangeState, NetPosition, Outcome, PartialState};
pub use trust::TrustRelation;
