//! Ordering constraints (§2.4) and resale constraints (§4.1).

use crate::{Action, AgentId, DealId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An action-level ordering constraint: `first` must be executed before
/// `then` (§2.4 of the paper writes this `then → first`, with the earlier
/// action at the point of the arrow).
///
/// Constraints of this form arise for practical reasons — a party cannot
/// forward an item it has not yet received — and are used to *check* that a
/// synthesised execution sequence is physically realisable.
///
/// ```
/// use trustseq_model::{Action, AgentId, ItemId, OrderingConstraint};
///
/// let p = AgentId::new(0);
/// let b = AgentId::new(1);
/// let c = AgentId::new(2);
/// let d = ItemId::new(0);
/// // The producer→broker transfer must precede the broker→consumer one.
/// let constraint = OrderingConstraint::new(Action::give(p, b, d), Action::give(b, c, d));
/// assert!(constraint.satisfied_by(&[Action::give(p, b, d), Action::give(b, c, d)]));
/// assert!(!constraint.satisfied_by(&[Action::give(b, c, d), Action::give(p, b, d)]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OrderingConstraint {
    first: Action,
    then: Action,
}

impl OrderingConstraint {
    /// Creates a constraint requiring `first` to precede `then`.
    pub fn new(first: Action, then: Action) -> Self {
        OrderingConstraint { first, then }
    }

    /// The action that must occur earlier.
    pub fn first(&self) -> Action {
        self.first
    }

    /// The action that must occur later.
    pub fn then(&self) -> Action {
        self.then
    }

    /// Checks a totally-ordered action sequence against this constraint.
    ///
    /// The constraint is satisfied when `then` does not occur, or both occur
    /// with `first` strictly earlier. (`first` occurring alone is fine: the
    /// dependent action simply never happened.)
    pub fn satisfied_by(&self, sequence: &[Action]) -> bool {
        let pos_then = sequence.iter().position(|a| *a == self.then);
        let Some(pos_then) = pos_then else {
            return true;
        };
        match sequence.iter().position(|a| *a == self.first) {
            Some(pos_first) => pos_first < pos_then,
            None => false,
        }
    }
}

impl fmt::Display for OrderingConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Paper notation: later → earlier.
        write!(f, "{} -> {}", self.then, self.first)
    }
}

/// A resale constraint: at `principal`'s conjunction, the commitment for
/// `secure_first` (where the principal *sells*) must be committed before the
/// commitment for `before` (where the principal *buys*) may be undertaken.
///
/// This is the third conjunction type of §4.1 — "a broker will commit to
/// obtain a document only if it has a committed buyer" — and is the only one
/// with an ordering component. It is rendered as a **red edge** on the
/// `secure_first` commitment in the sequencing graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResaleConstraint {
    /// The reselling principal (typically a broker).
    pub principal: AgentId,
    /// The deal that must be secured first (the principal's sale).
    pub secure_first: DealId,
    /// The deal deferred until the sale is secured (the principal's
    /// purchase).
    pub before: DealId,
}

impl fmt::Display for ResaleConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: secure {} before undertaking {}",
            self.principal, self.secure_first, self.before
        )
    }
}

/// A funding constraint: `principal` can only pay for its purchase after
/// receiving the buyer's money from its sale `funded_by` (§5's "poor
/// broker").
///
/// This adds the action constraint `pay_{principal→seller} →
/// pay_{buyer→principal}` and is rendered as a **second red edge** — on the
/// `purchase` commitment — at the principal's conjunction. Two red edges at
/// one conjunction can never both "be done first", so a funding constraint
/// combined with a [`ResaleConstraint`] makes the exchange infeasible, as
/// the paper observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FundingConstraint {
    /// The cash-poor principal.
    pub principal: AgentId,
    /// The purchase that can only be funded from sale proceeds.
    pub purchase: DealId,
    /// The sale whose proceeds fund the purchase.
    pub funded_by: DealId,
}

impl fmt::Display for FundingConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} is funded by the proceeds of {}",
            self.principal, self.purchase, self.funded_by
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ItemId, Money};

    fn actions() -> (Action, Action) {
        let p = AgentId::new(0);
        let b = AgentId::new(1);
        let c = AgentId::new(2);
        (
            Action::give(p, b, ItemId::new(0)),
            Action::give(b, c, ItemId::new(0)),
        )
    }

    #[test]
    fn satisfied_when_ordered() {
        let (first, then) = actions();
        let c = OrderingConstraint::new(first, then);
        assert!(c.satisfied_by(&[first, then]));
    }

    #[test]
    fn violated_when_reversed_or_first_missing() {
        let (first, then) = actions();
        let c = OrderingConstraint::new(first, then);
        assert!(!c.satisfied_by(&[then, first]));
        assert!(!c.satisfied_by(&[then]));
    }

    #[test]
    fn vacuously_satisfied_without_dependent_action() {
        let (first, then) = actions();
        let c = OrderingConstraint::new(first, then);
        assert!(c.satisfied_by(&[]));
        assert!(c.satisfied_by(&[first]));
        let unrelated = Action::pay(AgentId::new(5), AgentId::new(6), Money::from_dollars(1));
        assert!(c.satisfied_by(&[unrelated]));
    }

    #[test]
    fn display_uses_paper_arrow_direction() {
        let (first, then) = actions();
        let c = OrderingConstraint::new(first, then);
        // Later action at the tail, earlier at the point of the arrow.
        assert_eq!(c.to_string(), format!("{then} -> {first}"),);
    }

    #[test]
    fn resale_constraint_display() {
        let r = ResaleConstraint {
            principal: AgentId::new(1),
            secure_first: DealId::new(0),
            before: DealId::new(1),
        };
        assert_eq!(r.to_string(), "a1: secure d0 before undertaking d1");
    }
}
