//! The action vocabulary of §2.2: `give`, `pay`, their compensating inverses
//! and `notify`.

use crate::{AgentId, ItemId, Money};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A coarse classification of [`Action`]s, useful for filtering histories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActionKind {
    /// An item transfer (`give`).
    Give,
    /// A payment (`pay`).
    Pay,
    /// A compensating item return (`give⁻¹`).
    InverseGive,
    /// A compensating refund (`pay⁻¹`).
    InversePay,
    /// A trusted component informing a principal that everyone else has
    /// performed (`notify`).
    Notify,
}

/// One atomic action of a distributed transaction.
///
/// Following §2.2 of the paper, only actions that result in transfers between
/// parties are modelled, plus the `notify` action available to trusted
/// components (§2.5). A compensating inverse (`give⁻¹`, `pay⁻¹`) records the
/// *original* sender and receiver: `InverseGive { from: a, to: b, .. }` means
/// the earlier `give` from `a` to `b` has been undone (the item moved back
/// from `b` to `a`).
///
/// ```
/// use trustseq_model::{Action, AgentId, ItemId, Money};
///
/// let a = AgentId::new(0);
/// let t = AgentId::new(1);
/// let give = Action::give(a, t, ItemId::new(0));
/// assert_eq!(give.to_string(), "give[a0->a1](i0)");
/// assert_eq!(give.inverse().unwrap().to_string(), "give^-1[a0->a1](i0)");
/// assert_eq!(Action::pay(a, t, Money::from_dollars(5)).to_string(),
///            "pay[a0->a1]($5.00)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Action {
    /// `give_{from→to}(item)`: `from` hands `item` to `to`.
    Give {
        /// Sender of the item.
        from: AgentId,
        /// Receiver of the item.
        to: AgentId,
        /// The item transferred.
        item: ItemId,
    },
    /// `pay_{from→to}(amount)`: `from` pays `to`.
    Pay {
        /// Payer.
        from: AgentId,
        /// Payee.
        to: AgentId,
        /// Amount paid.
        amount: Money,
    },
    /// `give⁻¹_{from→to}(item)`: the earlier `give` is compensated — the item
    /// is returned from `to` back to `from`.
    InverseGive {
        /// Sender of the original `give`.
        from: AgentId,
        /// Receiver of the original `give`.
        to: AgentId,
        /// The item returned.
        item: ItemId,
    },
    /// `pay⁻¹_{from→to}(amount)`: the earlier payment is refunded from `to`
    /// back to `from`.
    InversePay {
        /// Payer of the original `pay`.
        from: AgentId,
        /// Payee of the original `pay`.
        to: AgentId,
        /// Amount refunded.
        amount: Money,
    },
    /// `notify(to)`: trusted component `from` informs principal `to` that the
    /// other principals have fulfilled their parts of the exchange.
    Notify {
        /// The notifying trusted component.
        from: AgentId,
        /// The notified principal.
        to: AgentId,
    },
}

impl Action {
    /// Convenience constructor for [`Action::Give`].
    pub fn give(from: AgentId, to: AgentId, item: ItemId) -> Self {
        Action::Give { from, to, item }
    }

    /// Convenience constructor for [`Action::Pay`].
    pub fn pay(from: AgentId, to: AgentId, amount: Money) -> Self {
        Action::Pay { from, to, amount }
    }

    /// Convenience constructor for [`Action::Notify`].
    pub fn notify(from: AgentId, to: AgentId) -> Self {
        Action::Notify { from, to }
    }

    /// The action's classification.
    pub fn kind(&self) -> ActionKind {
        match self {
            Action::Give { .. } => ActionKind::Give,
            Action::Pay { .. } => ActionKind::Pay,
            Action::InverseGive { .. } => ActionKind::InverseGive,
            Action::InversePay { .. } => ActionKind::InversePay,
            Action::Notify { .. } => ActionKind::Notify,
        }
    }

    /// The participant performing the action.
    ///
    /// For a forward `give`/`pay` that is the sender; for a compensating
    /// inverse it is the *receiver of the original action*, who returns what
    /// it was holding; for `notify` it is the trusted component.
    pub fn actor(&self) -> AgentId {
        match *self {
            Action::Give { from, .. } | Action::Pay { from, .. } | Action::Notify { from, .. } => {
                from
            }
            Action::InverseGive { to, .. } | Action::InversePay { to, .. } => to,
        }
    }

    /// The participant on the receiving end of the action.
    ///
    /// For a compensating inverse this is the original sender, who gets its
    /// asset back.
    pub fn recipient(&self) -> AgentId {
        match *self {
            Action::Give { to, .. } | Action::Pay { to, .. } | Action::Notify { to, .. } => to,
            Action::InverseGive { from, .. } | Action::InversePay { from, .. } => from,
        }
    }

    /// Returns the compensating inverse of a forward `give`/`pay`.
    ///
    /// Returns `None` for `notify` and for actions that are already
    /// inverses — the paper's model never compensates a compensation.
    pub fn inverse(&self) -> Option<Action> {
        match *self {
            Action::Give { from, to, item } => Some(Action::InverseGive { from, to, item }),
            Action::Pay { from, to, amount } => Some(Action::InversePay { from, to, amount }),
            _ => None,
        }
    }

    /// Returns the forward action this inverse compensates, if `self` is an
    /// inverse.
    pub fn compensated(&self) -> Option<Action> {
        match *self {
            Action::InverseGive { from, to, item } => Some(Action::Give { from, to, item }),
            Action::InversePay { from, to, amount } => Some(Action::Pay { from, to, amount }),
            _ => None,
        }
    }

    /// `true` for `give⁻¹` and `pay⁻¹`.
    pub fn is_compensation(&self) -> bool {
        matches!(
            self.kind(),
            ActionKind::InverseGive | ActionKind::InversePay
        )
    }

    /// `true` if the action moves an asset (everything except `notify`).
    pub fn is_transfer(&self) -> bool {
        !matches!(self, Action::Notify { .. })
    }

    /// Returns `true` if `agent` performed or received this action.
    ///
    /// The paper's acceptability test quantifies over "actions by that
    /// party"; a transfer involves both endpoints.
    pub fn involves(&self, agent: AgentId) -> bool {
        self.actor() == agent || self.recipient() == agent
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Action::Give { from, to, item } => write!(f, "give[{from}->{to}]({item})"),
            Action::Pay { from, to, amount } => write!(f, "pay[{from}->{to}]({amount})"),
            Action::InverseGive { from, to, item } => write!(f, "give^-1[{from}->{to}]({item})"),
            Action::InversePay { from, to, amount } => {
                write!(f, "pay^-1[{from}->{to}]({amount})")
            }
            Action::Notify { from, to } => write!(f, "notify[{from}]({to})"),
        }
    }
}

/// A concrete asset movement between two participants.
///
/// [`Action`]s describe history entries in the paper's state formalism;
/// `Transfer` is the operational view used by the execution layer and the
/// simulator: *who* physically sends *what* to *whom*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Transfer {
    /// Sender.
    pub from: AgentId,
    /// Receiver.
    pub to: AgentId,
    /// What is moved.
    pub payload: Payload,
}

/// The payload of a [`Transfer`]: an item or money.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Payload {
    /// An item (document, computation result).
    Item(ItemId),
    /// A sum of money.
    Cash(Money),
}

impl Transfer {
    /// A transfer of an item.
    pub fn item(from: AgentId, to: AgentId, item: ItemId) -> Self {
        Transfer {
            from,
            to,
            payload: Payload::Item(item),
        }
    }

    /// A transfer of money.
    pub fn cash(from: AgentId, to: AgentId, amount: Money) -> Self {
        Transfer {
            from,
            to,
            payload: Payload::Cash(amount),
        }
    }
}

impl fmt::Display for Transfer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.payload {
            Payload::Item(item) => write!(f, "{} sends {item} to {}", self.from, self.to),
            Payload::Cash(amount) => write!(f, "{} sends {amount} to {}", self.from, self.to),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agents() -> (AgentId, AgentId) {
        (AgentId::new(0), AgentId::new(1))
    }

    #[test]
    fn give_inverse_roundtrip() {
        let (a, b) = agents();
        let give = Action::give(a, b, ItemId::new(3));
        let inv = give.inverse().unwrap();
        assert!(inv.is_compensation());
        assert_eq!(inv.compensated(), Some(give));
        assert_eq!(inv.kind(), ActionKind::InverseGive);
    }

    #[test]
    fn pay_inverse_roundtrip() {
        let (a, b) = agents();
        let pay = Action::pay(a, b, Money::from_dollars(10));
        let inv = pay.inverse().unwrap();
        assert_eq!(inv.compensated(), Some(pay));
        assert_eq!(inv.kind(), ActionKind::InversePay);
    }

    #[test]
    fn inverses_have_no_inverse() {
        let (a, b) = agents();
        let inv = Action::give(a, b, ItemId::new(0)).inverse().unwrap();
        assert_eq!(inv.inverse(), None);
        assert_eq!(Action::notify(a, b).inverse(), None);
    }

    #[test]
    fn actor_and_recipient_swap_for_inverses() {
        let (a, b) = agents();
        let give = Action::give(a, b, ItemId::new(0));
        assert_eq!(give.actor(), a);
        assert_eq!(give.recipient(), b);
        // The inverse is performed by the original receiver.
        let inv = give.inverse().unwrap();
        assert_eq!(inv.actor(), b);
        assert_eq!(inv.recipient(), a);
    }

    #[test]
    fn involvement_covers_both_endpoints() {
        let (a, b) = agents();
        let c = AgentId::new(2);
        let pay = Action::pay(a, b, Money::from_dollars(1));
        assert!(pay.involves(a));
        assert!(pay.involves(b));
        assert!(!pay.involves(c));
    }

    #[test]
    fn notify_is_not_a_transfer() {
        let (a, b) = agents();
        assert!(!Action::notify(a, b).is_transfer());
        assert!(Action::give(a, b, ItemId::new(0)).is_transfer());
        assert!(Action::give(a, b, ItemId::new(0))
            .inverse()
            .unwrap()
            .is_transfer());
    }

    #[test]
    fn display_matches_paper_notation() {
        let (a, b) = agents();
        assert_eq!(
            Action::give(a, b, ItemId::new(2)).to_string(),
            "give[a0->a1](i2)"
        );
        assert_eq!(
            Action::pay(a, b, Money::from_cents(150))
                .inverse()
                .unwrap()
                .to_string(),
            "pay^-1[a0->a1]($1.50)"
        );
        assert_eq!(Action::notify(a, b).to_string(), "notify[a0](a1)");
    }

    #[test]
    fn transfer_display() {
        let (a, b) = agents();
        assert_eq!(
            Transfer::item(a, b, ItemId::new(1)).to_string(),
            "a0 sends i1 to a1"
        );
        assert_eq!(
            Transfer::cash(b, a, Money::from_dollars(4)).to_string(),
            "a1 sends $4.00 to a0"
        );
    }
}
