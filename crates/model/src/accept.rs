//! Generation of per-principal acceptance specifications (§2.3) from an
//! [`ExchangeSpec`].
//!
//! For every principal the generator enumerates the final states the paper
//! deems acceptable:
//!
//! * the **preferred** state — every deal of the principal completed (and
//!   every indemnity it provided refunded);
//! * **back-out** states — any subset of its deals deposited-then-returned,
//!   the rest untouched (these all net to the status quo);
//! * **indemnity** states — an indemnity *splits* the beneficiary's
//!   conjunction (§6), so each covered deal independently completes, backs
//!   out, or fails-with-payout, while the non-indemnified remainder of the
//!   bundle stays jointly all-or-nothing; for a provider, forfeit variants
//!   of the back-out states.
//!
//! Windfall states (receiving goods without paying, §2.3's "perhaps less
//! realistic" fourth state) are intentionally *not* generated: they cannot
//! arise from honest trusted components, and omitting them only makes
//! classification stricter.
//!
//! The enumeration is exponential in the number of deals per principal; for
//! principals with more than [`MAX_ENUMERATED_DEALS`] deals only the
//! preferred, status-quo and full-back-out states are produced.

use crate::spec::ExchangeSpec;
use crate::{AcceptanceSpec, Action, AgentId, Deal, DealId, Indemnity, PartialState};
use std::collections::BTreeSet;

/// Above this many deals for a single principal, back-out subsets are no
/// longer enumerated exhaustively.
pub const MAX_ENUMERATED_DEALS: usize = 12;

/// The actions a principal performs/receives when `deal` completes.
///
/// Each side interacts with *its own* trusted component (they differ for
/// bridged deals); the payment to the seller comes from the buyer-side
/// component, which holds the cash.
fn completed_actions(deal: &Deal, principal: AgentId) -> Vec<Action> {
    if deal.buyer() == principal {
        let t = deal.intermediary();
        vec![
            Action::pay(principal, t, deal.price()),
            Action::give(t, principal, deal.item()),
        ]
    } else {
        vec![
            Action::give(principal, deal.seller_intermediary(), deal.item()),
            Action::pay(deal.intermediary(), principal, deal.price()),
        ]
    }
}

/// The actions a principal performs/receives when it deposits for `deal`
/// and the deposit is returned.
fn backout_actions(deal: &Deal, principal: AgentId) -> Vec<Action> {
    let forward = if deal.buyer() == principal {
        Action::pay(principal, deal.intermediary(), deal.price())
    } else {
        Action::give(principal, deal.seller_intermediary(), deal.item())
    };
    vec![
        forward,
        forward.inverse().expect("forward action invertible"),
    ]
}

/// Indemnity deposit + refund, as seen by the provider.
fn indemnity_success_actions(ind: &Indemnity) -> Vec<Action> {
    let deposit = Action::pay(ind.provider, ind.via, ind.amount);
    vec![deposit, deposit.inverse().expect("pay invertible")]
}

/// Builds the acceptance specifications of every principal of `spec`.
pub(crate) fn acceptance_specs(spec: &ExchangeSpec) -> Vec<AcceptanceSpec> {
    spec.principals()
        .map(|p| acceptance_spec_for(spec, p.id()))
        .collect()
}

fn acceptance_spec_for(spec: &ExchangeSpec, principal: AgentId) -> AcceptanceSpec {
    let deals: Vec<&Deal> = spec.deals_of(principal).collect();
    let provided: Vec<&Indemnity> = spec
        .indemnities()
        .iter()
        .filter(|i| i.provider == principal)
        .collect();
    let received: Vec<&Indemnity> = spec
        .indemnities()
        .iter()
        .filter(|i| i.beneficiary == principal)
        .collect();

    let mut states: Vec<PartialState> = Vec::new();

    // Preferred: everything completes, provided indemnities refunded.
    let mut preferred_actions: Vec<Action> = deals
        .iter()
        .flat_map(|d| completed_actions(d, principal))
        .collect();
    for ind in &provided {
        preferred_actions.extend(indemnity_success_actions(ind));
    }
    states.push(PartialState::from_actions(preferred_actions));
    let preferred_index = 0;

    // Back-out subsets (includes the empty subset: the status quo).
    let enumerate_all = deals.len() <= MAX_ENUMERATED_DEALS;
    let subsets: Vec<Vec<&Deal>> = if enumerate_all {
        (0..(1usize << deals.len()))
            .map(|mask| {
                deals
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, d)| *d)
                    .collect()
            })
            .collect()
    } else {
        vec![Vec::new(), deals.clone()]
    };
    // Back-out variants per deal: the plain deposit-and-return pair, plus —
    // for a buyer whose intermediary is the buyer's own persona (§4.2.3) —
    // a variant where the held item was virtually lent to the persona and
    // returned when the exchange unwound.
    let backout_variants = |d: &Deal| -> Vec<Vec<Action>> {
        let mut variants = vec![backout_actions(d, principal)];
        if d.buyer() == principal && spec.persona_of(d.intermediary()) == Some(principal) {
            let mut with_lend = backout_actions(d, principal);
            let lend = Action::give(d.intermediary(), principal, d.item());
            with_lend.push(lend);
            with_lend.push(lend.inverse().expect("give invertible"));
            variants.push(with_lend);
        }
        variants
    };

    for subset in &subsets {
        // Cross product over each deal's back-out variants.
        let variant_lists: Vec<Vec<Vec<Action>>> =
            subset.iter().map(|d| backout_variants(d)).collect();
        let combos: u64 = variant_lists.iter().map(|v| v.len() as u64).product();
        let mut bases: Vec<Vec<Action>> = Vec::with_capacity(combos as usize);
        for combo in 0..combos {
            let mut rem = combo;
            let mut actions = Vec::new();
            for list in &variant_lists {
                let pick = (rem % list.len() as u64) as usize;
                rem /= list.len() as u64;
                actions.extend(list[pick].iter().copied());
            }
            bases.push(actions);
        }
        for base in &bases {
            states.push(PartialState::from_actions(base.clone()));
            if !provided.is_empty() {
                // Provider overlays: each provided indemnity independently
                // either (a) deposited and refunded, or (b) deposited and
                // forfeited — or (c) never posted (the bare state above).
                // Enumerate (a)/(b) per indemnity (2^k overlays).
                let k = provided.len().min(MAX_ENUMERATED_DEALS);
                for mask in 0..(1usize << k) {
                    let mut with_overlay = base.clone();
                    for (i, ind) in provided.iter().take(k).enumerate() {
                        if mask & (1 << i) != 0 {
                            // forfeited: deposit only
                            with_overlay.push(Action::pay(ind.provider, ind.via, ind.amount));
                        } else {
                            with_overlay.extend(indemnity_success_actions(ind));
                        }
                    }
                    states.push(PartialState::from_actions(with_overlay));
                }
            }
        }
    }

    // Beneficiary indemnity states. Per §6, an indemnity *splits* the
    // beneficiary's conjunction: each covered deal becomes an independent
    // transaction that may complete, back out, or fail-with-payout
    // (deposit refunded plus the collateral forfeited to the beneficiary),
    // regardless of the rest of the bundle. The *non-indemnified* deals
    // remain conjoined: jointly completed or jointly backed out.
    if !received.is_empty() && enumerate_all {
        let indemnified: BTreeSet<DealId> = received.iter().map(|i| i.deal).collect();
        let split_deals: Vec<&&Deal> = deals
            .iter()
            .filter(|d| indemnified.contains(&d.id()))
            .collect();
        let joint_deals: Vec<&&Deal> = deals
            .iter()
            .filter(|d| !indemnified.contains(&d.id()))
            .collect();
        // Each split deal independently: completed / backed out /
        // untouched / failed-with-payout (4 statuses). The joint remainder:
        // either all completed, or nothing completed with each deal
        // independently backed out or untouched.
        let split_combos: u64 = 4u64.pow(split_deals.len() as u32);
        let joint_combos: u64 = 1 + (1u64 << joint_deals.len()); // complete | 2^j fail mixes
        for assignment in 0..split_combos {
            for joint_choice in 0..joint_combos {
                let mut rem = assignment;
                let mut actions: Vec<Action> = Vec::new();
                for d in &split_deals {
                    let status = (rem % 4) as u32;
                    rem /= 4;
                    match status {
                        0 => actions.extend(completed_actions(d, principal)),
                        1 => actions.extend(backout_actions(d, principal)),
                        2 => {} // untouched
                        _ => {
                            actions.extend(backout_actions(d, principal));
                            for ind in received.iter().filter(|i| i.deal == d.id()) {
                                actions.push(Action::pay(ind.via, principal, ind.amount));
                            }
                        }
                    }
                }
                if joint_choice == 0 {
                    for d in &joint_deals {
                        actions.extend(completed_actions(d, principal));
                    }
                } else {
                    let mask = joint_choice - 1;
                    for (k, d) in joint_deals.iter().enumerate() {
                        if mask & (1 << k) != 0 {
                            actions.extend(backout_actions(d, principal));
                        }
                        // else: untouched
                    }
                }
                // Provided indemnities are refunded in these states (the
                // principal itself performed).
                for ind in &provided {
                    actions.extend(indemnity_success_actions(ind));
                }
                states.push(PartialState::from_actions(actions));
            }
        }
    }

    // De-duplicate while preserving the preferred index (always first).
    let mut seen = BTreeSet::new();
    let mut unique = Vec::with_capacity(states.len());
    for s in states {
        let key: Vec<Action> = s.actions().copied().collect();
        if seen.insert(key) {
            unique.push(s);
        }
    }

    AcceptanceSpec::new(principal, unique, preferred_index)
}

impl ExchangeSpec {
    /// Generates the acceptance specification (§2.3) of every principal.
    ///
    /// See this module's documentation for exactly which states are
    /// enumerated. The enumeration is exponential in deals-per-principal and
    /// falls back to a coarse set above [`MAX_ENUMERATED_DEALS`].
    pub fn acceptance_specs(&self) -> Vec<AcceptanceSpec> {
        acceptance_specs(self)
    }

    /// Generates the acceptance specification of a single principal.
    ///
    /// # Panics
    ///
    /// Panics if `principal` is not a principal of this spec.
    pub fn acceptance_spec_of(&self, principal: AgentId) -> AcceptanceSpec {
        assert!(
            self.participant(principal)
                .map(|p| p.is_principal())
                .unwrap_or(false),
            "{principal} is not a principal"
        );
        acceptance_spec_for(self, principal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExchangeState, Money, Outcome, Role};

    fn simple_sale() -> (ExchangeSpec, AgentId, AgentId, AgentId) {
        let mut spec = ExchangeSpec::new("sale");
        let p = spec.add_principal("producer", Role::Producer).unwrap();
        let c = spec.add_principal("customer", Role::Consumer).unwrap();
        let t = spec.add_trusted("t").unwrap();
        let i = spec.add_item("doc", "Doc").unwrap();
        spec.add_deal(p, c, t, i, Money::from_dollars(20)).unwrap();
        (spec, p, c, t)
    }

    #[test]
    fn customer_accepts_paper_states() {
        let (spec, _p, c, t) = simple_sale();
        let accept = spec.acceptance_spec_of(c);
        let item = spec.item_by_key("doc").unwrap().id();
        let m = Money::from_dollars(20);

        // Completed exchange through the intermediary: preferred.
        let done: ExchangeState = [Action::pay(c, t, m), Action::give(t, c, item)]
            .into_iter()
            .collect();
        assert_eq!(accept.classify(&done), Outcome::Preferred);

        // Refund: acceptable.
        let refunded: ExchangeState = [
            Action::pay(c, t, m),
            Action::pay(c, t, m).inverse().unwrap(),
        ]
        .into_iter()
        .collect();
        assert_eq!(accept.classify(&refunded), Outcome::Acceptable);

        // Status quo: acceptable.
        assert_eq!(accept.classify(&ExchangeState::new()), Outcome::Acceptable);

        // Paid without receiving: unacceptable.
        let robbed: ExchangeState = [Action::pay(c, t, m)].into_iter().collect();
        assert_eq!(accept.classify(&robbed), Outcome::Unacceptable);
    }

    #[test]
    fn producer_accepts_paper_states() {
        let (spec, p, _c, t) = simple_sale();
        let accept = spec.acceptance_spec_of(p);
        let item = spec.item_by_key("doc").unwrap().id();
        let m = Money::from_dollars(20);

        let done: ExchangeState = [Action::give(p, t, item), Action::pay(t, p, m)]
            .into_iter()
            .collect();
        assert_eq!(accept.classify(&done), Outcome::Preferred);

        let returned: ExchangeState = [
            Action::give(p, t, item),
            Action::give(p, t, item).inverse().unwrap(),
        ]
        .into_iter()
        .collect();
        assert_eq!(accept.classify(&returned), Outcome::Acceptable);

        // Gave the document away unpaid: unacceptable.
        let robbed: ExchangeState = [Action::give(p, t, item)].into_iter().collect();
        assert_eq!(accept.classify(&robbed), Outcome::Unacceptable);
    }

    /// A consumer bundling two documents: partial completion is not
    /// acceptable (all-or-nothing conjunction).
    #[test]
    fn bundle_partial_completion_unacceptable() {
        let mut spec = ExchangeSpec::new("bundle");
        let c = spec.add_principal("c", Role::Consumer).unwrap();
        let b1 = spec.add_principal("b1", Role::Broker).unwrap();
        let b2 = spec.add_principal("b2", Role::Broker).unwrap();
        let t1 = spec.add_trusted("t1").unwrap();
        let t2 = spec.add_trusted("t2").unwrap();
        let d1 = spec.add_item("d1", "Doc 1").unwrap();
        let d2 = spec.add_item("d2", "Doc 2").unwrap();
        spec.add_deal(b1, c, t1, d1, Money::from_dollars(10))
            .unwrap();
        spec.add_deal(b2, c, t2, d2, Money::from_dollars(20))
            .unwrap();

        let accept = spec.acceptance_spec_of(c);
        // Both completed: preferred.
        let both: ExchangeState = [
            Action::pay(c, t1, Money::from_dollars(10)),
            Action::give(t1, c, d1),
            Action::pay(c, t2, Money::from_dollars(20)),
            Action::give(t2, c, d2),
        ]
        .into_iter()
        .collect();
        assert_eq!(accept.classify(&both), Outcome::Preferred);

        // Only one completed: unacceptable.
        let one: ExchangeState = [
            Action::pay(c, t1, Money::from_dollars(10)),
            Action::give(t1, c, d1),
        ]
        .into_iter()
        .collect();
        assert_eq!(accept.classify(&one), Outcome::Unacceptable);

        // One deposited-and-refunded, other untouched: acceptable.
        let backed: ExchangeState = [
            Action::pay(c, t1, Money::from_dollars(10)),
            Action::pay(c, t1, Money::from_dollars(10))
                .inverse()
                .unwrap(),
        ]
        .into_iter()
        .collect();
        assert_eq!(accept.classify(&backed), Outcome::Acceptable);
    }

    /// With an indemnity on deal 1, the customer accepts "deal 2 completed,
    /// deal 1 refunded plus payout".
    #[test]
    fn indemnity_payout_state_is_acceptable() {
        let mut spec = ExchangeSpec::new("bundle");
        let c = spec.add_principal("c", Role::Consumer).unwrap();
        let b1 = spec.add_principal("b1", Role::Broker).unwrap();
        let b2 = spec.add_principal("b2", Role::Broker).unwrap();
        let t1 = spec.add_trusted("t1").unwrap();
        let t2 = spec.add_trusted("t2").unwrap();
        let d1 = spec.add_item("d1", "Doc 1").unwrap();
        let d2 = spec.add_item("d2", "Doc 2").unwrap();
        let deal1 = spec
            .add_deal(b1, c, t1, d1, Money::from_dollars(10))
            .unwrap();
        spec.add_deal(b2, c, t2, d2, Money::from_dollars(20))
            .unwrap();
        spec.add_indemnity(b1, deal1, Money::from_dollars(20))
            .unwrap();

        let accept = spec.acceptance_spec_of(c);
        let state: ExchangeState = [
            // deal 2 completes
            Action::pay(c, t2, Money::from_dollars(20)),
            Action::give(t2, c, d2),
            // deal 1 refunded + indemnity payout via t1
            Action::pay(c, t1, Money::from_dollars(10)),
            Action::pay(c, t1, Money::from_dollars(10))
                .inverse()
                .unwrap(),
            Action::pay(t1, c, Money::from_dollars(20)),
        ]
        .into_iter()
        .collect();
        assert_eq!(accept.classify(&state), Outcome::Acceptable);

        // The split makes the covered deal independent: deal 1 completed
        // while deal 2 merely backs out is acceptable (the consumer chose
        // this exposure when accepting the indemnity arrangement).
        let split_mix: ExchangeState = [
            Action::pay(c, t1, Money::from_dollars(10)),
            Action::give(t1, c, d1),
            Action::pay(c, t2, Money::from_dollars(20)),
            Action::pay(c, t2, Money::from_dollars(20))
                .inverse()
                .unwrap(),
        ]
        .into_iter()
        .collect();
        assert_eq!(accept.classify(&split_mix), Outcome::Acceptable);

        // Double failure: deal 1 fails with payout, deal 2 merely backs
        // out. Still acceptable (the consumer is overcompensated, not
        // harmed).
        let both_fail: ExchangeState = [
            Action::pay(c, t2, Money::from_dollars(20)),
            Action::pay(c, t2, Money::from_dollars(20))
                .inverse()
                .unwrap(),
            Action::pay(c, t1, Money::from_dollars(10)),
            Action::pay(c, t1, Money::from_dollars(10))
                .inverse()
                .unwrap(),
            Action::pay(t1, c, Money::from_dollars(20)),
        ]
        .into_iter()
        .collect();
        assert_eq!(accept.classify(&both_fail), Outcome::Acceptable);

        // Without the payout the state still matches the split semantics
        // (deal 1 independently backed out, deal 2 completed).
        let no_payout: ExchangeState = state
            .iter()
            .copied()
            .filter(|a| *a != Action::pay(t1, c, Money::from_dollars(20)))
            .collect();
        assert_eq!(accept.classify(&no_payout), Outcome::Acceptable);

        // But money sunk into deal 1 with neither delivery, refund nor
        // payout is a genuine loss: unacceptable.
        let robbed: ExchangeState = [
            Action::pay(c, t2, Money::from_dollars(20)),
            Action::give(t2, c, d2),
            Action::pay(c, t1, Money::from_dollars(10)),
        ]
        .into_iter()
        .collect();
        assert_eq!(accept.classify(&robbed), Outcome::Unacceptable);
    }

    /// The provider of an indemnity accepts both refund and forfeit
    /// overlays.
    #[test]
    fn provider_forfeit_states() {
        let mut spec = ExchangeSpec::new("sale");
        let b = spec.add_principal("b", Role::Broker).unwrap();
        let c = spec.add_principal("c", Role::Consumer).unwrap();
        let t = spec.add_trusted("t").unwrap();
        let i = spec.add_item("doc", "Doc").unwrap();
        let deal = spec.add_deal(b, c, t, i, Money::from_dollars(10)).unwrap();
        spec.add_indemnity(b, deal, Money::from_dollars(25))
            .unwrap();

        let accept = spec.acceptance_spec_of(b);
        let deposit = Action::pay(b, t, Money::from_dollars(25));

        // Deal never performed, indemnity forfeited.
        let forfeit: ExchangeState = [deposit].into_iter().collect();
        assert_eq!(accept.classify(&forfeit), Outcome::Acceptable);

        // Deal never performed, indemnity refunded.
        let refunded: ExchangeState = [deposit, deposit.inverse().unwrap()].into_iter().collect();
        assert_eq!(accept.classify(&refunded), Outcome::Acceptable);

        // Preferred: deal completed + indemnity refunded.
        let done: ExchangeState = [
            Action::give(b, t, i),
            Action::pay(t, b, Money::from_dollars(10)),
            deposit,
            deposit.inverse().unwrap(),
        ]
        .into_iter()
        .collect();
        assert_eq!(accept.classify(&done), Outcome::Preferred);
    }

    #[test]
    fn every_principal_gets_a_spec() {
        let (spec, ..) = simple_sale();
        let specs = spec.acceptance_specs();
        assert_eq!(specs.len(), 2);
        let parties: Vec<_> = specs.iter().map(|s| s.party()).collect();
        assert!(parties.contains(&AgentId::new(0)));
        assert!(parties.contains(&AgentId::new(1)));
    }

    #[test]
    #[should_panic(expected = "is not a principal")]
    fn acceptance_spec_of_trusted_panics() {
        let (spec, _, _, t) = simple_sale();
        let _ = spec.acceptance_spec_of(t);
    }
}
