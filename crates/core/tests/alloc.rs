//! Allocation-regression test for the zero-allocation hot path: after a
//! warm-up pass has grown every buffer, a steady-state
//! [`ScratchReducer::run_into`] loop over pre-built graphs must perform
//! **zero** heap allocations per spec. Since the raw-speed pass this is
//! the bitset/SoA engine: live edges and candidates live in reused
//! `u64`-word bitsets and degree counters in reused `u32` vectors, so the
//! property covers every one of those buffers.
//!
//! Kept in its own integration-test binary because the counting
//! `#[global_allocator]` is process-global: any unrelated test running in
//! the same binary would disturb the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use trustseq_core::{fixtures, ReductionOutcome, ScratchReducer, SequencingGraph, Strategy};

/// Counts every allocation and reallocation routed through the global
/// allocator. Frees are not counted — the property under test is "no new
/// heap traffic", and a free without a matching alloc is impossible.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic
// with no allocation of its own.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// The counter is process-global, so the measuring tests must not overlap:
/// each takes this lock around its measurement window. (std's mutex is
/// const-initialized and allocation-free on lock.)
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Allocations observed across one run of `window`, retried until quiet.
///
/// The lock serialises the measuring tests against each other, but not
/// against the libtest harness itself: its worker threads spawn and report
/// the *other* tests concurrently, and those few startup allocations land
/// in the process-global counter. Re-running the window filters that
/// one-off noise without weakening the property — a real hot-path
/// regression allocates on every pass, so it can never go quiet.
fn measured_allocations(mut window: impl FnMut()) -> u64 {
    let mut observed = u64::MAX;
    for _ in 0..8 {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        window();
        observed = ALLOCATIONS.load(Ordering::Relaxed) - before;
        if observed == 0 {
            break;
        }
    }
    observed
}

#[test]
fn steady_state_batch_reduction_does_not_allocate() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // Build the graphs up front — construction may allocate freely.
    let graphs: Vec<SequencingGraph> = [
        fixtures::example1().0,
        fixtures::example2().0,
        fixtures::poor_broker().0,
        fixtures::figure7().0,
        fixtures::example2_shared_escrow().0,
    ]
    .iter()
    .map(|spec| SequencingGraph::from_spec(spec).unwrap())
    .collect();

    let mut scratch = ScratchReducer::new();
    let mut out = ReductionOutcome::default();

    // Warm-up: one pass grows every scratch and outcome buffer to the
    // largest shape in the batch.
    for graph in &graphs {
        scratch.run_into(graph, Strategy::Deterministic, &mut out);
    }

    // Steady state: many batch passes, zero heap allocations.
    let mut feasible = 0usize;
    let observed = measured_allocations(|| {
        feasible = 0;
        for _ in 0..100 {
            for graph in &graphs {
                scratch.run_into(graph, Strategy::Deterministic, &mut out);
                feasible += usize::from(out.feasible);
            }
        }
    });

    assert_eq!(
        observed, 0,
        "steady-state reset_for + run_into loop must not allocate"
    );
    // The loop really did the work (example1 and the shared-escrow variant
    // under PAPER semantics: only example1 reduces to feasibility).
    assert_eq!(feasible, 100);
}

/// The observability layer's disabled path (the default: no recorder
/// installed, [`NoopRecorder`] semantics) must cost the hot path nothing:
/// the `obs::enabled()` gate is one relaxed load, so the instrumented
/// steady-state loop stays at zero heap allocations. Guards the tentpole
/// claim that instrumentation is zero-cost when disabled.
#[test]
fn noop_recorder_keeps_instrumented_hot_path_allocation_free() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    assert!(
        !trustseq_core::obs::enabled(),
        "no recorder may be installed in the alloc test binary"
    );
    let graph = SequencingGraph::from_spec(&fixtures::example1().0).unwrap();
    let mut scratch = ScratchReducer::new();
    let mut out = ReductionOutcome::default();
    scratch.run_into(&graph, Strategy::Deterministic, &mut out);

    let observed = measured_allocations(|| {
        for _ in 0..500 {
            // Every iteration crosses the instrumentation sites in run_into
            // (worklist tracking, end-of-run metric emission) with recording
            // disabled — and the NoopRecorder itself is exercised directly.
            scratch.run_into(&graph, Strategy::Deterministic, &mut out);
            let noop = trustseq_core::NoopRecorder;
            use trustseq_core::Recorder as _;
            noop.counter("reduce.runs", 1);
            noop.observe("reduce.worklist_peak", 1);
        }
    });
    assert_eq!(
        observed, 0,
        "disabled observability must not allocate on the hot path"
    );
    assert!(out.feasible);
}

/// A graph mid-reduction (example2's infeasible impasse, kept by
/// [`Reducer::run_keeping_graph`]) has dead edges, so
/// `ScratchReducer::reset_for` takes the packed bool→bitset-word path
/// instead of the all-live fast path. That path — and the `u32` degree
/// narrowing that rides with it — must be just as allocation-free.
#[test]
fn partially_reduced_graphs_are_allocation_free_after_warm_up() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (first, stuck) =
        trustseq_core::Reducer::new(SequencingGraph::from_spec(&fixtures::example2().0).unwrap())
            .run_keeping_graph();
    assert!(!first.feasible);
    assert!(
        stuck.live_edge_count() < stuck.edges().len(),
        "the impasse must leave a genuinely partial graph"
    );
    let mut scratch = ScratchReducer::new();
    let mut out = ReductionOutcome::default();
    scratch.run_into(&stuck, Strategy::Deterministic, &mut out);

    let observed = measured_allocations(|| {
        for seed in 0..100 {
            scratch.run_into(&stuck, Strategy::Deterministic, &mut out);
            scratch.run_into(&stuck, Strategy::Randomized { seed }, &mut out);
        }
    });
    assert_eq!(
        observed, 0,
        "packed bitset reset over a partial graph must not allocate"
    );
    assert!(!out.feasible);
}

#[test]
fn randomized_strategy_is_allocation_free_after_warm_up() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let graph = SequencingGraph::from_spec(&fixtures::figure7().0).unwrap();
    let mut scratch = ScratchReducer::new();
    let mut out = ReductionOutcome::default();
    for seed in 0..4 {
        scratch.run_into(&graph, Strategy::Randomized { seed }, &mut out);
    }
    let observed = measured_allocations(|| {
        for seed in 0..64 {
            scratch.run_into(&graph, Strategy::Randomized { seed }, &mut out);
        }
    });
    assert_eq!(
        observed, 0,
        "randomized rescan loop must reuse the move buffer"
    );
}
