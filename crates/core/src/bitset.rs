//! Packed `u64`-word bit sets indexed by arena slot.
//!
//! The reduction hot path ([`ScratchReducer`](crate::ScratchReducer))
//! tracks three kinds of per-edge membership — liveness, rule #1
//! candidacy, rule #2 candidacy — and all three are dense sets over the
//! contiguous edge-slot space `0..edge_count`. A `Vec<bool>` spends one
//! byte (and one branchy load) per query; packing 64 memberships into one
//! machine word lets the selection loop scan whole words at a time and
//! find members with `trailing_zeros` / `leading_zeros`, so a 64-edge
//! graph's candidate scan touches one cache line instead of chasing a
//! pointer-ordered heap.
//!
//! [`EdgeBitSet`] deliberately exposes its word granularity
//! ([`word`](EdgeBitSet::word), [`word_count`](EdgeBitSet::word_count),
//! [`WORD_BITS`]) so callers can fuse scans across several sets (e.g. the
//! reducer's pop-max over `rule1 | rule2`) without intermediate
//! allocation. All mutation is in place; after a set has grown to a
//! shape once, resetting to any equal-or-smaller shape allocates nothing.

/// Bits per storage word.
pub const WORD_BITS: usize = u64::BITS as usize;

/// A dense, reusable bit set over arena slots `0..len`.
///
/// ```
/// use trustseq_core::bitset::EdgeBitSet;
///
/// let mut set = EdgeBitSet::new();
/// set.reset(130);
/// set.insert(3);
/// set.insert(128);
/// assert!(set.contains(3) && set.contains(128) && !set.contains(64));
/// assert_eq!(set.ones().collect::<Vec<_>>(), vec![3, 128]);
/// assert_eq!(set.count(), 2);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct EdgeBitSet {
    words: Vec<u64>,
    len: usize,
}

impl EdgeBitSet {
    /// An empty set of zero slots. Buffers grow on first
    /// [`reset`](Self::reset) and are retained afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the set and resizes it to cover slots `0..len`, all absent.
    pub fn reset(&mut self, len: usize) {
        self.len = len;
        self.words.clear();
        self.words.resize(len.div_ceil(WORD_BITS), 0);
    }

    /// Resets to cover slots `0..len` with *every* slot present — the fast
    /// path for a fully live graph, filling word-at-a-time.
    pub fn reset_full(&mut self, len: usize) {
        self.len = len;
        self.words.clear();
        self.words.resize(len.div_ceil(WORD_BITS), !0u64);
        let tail = len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last = (1u64 << tail) - 1;
            }
        }
    }

    /// Resets to cover slots `0..len` with membership copied verbatim from
    /// pre-packed storage `words` — the memcpy path for loading a set the
    /// graph has already materialised (waivers, seed candidates).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `words` is not exactly the packed width
    /// of `len` slots or sets a bit at or beyond `len`.
    pub fn load_words(&mut self, words: &[u64], len: usize) {
        debug_assert_eq!(words.len(), len.div_ceil(WORD_BITS));
        debug_assert!(
            len.is_multiple_of(WORD_BITS)
                || words.last().is_none_or(|w| w >> (len % WORD_BITS) == 0),
            "stray bits beyond len {len}"
        );
        self.len = len;
        self.words.clear();
        self.words.extend_from_slice(words);
    }

    /// Resets from a `&[bool]` membership slice, packing 64 flags per word.
    pub fn reset_from_bools(&mut self, flags: &[bool]) {
        self.len = flags.len();
        self.words.clear();
        self.words.extend(flags.chunks(WORD_BITS).map(|chunk| {
            let mut word = 0u64;
            for (bit, &flag) in chunk.iter().enumerate() {
                word |= (flag as u64) << bit;
            }
            word
        }));
    }

    /// Number of addressable slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set covers zero slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of storage words backing the set.
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Storage word `w` (slots `w * 64 .. (w + 1) * 64`).
    #[inline]
    pub fn word(&self, w: usize) -> u64 {
        self.words[w]
    }

    /// Marks slot `i` present. Returns the containing word index so callers
    /// can maintain scan hints without recomputing the division.
    #[inline]
    pub fn insert(&mut self, i: usize) -> usize {
        debug_assert!(i < self.len, "slot {i} out of range {}", self.len);
        let w = i / WORD_BITS;
        self.words[w] |= 1u64 << (i % WORD_BITS);
        w
    }

    /// Marks slot `i` absent.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len, "slot {i} out of range {}", self.len);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Marks the adjacent slot pair `{even, even + 1}` absent in one
    /// masked write. `even` must be even, so the pair shares a word —
    /// the single-RMW clear behind interleaved two-bits-per-item layouts.
    #[inline]
    pub fn remove_pair(&mut self, even: usize) {
        debug_assert!(even.is_multiple_of(2), "pair base {even} must be even");
        debug_assert!(even + 1 < self.len, "pair {even} out of range {}", self.len);
        self.words[even / WORD_BITS] &= !(3u64 << (even % WORD_BITS));
    }

    /// Whether slot `i` is present.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Number of present slots (popcount over all words).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The highest present slot, if any (top-down word scan +
    /// `leading_zeros`).
    pub fn highest(&self) -> Option<usize> {
        for (w, &word) in self.words.iter().enumerate().rev() {
            if word != 0 {
                let bit = WORD_BITS - 1 - word.leading_zeros() as usize;
                return Some(w * WORD_BITS + bit);
            }
        }
        None
    }

    /// Ascending iterator over present slots: word scan +
    /// `trailing_zeros`, clearing the lowest set bit each step.
    pub fn ones(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Ascending iterator over an [`EdgeBitSet`]'s present slots.
#[derive(Debug, Clone)]
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * WORD_BITS + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut set = EdgeBitSet::new();
        set.reset(200);
        assert_eq!(set.count(), 0);
        for i in [0usize, 63, 64, 127, 199] {
            assert!(!set.contains(i));
            set.insert(i);
            assert!(set.contains(i));
        }
        assert_eq!(set.count(), 5);
        set.remove(64);
        assert!(!set.contains(64));
        assert_eq!(set.ones().collect::<Vec<_>>(), vec![0, 63, 127, 199]);
        assert_eq!(set.highest(), Some(199));
    }

    #[test]
    fn reset_full_masks_the_tail_word() {
        let mut set = EdgeBitSet::new();
        for len in [0usize, 1, 63, 64, 65, 128, 130] {
            set.reset_full(len);
            assert_eq!(set.count(), len, "len {len}");
            assert_eq!(set.ones().count(), len, "len {len}");
            if len > 0 {
                assert_eq!(set.highest(), Some(len - 1));
            } else {
                assert_eq!(set.highest(), None);
            }
        }
    }

    #[test]
    fn reset_from_bools_matches_flags() {
        let flags: Vec<bool> = (0..150).map(|i| i % 3 == 0).collect();
        let mut set = EdgeBitSet::new();
        set.reset_from_bools(&flags);
        assert_eq!(set.len(), flags.len());
        for (i, &f) in flags.iter().enumerate() {
            assert_eq!(set.contains(i), f, "slot {i}");
        }
        let expected: Vec<usize> = (0..150).filter(|i| i % 3 == 0).collect();
        assert_eq!(set.ones().collect::<Vec<_>>(), expected);
    }

    #[test]
    fn reset_reuses_capacity() {
        let mut set = EdgeBitSet::new();
        set.reset(1024);
        let ptr = set.words.as_ptr();
        set.reset(512);
        assert_eq!(set.words.as_ptr(), ptr, "shrinking reset must not realloc");
        set.reset_full(1000);
        assert_eq!(set.words.as_ptr(), ptr, "full reset must not realloc");
        set.reset_from_bools(&[true; 900]);
        assert_eq!(set.words.as_ptr(), ptr, "bool reset must not realloc");
        assert_eq!(set.count(), 900);
    }

    #[test]
    fn empty_set_iterates_nothing() {
        let set = EdgeBitSet::new();
        assert!(set.is_empty());
        assert_eq!(set.ones().next(), None);
        assert_eq!(set.highest(), None);
        assert_eq!(set.count(), 0);
    }
}
