//! The reduction engine: rules #1 and #2, maximal (greedy) reduction and the
//! feasibility test (§4.2).

use crate::graph::{Edge, EdgeColor, EdgeId, SequencingGraph};
use crate::obs;
use crate::trace::{ReductionStep, ReductionTrace, Rule};
use crate::CoreError;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;
use std::fmt;

/// A worklist entry: an edge that *may* currently be removable under one of
/// the two rules.
///
/// The derived ordering — edge id first, then `rule1` (`true` sorts above
/// `false`) — makes a max-[`BinaryHeap`] pop candidates in exactly the order
/// the deterministic strategy wants: largest edge id, rule #1 preferred on
/// ties. Entries are *lazily invalidated*: conditions are re-checked at pop
/// time, stale entries are discarded, and `via_clause2` is recomputed fresh
/// so the recorded step never reflects out-of-date pre-emption state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Candidate {
    pub(crate) edge: EdgeId,
    pub(crate) rule1: bool,
}

/// A reduction move: a live edge together with the rule that sanctions its
/// removal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Move {
    /// The edge to remove.
    pub edge: EdgeId,
    /// The sanctioning rule.
    pub rule: Rule,
    /// Whether rule #1 applies via clause 2 (direct-trust waiver) only.
    pub via_clause2: bool,
}

/// The order in which applicable moves are chosen.
///
/// The paper proves (and our property tests confirm) that the feasibility
/// verdict is *confluent* — independent of the reduction order — so the
/// strategy only affects the shape of the recovered execution sequence, not
/// whether one exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Strategy {
    /// Always apply the applicable move with the *largest* edge id,
    /// preferring rule #1 on ties. With deals declared retail-first (as in
    /// the [fixtures](crate::fixtures)), this works inward from the
    /// supplier-side fringe exactly like the paper's worked reductions in
    /// §4.2.2, so the recovered execution sequence matches §5 step for
    /// step.
    #[default]
    Deterministic,
    /// Shuffle the applicable moves with a seeded RNG at every step. Used to
    /// test confluence.
    Randomized {
        /// RNG seed.
        seed: u64,
    },
}

/// The outcome of a maximal reduction.
///
/// The `Default` value is an empty, vacuously infeasible outcome — its only
/// purpose is to seed a reusable output slot for
/// [`ScratchReducer::run_into`](crate::ScratchReducer::run_into).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReductionOutcome {
    /// Whether the graph reduced to zero edges — the feasibility test of
    /// §4.2.4.
    pub feasible: bool,
    /// The rule applications performed.
    pub trace: ReductionTrace,
    /// Edges still live when no rule applied (empty iff `feasible`).
    pub remaining_edges: Vec<EdgeId>,
}

impl fmt::Display for ReductionOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.feasible {
            write!(f, "feasible after {} reductions", self.trace.len())
        } else {
            write!(
                f,
                "infeasible: {} edges remain after {} reductions",
                self.remaining_edges.len(),
                self.trace.len()
            )
        }
    }
}

/// Applies reduction rules to a [`SequencingGraph`] until no more apply.
///
/// ```
/// use trustseq_core::{fixtures, Reducer, SequencingGraph};
///
/// # fn main() -> Result<(), trustseq_core::CoreError> {
/// let (spec, _) = fixtures::example1();
/// let graph = SequencingGraph::from_spec(&spec)?;
/// let outcome = Reducer::new(graph).run();
/// assert!(outcome.feasible);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Reducer {
    graph: SequencingGraph,
    strategy: Strategy,
}

impl Reducer {
    /// Creates a reducer with the default deterministic strategy.
    pub fn new(graph: SequencingGraph) -> Self {
        Reducer {
            graph,
            strategy: Strategy::Deterministic,
        }
    }

    /// Selects the move-ordering strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Read access to the (possibly partially reduced) graph.
    pub fn graph(&self) -> &SequencingGraph {
        &self.graph
    }

    /// All currently applicable moves.
    ///
    /// Rule #1 applies to an edge `(c, j)` when `c` has no other live edge
    /// and either no *other* live red edge is incident to `j` (clause 1) or
    /// `c` carries the direct-trust waiver (clause 2). Rule #2 applies when
    /// `j` has no other live edge.
    pub fn applicable_moves(&self) -> Vec<Move> {
        let g = &self.graph;
        let mut moves = Vec::new();
        for e in g.live_edges() {
            // Rule #1: fringe commitment.
            if g.commitment_degree(e.commitment) == 1 {
                let preempted = g.preempted_by_red(e.conjunction, e.id);
                let waiver = g.commitment(e.commitment).clause2_waiver;
                if !preempted || waiver {
                    moves.push(Move {
                        edge: e.id,
                        rule: Rule::CommitmentFringe,
                        via_clause2: preempted && waiver,
                    });
                }
            }
            // Rule #2: fringe conjunction.
            if g.conjunction_degree(e.conjunction) == 1 {
                moves.push(Move {
                    edge: e.id,
                    rule: Rule::ConjunctionFringe,
                    via_clause2: false,
                });
            }
        }
        moves
    }

    /// Applies one move, recording what it disconnected.
    ///
    /// # Errors
    ///
    /// [`CoreError::RuleNotApplicable`] if the move's preconditions do not
    /// hold, [`CoreError::InvalidMove`] if the edge is dead.
    pub fn apply(&mut self, mv: Move) -> Result<ReductionStep, CoreError> {
        let g = &self.graph;
        if !g.is_live(mv.edge) {
            return Err(CoreError::InvalidMove(mv.edge));
        }
        let edge = *g.edge(mv.edge);
        match mv.rule {
            Rule::CommitmentFringe => {
                if g.commitment_degree(edge.commitment) != 1 {
                    return Err(CoreError::RuleNotApplicable {
                        edge: mv.edge,
                        reason: "commitment is not on the fringe",
                    });
                }
                let preempted = g.preempted_by_red(edge.conjunction, edge.id);
                let waiver = g.commitment(edge.commitment).clause2_waiver;
                if preempted && !waiver {
                    return Err(CoreError::RuleNotApplicable {
                        edge: mv.edge,
                        reason: "pre-empted by a red edge",
                    });
                }
            }
            Rule::ConjunctionFringe => {
                if g.conjunction_degree(edge.conjunction) != 1 {
                    return Err(CoreError::RuleNotApplicable {
                        edge: mv.edge,
                        reason: "conjunction is not on the fringe",
                    });
                }
            }
        }
        self.graph.remove_edge(mv.edge)?;
        let step = ReductionStep {
            edge: mv.edge,
            rule: mv.rule,
            via_clause2: mv.via_clause2,
            disconnected_commitment: (self.graph.commitment_degree(edge.commitment) == 0)
                .then_some(edge.commitment),
            disconnected_conjunction: (self.graph.conjunction_degree(edge.conjunction) == 0)
                .then_some(edge.conjunction),
        };
        Ok(step)
    }

    /// Re-checks a popped worklist entry against the *current* graph,
    /// returning the move it stands for if it is still applicable.
    ///
    /// `via_clause2` is recomputed here rather than stored in the entry, so a
    /// step recorded after pre-emption state changed still reports the clause
    /// that actually sanctioned it.
    fn revalidate(&self, cand: Candidate) -> Option<Move> {
        let g = &self.graph;
        if !g.is_live(cand.edge) {
            return None;
        }
        let e = g.edge(cand.edge);
        if cand.rule1 {
            if g.commitment_degree(e.commitment) != 1 {
                return None;
            }
            let preempted = g.preempted_by_red(e.conjunction, e.id);
            let waiver = g.commitment(e.commitment).clause2_waiver;
            if preempted && !waiver {
                return None;
            }
            Some(Move {
                edge: e.id,
                rule: Rule::CommitmentFringe,
                via_clause2: preempted && waiver,
            })
        } else {
            if g.conjunction_degree(e.conjunction) != 1 {
                return None;
            }
            Some(Move {
                edge: e.id,
                rule: Rule::ConjunctionFringe,
                via_clause2: false,
            })
        }
    }

    /// Pushes every move that removing `removed` can newly enable.
    ///
    /// Removing edge `(c, j)` can only change applicability in the affected
    /// neighbourhood, via three monotone events:
    ///
    /// (a) `c`'s degree dropped to 1 — its surviving edge becomes a rule #1
    ///     candidate;
    /// (b) `j`'s degree dropped to 1 — its surviving edge becomes a rule #2
    ///     candidate;
    /// (c) `removed` was red — pre-emption at `j` may have lifted, so every
    ///     live edge at `j` whose commitment is on the fringe becomes a
    ///     rule #1 candidate.
    ///
    /// Degrees never grow and red edges never reappear during a run, so once
    /// applicable a move stays applicable until its edge is removed; pushing
    /// at each enabling event therefore keeps the heap a superset of the
    /// applicable set, which is the invariant the driver relies on.
    fn push_unlocked(&self, removed: Edge, heap: &mut BinaryHeap<Candidate>) {
        let g = &self.graph;
        if g.commitment_degree(removed.commitment) == 1 {
            let survivor = g
                .live_edges_of_commitment(removed.commitment)
                .next()
                .expect("degree 1 means one live edge");
            heap.push(Candidate {
                edge: survivor.id,
                rule1: true,
            });
        }
        if g.conjunction_degree(removed.conjunction) == 1 {
            let survivor = g
                .live_edges_of_conjunction(removed.conjunction)
                .next()
                .expect("degree 1 means one live edge");
            heap.push(Candidate {
                edge: survivor.id,
                rule1: false,
            });
        }
        if removed.color == EdgeColor::Red {
            for e in g.live_edges_of_conjunction(removed.conjunction) {
                if g.commitment_degree(e.commitment) == 1 {
                    heap.push(Candidate {
                        edge: e.id,
                        rule1: true,
                    });
                }
            }
        }
    }

    /// The single reduction driver behind [`Reducer::run`] and
    /// [`Reducer::run_keeping_graph`].
    ///
    /// The deterministic strategy runs the incremental worklist: the heap is
    /// seeded with the currently applicable moves, and after each removal
    /// only the removed edge's endpoints are re-examined
    /// ([`Self::push_unlocked`]), so each step costs O(affected
    /// neighbourhood · log worklist) instead of a full edge rescan. The
    /// randomized strategy keeps the rescan loop, because it must sample
    /// uniformly from the *whole* applicable set at every step.
    fn drive(mut self) -> (ReductionOutcome, SequencingGraph) {
        let mut trace = ReductionTrace::new();
        // Worklist-depth tracking only runs with a recorder installed, so
        // the default path is byte-for-byte the uninstrumented loop.
        let track = obs::enabled();
        let mut worklist_peak = 0usize;
        match self.strategy {
            Strategy::Deterministic => {
                let mut heap: BinaryHeap<Candidate> = self
                    .applicable_moves()
                    .into_iter()
                    .map(|m| Candidate {
                        edge: m.edge,
                        rule1: m.rule == Rule::CommitmentFringe,
                    })
                    .collect();
                if track {
                    worklist_peak = heap.len();
                }
                while let Some(cand) = heap.pop() {
                    let Some(mv) = self.revalidate(cand) else {
                        continue;
                    };
                    let removed = *self.graph.edge(mv.edge);
                    let step = self.apply(mv).expect("revalidated move must apply");
                    trace.push(step);
                    self.push_unlocked(removed, &mut heap);
                    if track {
                        worklist_peak = worklist_peak.max(heap.len());
                    }
                }
            }
            Strategy::Randomized { seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                loop {
                    let mut moves = self.applicable_moves();
                    if moves.is_empty() {
                        break;
                    }
                    if track {
                        worklist_peak = worklist_peak.max(moves.len());
                    }
                    moves.shuffle(&mut rng);
                    let step = self.apply(moves[0]).expect("applicable move must apply");
                    trace.push(step);
                }
            }
        }
        let remaining_edges: Vec<EdgeId> = self.graph.live_edges().map(|e| e.id).collect();
        let outcome = ReductionOutcome {
            feasible: remaining_edges.is_empty(),
            trace,
            remaining_edges,
        };
        if track {
            record_reduction_metrics(&outcome, worklist_peak);
        }
        (outcome, self.graph)
    }

    /// Runs the reduction to a fixpoint and reports the outcome.
    pub fn run(self) -> ReductionOutcome {
        self.drive().0
    }

    /// Runs the reduction and returns the reduced graph alongside the
    /// outcome (useful for inspecting the impasse of an infeasible
    /// exchange).
    pub fn run_keeping_graph(self) -> (ReductionOutcome, SequencingGraph) {
        self.drive()
    }

    /// Reference engine: rescans the whole edge set for applicable moves at
    /// every step, exactly like the pre-worklist implementation.
    ///
    /// O(edges) per step, so O(edges²) per run — kept as the oracle the
    /// property tests and the `reduce_random` benchmarks compare the
    /// incremental engine against.
    pub fn run_naive(mut self) -> ReductionOutcome {
        let mut trace = ReductionTrace::new();
        let mut rng = match self.strategy {
            Strategy::Randomized { seed } => Some(StdRng::seed_from_u64(seed)),
            Strategy::Deterministic => None,
        };
        loop {
            let mut moves = self.applicable_moves();
            if moves.is_empty() {
                break;
            }
            let mv = match &mut rng {
                Some(rng) => {
                    moves.shuffle(rng);
                    moves[0]
                }
                None => {
                    // Largest edge id, rule #1 preferred on ties.
                    moves.sort_by_key(|m| {
                        (std::cmp::Reverse(m.edge), m.rule != Rule::CommitmentFringe)
                    });
                    moves[0]
                }
            };
            let step = self.apply(mv).expect("applicable move must apply");
            trace.push(step);
        }
        let remaining_edges: Vec<EdgeId> = self.graph.live_edges().map(|e| e.id).collect();
        ReductionOutcome {
            feasible: remaining_edges.is_empty(),
            trace,
            remaining_edges,
        }
    }
}

/// Reports one finished reduction to the installed [`obs`] recorder:
/// run/removal counters, the rule #1 vs rule #2 split, and the peak
/// worklist (or applicable-set) depth the driver tracked. Callers gate on
/// [`obs::enabled`] first — this is never reached on the disabled path.
pub(crate) fn record_reduction_metrics(out: &ReductionOutcome, worklist_peak: usize) {
    let rule1 = out
        .trace
        .steps()
        .iter()
        .filter(|s| s.rule == Rule::CommitmentFringe)
        .count() as u64;
    let rule2 = out.trace.len() as u64 - rule1;
    obs::with(|r| {
        r.counter("reduce.runs", 1);
        r.counter("reduce.removals", out.trace.len() as u64);
        r.counter("reduce.rule1", rule1);
        r.counter("reduce.rule2", rule2);
        r.observe("reduce.worklist_peak", worklist_peak as u64);
    });
}

/// Convenience: builds the sequencing graph of `spec`, reduces it
/// deterministically, and reports the outcome.
///
/// # Errors
///
/// Propagates graph-construction errors.
pub fn analyze(spec: &trustseq_model::ExchangeSpec) -> Result<ReductionOutcome, CoreError> {
    let graph = SequencingGraph::from_spec(spec)?;
    Ok(Reducer::new(graph).run())
}

/// Like [`analyze`], but with explicit [`BuildOptions`](crate::BuildOptions)
/// (e.g. the §9 shared-escrow delegation extension).
///
/// # Errors
///
/// Propagates graph-construction errors.
pub fn analyze_with(
    spec: &trustseq_model::ExchangeSpec,
    options: crate::BuildOptions,
) -> Result<ReductionOutcome, CoreError> {
    let graph = SequencingGraph::from_spec_with(spec, options)?;
    Ok(Reducer::new(graph).run())
}

/// Memoized [`analyze`]: with a cache, structurally repeated specs cost a
/// canonicalization plus a hash lookup instead of a reduction. `None`
/// degrades to plain [`analyze`].
///
/// # Errors
///
/// Propagates graph-construction errors.
pub fn analyze_cached(
    spec: &trustseq_model::ExchangeSpec,
    cache: Option<&crate::AnalysisCache>,
) -> Result<ReductionOutcome, CoreError> {
    match cache {
        Some(cache) => cache.analyze(spec),
        None => analyze(spec),
    }
}

/// Analyzes many specs at once, fanning the reductions across the
/// persistent [`pool`](crate::pool) workers.
///
/// Results are returned in input order, one per spec, each carrying its own
/// graph-construction errors. The fan-out width is
/// [`pool::size`](crate::pool::size) capped at the batch size, so small
/// batches don't over-fan and a single spec degenerates to the serial
/// path; the pool threads are spawned once per process, not per call.
pub fn analyze_batch(
    specs: &[trustseq_model::ExchangeSpec],
) -> Vec<Result<ReductionOutcome, CoreError>> {
    analyze_batch_cached(specs, None)
}

/// [`analyze_batch`] with an optional shared [`AnalysisCache`](crate::AnalysisCache).
///
/// Work distribution follows the process-wide default
/// [`pool::batch_mode`](crate::pool::batch_mode): atomic-counter stealing
/// (one structurally hard spec — or a chunk of cache misses next to a
/// chunk of hits — cannot leave the other workers idle) or contiguous
/// shard affinity (no shared counter, prefetch-friendly corpus slices).
/// Results are byte-identical either way.
pub fn analyze_batch_cached(
    specs: &[trustseq_model::ExchangeSpec],
    cache: Option<&crate::AnalysisCache>,
) -> Vec<Result<ReductionOutcome, CoreError>> {
    let workers = crate::pool::size().min(specs.len());
    analyze_batch_with(specs, cache, workers, crate::pool::batch_mode())
}

/// The fully explicit batch entry point: analyze `specs` with `workers`
/// worker indices under `mode`, optionally through a shared cache.
///
/// The result vector is in input order and independent of both `workers`
/// and `mode` — the property tests in `tests/bitset_equivalence.rs` hold
/// sharded and stealing runs byte-identical. Exposed so sweep drivers and
/// benchmarks can pin the distribution strategy per call regardless of
/// the global default.
pub fn analyze_batch_with(
    specs: &[trustseq_model::ExchangeSpec],
    cache: Option<&crate::AnalysisCache>,
    workers: usize,
    mode: crate::pool::BatchMode,
) -> Vec<Result<ReductionOutcome, CoreError>> {
    /// One result slot, filled exactly once by whichever worker owns it.
    type BatchSlot = Option<Result<ReductionOutcome, CoreError>>;
    let workers = workers.min(specs.len());
    // Each worker analyzes through its own reusable scratchpad: the graph
    // build still allocates per spec, but the reduction itself reuses the
    // worker's bitset and counter buffers for the whole batch.
    let analyze_one = |scratch: &mut crate::ScratchReducer,
                       spec: &trustseq_model::ExchangeSpec|
     -> Result<ReductionOutcome, CoreError> {
        match cache {
            Some(cache) => cache.analyze(spec),
            None => {
                let graph = SequencingGraph::from_spec(spec)?;
                Ok(scratch.run(&graph, Strategy::Deterministic))
            }
        }
    };
    if workers <= 1 {
        let mut scratch = crate::ScratchReducer::new();
        return specs.iter().map(|s| analyze_one(&mut scratch, s)).collect();
    }
    match mode {
        crate::pool::BatchMode::Stealing => {
            let next = std::sync::atomic::AtomicUsize::new(0);
            let mut results: Vec<BatchSlot> = Vec::new();
            results.resize_with(specs.len(), || None);
            let worker = |_worker_index: usize| {
                let mut scratch = crate::ScratchReducer::new();
                let mut done: Vec<(usize, Result<ReductionOutcome, CoreError>)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(spec) = specs.get(i) else { break };
                    done.push((i, analyze_one(&mut scratch, spec)));
                }
                done
            };
            for (i, result) in crate::pool::broadcast_collect(workers, &worker) {
                results[i] = Some(result);
            }
            results
                .into_iter()
                .map(|r| r.expect("the shared counter covers every slot exactly once"))
                .collect()
        }
        crate::pool::BatchMode::Sharded => {
            // Each worker owns one contiguous shard and writes results
            // straight into its slice — no shared counter, no index
            // reshuffle on collection.
            let mut results: Vec<BatchSlot> = Vec::new();
            results.resize_with(specs.len(), || None);
            let slots: Vec<std::sync::Mutex<&mut [BatchSlot]>> = {
                let mut rest = results.as_mut_slice();
                (0..workers)
                    .map(|i| {
                        let range = crate::pool::shard_range(specs.len(), workers, i);
                        let (shard, tail) = std::mem::take(&mut rest).split_at_mut(range.len());
                        rest = tail;
                        std::sync::Mutex::new(shard)
                    })
                    .collect()
            };
            crate::pool::broadcast_sharded(workers, specs.len(), &|i, shard| {
                let mut scratch = crate::ScratchReducer::new();
                let mut out = slots[i].lock().unwrap_or_else(|e| e.into_inner());
                for (slot, spec) in out.iter_mut().zip(&specs[shard]) {
                    *slot = Some(analyze_one(&mut scratch, spec));
                }
            });
            drop(slots);
            results
                .into_iter()
                .map(|r| r.expect("the shard ranges tile every slot exactly once"))
                .collect()
        }
    }
}

/// The per-sample verdicts of an empirical confluence check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfluenceReport {
    /// The deterministic strategy's feasibility verdict.
    pub reference_feasible: bool,
    /// How many randomized orders were sampled.
    pub samples: u64,
    /// How many of them agreed with the reference verdict.
    pub agreeing: u64,
    /// The seeds whose verdict disagreed (empty iff confluent on this
    /// sample).
    pub disagreeing_seeds: Vec<u64>,
}

impl ConfluenceReport {
    /// Whether every sampled order agreed with the deterministic verdict.
    pub fn unanimous(&self) -> bool {
        self.disagreeing_seeds.is_empty()
    }
}

impl fmt::Display for ConfluenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} randomized orders agree with the {} reference",
            self.agreeing,
            self.samples,
            if self.reference_feasible {
                "feasible"
            } else {
                "infeasible"
            }
        )?;
        if !self.unanimous() {
            write!(f, " (disagreeing seeds: {:?})", self.disagreeing_seeds)?;
        }
        Ok(())
    }
}

/// Reduces a graph in place and rewinds it: the trace records exactly the
/// removed edges, so restoring them returns the graph (and its cached
/// counters) to the pre-run state without cloning.
///
/// Production paths now run repeated reductions through a
/// [`ScratchReducer`](crate::ScratchReducer) on an immutable graph; this
/// survives as the regression harness for
/// [`restore_edge`](SequencingGraph::restore_edge)'s counter maintenance.
#[cfg(test)]
pub(crate) fn run_and_rewind(graph: &mut SequencingGraph, strategy: Strategy) -> ReductionOutcome {
    let owned = std::mem::replace(
        graph,
        SequencingGraph::from_parts(Vec::new(), Vec::new(), Vec::new()),
    );
    let (outcome, mut reduced) = Reducer::new(owned)
        .with_strategy(strategy)
        .run_keeping_graph();
    for step in outcome.trace.steps() {
        reduced.restore_edge(step.edge);
    }
    *graph = reduced;
    outcome
}

/// Checks confluence empirically: reduces `spec`'s graph under `samples`
/// random orders plus the deterministic order and reports the per-sample
/// verdicts.
///
/// The graph is built once and never mutated: every sample runs through a
/// reusable [`ScratchReducer`](crate::ScratchReducer), so the per-sample
/// cost is the reduction itself with no per-sample allocation, cloning or
/// rewinding. The sampled verdicts are byte-identical to the former
/// rewind-based loop (the scratch engine reproduces [`Reducer`]'s traces
/// exactly).
///
/// # Errors
///
/// Propagates graph-construction errors.
pub fn confluence_check(
    spec: &trustseq_model::ExchangeSpec,
    samples: u64,
) -> Result<ConfluenceReport, CoreError> {
    let graph = SequencingGraph::from_spec(spec)?;
    Ok(confluence_check_graph(&graph, samples))
}

/// [`confluence_check`] over an already-built graph.
pub(crate) fn confluence_check_graph(graph: &SequencingGraph, samples: u64) -> ConfluenceReport {
    let mut scratch = crate::ScratchReducer::new();
    let mut out = ReductionOutcome::default();
    scratch.run_into(graph, Strategy::Deterministic, &mut out);
    let reference_feasible = out.feasible;
    let mut agreeing = 0;
    let mut disagreeing_seeds = Vec::new();
    for seed in 0..samples {
        scratch.run_into(graph, Strategy::Randomized { seed }, &mut out);
        if out.feasible == reference_feasible {
            agreeing += 1;
        } else {
            disagreeing_seeds.push(seed);
        }
    }
    ConfluenceReport {
        reference_feasible,
        samples,
        agreeing,
        disagreeing_seeds,
    }
}

/// [`confluence_check`] with a memoized validation record: the randomized
/// samples are an experiment on a *structure*, so they run once per
/// structure — on its canonical graph — and every isomorphic query reuses
/// (or extends) the interned record instead of repeating the identical
/// experiment. A fresh structure still pays the reference reduction plus
/// all `samples` randomized reductions.
///
/// The cached report agrees with [`confluence_check`]'s for the same spec
/// whenever the reduction is confluent (the §4.2 theorem, upheld by every
/// test in this crate): both then report `samples` agreeing orders and no
/// disagreeing seeds. Seed `k` indexes an order of the canonical graph
/// here rather than of the query labelling, so in the (theorem-violating)
/// event of a disagreement the two reports could name different seeds.
///
/// # Errors
///
/// Propagates graph-construction errors.
pub fn confluence_check_cached(
    spec: &trustseq_model::ExchangeSpec,
    samples: u64,
    cache: Option<&crate::AnalysisCache>,
) -> Result<ConfluenceReport, CoreError> {
    let Some(cache) = cache else {
        return confluence_check(spec, samples);
    };
    let graph = SequencingGraph::from_spec(spec)?;
    Ok(cache.confluence(&graph, samples))
}

/// Runs [`confluence_check_cached`] over a whole corpus, fanning the
/// per-spec experiments across the persistent [`pool`](crate::pool)
/// workers under the process-wide
/// [`batch_mode`](crate::pool::batch_mode). Results are returned in input
/// order and are independent of worker count and batch mode (each
/// per-spec experiment is deterministic in its seeds).
pub fn confluence_sweep(
    specs: &[trustseq_model::ExchangeSpec],
    samples: u64,
    cache: Option<&crate::AnalysisCache>,
) -> Vec<Result<ConfluenceReport, CoreError>> {
    let workers = crate::pool::size().min(specs.len());
    let check = |spec: &trustseq_model::ExchangeSpec| confluence_check_cached(spec, samples, cache);
    if workers <= 1 {
        return specs.iter().map(check).collect();
    }
    let results: Vec<std::sync::Mutex<Option<Result<ConfluenceReport, CoreError>>>> =
        specs.iter().map(|_| std::sync::Mutex::new(None)).collect();
    match crate::pool::batch_mode() {
        crate::pool::BatchMode::Stealing => {
            let next = std::sync::atomic::AtomicUsize::new(0);
            crate::pool::broadcast(workers, &|_index| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(spec) = specs.get(i) else { break };
                *results[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(check(spec));
            });
        }
        crate::pool::BatchMode::Sharded => {
            crate::pool::broadcast_sharded(workers, specs.len(), &|_index, shard| {
                for i in shard {
                    *results[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(check(&specs[i]));
                }
            });
        }
    }
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every corpus slot was claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::graph::EdgeColor;
    use trustseq_model::Money;

    #[test]
    fn example1_is_feasible() {
        let (spec, _) = fixtures::example1();
        let outcome = analyze(&spec).unwrap();
        assert!(outcome.feasible);
        // Six edges, six rule applications (Figure 3's circled numbers).
        assert_eq!(outcome.trace.len(), 6);
        assert!(outcome.remaining_edges.is_empty());
    }

    #[test]
    fn example1_commit_order_matches_paper() {
        // §4.2.2: the commit points are reached in the order
        // (t2↔producer), (consumer↔t1), (t1↔broker) [red], (broker↔t2).
        let (spec, ids) = fixtures::example1();
        let g = SequencingGraph::from_spec(&spec).unwrap();
        let outcome = Reducer::new(g.clone()).run();
        let order: Vec<_> = outcome
            .trace
            .commitment_order()
            .map(|c| {
                let c = g.commitment(c);
                (c.principal, c.trusted)
            })
            .collect();
        assert_eq!(
            order,
            vec![
                (ids.producer, ids.t2),
                (ids.consumer, ids.t1),
                (ids.broker, ids.t1), // the red (sale-side) commitment
                (ids.broker, ids.t2),
            ]
        );
    }

    #[test]
    fn example2_is_infeasible_with_paper_impasse() {
        let (spec, ids) = fixtures::example2();
        let g = SequencingGraph::from_spec(&spec).unwrap();
        let (outcome, reduced) = Reducer::new(g).run_keeping_graph();
        assert!(!outcome.feasible);
        // §4.2.2: exactly four edges can be removed before the impasse.
        assert_eq!(outcome.trace.len(), 4);
        assert_eq!(outcome.remaining_edges.len(), 10);
        // The source-side commitments are committed; nothing else.
        let committed: Vec<_> = outcome.trace.commitment_order().collect();
        assert_eq!(committed.len(), 2);
        for c in committed {
            let c = reduced.commitment(c);
            assert!(c.principal == ids.source1 || c.principal == ids.source2);
        }
    }

    #[test]
    fn direct_trust_variant1_feasible() {
        // §4.2.3 variant 1: source1 trusts broker1 → broker1 plays t2's
        // role → the whole exchange becomes feasible (domino effect).
        let (mut spec, ids) = fixtures::example2();
        spec.add_trust(ids.source1, ids.broker1).unwrap();
        let outcome = analyze(&spec).unwrap();
        assert!(outcome.feasible);
        // Clause 2 must actually have fired somewhere.
        assert!(outcome.trace.steps().iter().any(|s| s.via_clause2));
    }

    #[test]
    fn direct_trust_variant2_still_infeasible() {
        // §4.2.3 variant 2: broker1 trusts source1 → source1 plays t2's
        // role — the impasse remains.
        let (mut spec, ids) = fixtures::example2();
        spec.add_trust(ids.broker1, ids.source1).unwrap();
        let outcome = analyze(&spec).unwrap();
        assert!(!outcome.feasible);
        assert_eq!(outcome.trace.len(), 4);
    }

    #[test]
    fn poor_broker_infeasible_with_reds_remaining() {
        let (spec, ids) = fixtures::poor_broker();
        let g = SequencingGraph::from_spec(&spec).unwrap();
        let (outcome, reduced) = Reducer::new(g).run_keeping_graph();
        assert!(!outcome.feasible);
        // Both red edges at ∧B must survive: neither can be removed.
        let broker_j = reduced.conjunction_of(ids.broker).unwrap();
        let live_reds = reduced
            .live_edges_of_conjunction(broker_j)
            .filter(|e| e.color == EdgeColor::Red)
            .count();
        assert_eq!(live_reds, 2);
    }

    #[test]
    fn indemnity_makes_example2_feasible() {
        let (mut spec, ids) = fixtures::example2();
        // §6: broker 1 indemnifies the consumer with the price of doc 2.
        spec.add_indemnity(ids.broker1, ids.sale1, Money::from_dollars(20))
            .unwrap();
        let outcome = analyze(&spec).unwrap();
        assert!(outcome.feasible);
    }

    #[test]
    fn confluence_on_paper_examples() {
        for (spec, feasible) in [
            (fixtures::example1().0, true),
            (fixtures::example2().0, false),
            (fixtures::poor_broker().0, false),
            (fixtures::figure7().0, false),
        ] {
            let report = confluence_check(&spec, 25).unwrap();
            assert!(report.unanimous(), "{}: {report}", spec.name());
            assert_eq!(report.samples, 25);
            assert_eq!(report.agreeing, 25);
            assert_eq!(report.reference_feasible, feasible, "{}", spec.name());
            assert_eq!(
                analyze(&spec).unwrap().feasible,
                feasible,
                "{}",
                spec.name()
            );
        }
    }

    #[test]
    fn confluence_rewind_leaves_graph_intact() {
        let (spec, _) = fixtures::example1();
        let mut graph = SequencingGraph::from_spec(&spec).unwrap();
        let pristine = graph.clone();
        super::run_and_rewind(&mut graph, Strategy::Deterministic);
        super::run_and_rewind(&mut graph, Strategy::Randomized { seed: 3 });
        assert_eq!(graph, pristine);
    }

    #[test]
    fn worklist_trace_matches_naive_oracle_on_fixtures() {
        for spec in [
            fixtures::example1().0,
            fixtures::example2().0,
            fixtures::poor_broker().0,
            fixtures::figure7().0,
        ] {
            let g = SequencingGraph::from_spec(&spec).unwrap();
            let incremental = Reducer::new(g.clone()).run();
            let naive = Reducer::new(g).run_naive();
            assert_eq!(incremental, naive, "{}", spec.name());
        }
    }

    #[test]
    fn analyze_batch_matches_serial_analyze() {
        let specs: Vec<_> = [
            fixtures::example1().0,
            fixtures::example2().0,
            fixtures::poor_broker().0,
            fixtures::figure7().0,
            fixtures::example1().0,
        ]
        .into_iter()
        .collect();
        let batch = analyze_batch(&specs);
        assert_eq!(batch.len(), specs.len());
        for (spec, result) in specs.iter().zip(&batch) {
            assert_eq!(result.as_ref().unwrap(), &analyze(spec).unwrap());
        }
    }

    #[test]
    fn randomized_strategies_agree_and_traces_cover_all_edges() {
        let (spec, _) = fixtures::example1();
        let g = SequencingGraph::from_spec(&spec).unwrap();
        for seed in 0..10 {
            let outcome = Reducer::new(g.clone())
                .with_strategy(Strategy::Randomized { seed })
                .run();
            assert!(outcome.feasible);
            assert_eq!(outcome.trace.len(), 6);
        }
    }

    #[test]
    fn invalid_moves_are_rejected() {
        let (spec, _) = fixtures::example1();
        let g = SequencingGraph::from_spec(&spec).unwrap();
        let mut reducer = Reducer::new(g);
        let moves = reducer.applicable_moves();
        assert!(!moves.is_empty());
        let mv = moves[0];
        reducer.apply(mv).unwrap();
        // Reapplying the same move fails: the edge is dead.
        assert_eq!(reducer.apply(mv), Err(CoreError::InvalidMove(mv.edge)));
    }

    #[test]
    fn rule_preconditions_enforced() {
        let (spec, ids) = fixtures::example1();
        let g = SequencingGraph::from_spec(&spec).unwrap();
        // The broker's purchase-side edge at ∧B is blocked by the red edge.
        let purchase = g
            .commitment_for(ids.supply, trustseq_model::DealSide::Buyer)
            .unwrap();
        let broker_j = g.conjunction_of(ids.broker).unwrap();
        let blocked = g
            .live_edges_of_commitment(purchase)
            .find(|e| e.conjunction == broker_j)
            .map(|e| e.id)
            .unwrap();
        let mut reducer = Reducer::new(g);
        let err = reducer
            .apply(Move {
                edge: blocked,
                rule: Rule::CommitmentFringe,
                via_clause2: false,
            })
            .unwrap_err();
        assert!(matches!(err, CoreError::RuleNotApplicable { .. }));
    }

    #[test]
    fn outcome_display() {
        let (spec, _) = fixtures::example1();
        assert!(analyze(&spec).unwrap().to_string().contains("feasible"));
        let (spec, _) = fixtures::example2();
        assert!(analyze(&spec).unwrap().to_string().contains("infeasible"));
    }
}
