//! Construction of sequencing graphs from exchange specifications (§4.1).

use crate::graph::{
    Commitment, CommitmentId, Conjunction, ConjunctionId, Edge, EdgeColor, EdgeId, SequencingGraph,
};
use crate::CoreError;
use std::collections::{BTreeMap, BTreeSet};
use trustseq_model::{AgentId, DealId, DealSide, ExchangeSpec};

/// Options controlling sequencing-graph construction.
///
/// The default is strictly paper-faithful (§4.1). Enabling
/// [`delegation`](BuildOptions::delegation) adds the §9 *multi-party
/// trusted agent* extension: a trusted component mediating several of one
/// principal's deals can enforce that principal's constraints itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct BuildOptions {
    /// §9 extension — *delegation to shared escrows*:
    ///
    /// * a resale or funding constraint whose two deals share an
    ///   intermediary is **discharged** (no red edge): the component holds
    ///   the purchase money conditionally and releases it only if the sale
    ///   commits, exactly like the §8 universal intermediary's conditional
    ///   deposits, so the principal's ordering concern disappears;
    /// * a principal whose deals *all* share one intermediary has its
    ///   conjunction **delegated**: the component's own all-or-nothing
    ///   guarantee already enforces the bundle, so the principal's
    ///   conjunction edges are dropped.
    ///
    /// Both moves are safety-preserving because the deposits they free up
    /// are held by the very component that enforces the freed constraint.
    pub delegation: bool,
}

impl BuildOptions {
    /// Strictly paper-faithful construction.
    pub const PAPER: BuildOptions = BuildOptions { delegation: false };

    /// With the §9 multi-party-trusted-agent extension enabled.
    pub const EXTENDED: BuildOptions = BuildOptions { delegation: true };
}

impl SequencingGraph {
    /// Builds the sequencing graph of an exchange specification.
    ///
    /// Mechanically (per §4.1 and §6):
    ///
    /// * one **commitment node** per interaction-graph edge, i.e. per deal
    ///   side `(principal, trusted)`;
    /// * one **conjunction node** per internal node of the interaction graph
    ///   (any agent with more than one incident edge);
    /// * an edge from each commitment to the conjunction of each of its
    ///   endpoints that has one;
    /// * the edge to the principal's conjunction is **red** when a
    ///   [`ResaleConstraint`](trustseq_model::ResaleConstraint) requires that
    ///   sale to be secured first, or when a
    ///   [`FundingConstraint`](trustseq_model::FundingConstraint) defers that
    ///   purchase;
    /// * commitments whose trusted-agent role is played by their own
    ///   principal (direct trust, §4.2.3) carry the rule-#1 clause-2 waiver;
    /// * an [`Indemnity`](trustseq_model::Indemnity) **splits** the
    ///   beneficiary's conjunction: the buyer-side edge of the covered deal
    ///   is simply not created (§6).
    ///
    /// # Errors
    ///
    /// Propagates specification validation errors.
    pub fn from_spec(spec: &ExchangeSpec) -> Result<Self, CoreError> {
        Self::from_spec_with(spec, BuildOptions::PAPER)
    }

    /// Builds the sequencing graph with explicit [`BuildOptions`].
    ///
    /// # Errors
    ///
    /// Propagates specification validation errors.
    pub fn from_spec_with(spec: &ExchangeSpec, options: BuildOptions) -> Result<Self, CoreError> {
        spec.validate()?;
        let interaction = spec.interaction_graph()?;

        // Every deal is mediated entirely within one trusted-link group
        // (bridged deals require both sides linked), so each deal has a
        // well-defined group.
        let deal_group = |d: DealId| -> Option<AgentId> {
            spec.deal(d)
                .ok()
                .map(|d| spec.trusted_group_of(d.intermediary()))
        };

        // Conjunctions: one per internal *principal*, plus one per
        // trusted-link group (linked components enforce their guarantees
        // jointly, §9's hierarchy of trust — for unlinked components the
        // group is the component itself, the paper's base case).
        let mut conjunction_of: BTreeMap<AgentId, ConjunctionId> = BTreeMap::new();
        let mut conjunctions = Vec::new();
        for agent in interaction.internal_nodes() {
            let is_trusted = spec
                .participant(agent)
                .map(|p| p.is_trusted())
                .unwrap_or(false);
            if is_trusted {
                continue; // handled per group below
            }
            let id = ConjunctionId::new(conjunctions.len() as u32);
            conjunctions.push(Conjunction {
                id,
                agent,
                trusted: false,
            });
            conjunction_of.insert(agent, id);
        }
        for ie in interaction.edges() {
            let group = spec.trusted_group_of(ie.trusted);
            conjunction_of.entry(group).or_insert_with(|| {
                let id = ConjunctionId::new(conjunctions.len() as u32);
                conjunctions.push(Conjunction {
                    id,
                    agent: group,
                    trusted: true,
                });
                id
            });
        }

        // Shared-group check used by the §9 delegation extension.
        let same_intermediary = |a: DealId, b: DealId| -> bool {
            match (deal_group(a), deal_group(b)) {
                (Some(ga), Some(gb)) => ga == gb,
                _ => false,
            }
        };

        // Red-edge markers derived from constraints. Under delegation, a
        // constraint whose two deals share an intermediary is discharged:
        // that component enforces the ordering itself.
        let mut red: Vec<(AgentId, DealId, DealSide)> = Vec::new();
        for rc in spec.resale_constraints() {
            if options.delegation && same_intermediary(rc.secure_first, rc.before) {
                continue;
            }
            red.push((rc.principal, rc.secure_first, DealSide::Seller));
        }
        for fc in spec.funding_constraints() {
            if options.delegation && same_intermediary(fc.purchase, fc.funded_by) {
                continue;
            }
            red.push((fc.principal, fc.purchase, DealSide::Buyer));
        }

        // Under delegation, a principal whose deals all share one
        // intermediary delegates its conjunction to that component.
        let mut delegated: BTreeSet<AgentId> = BTreeSet::new();
        if options.delegation {
            for p in spec.principals() {
                let mut groups = spec
                    .deals_of(p.id())
                    .map(|d| spec.trusted_group_of(d.intermediary()));
                if let Some(first) = groups.next() {
                    if spec.deals_of(p.id()).count() > 1 && groups.all(|g| g == first) {
                        delegated.insert(p.id());
                    }
                }
            }
        }

        let indemnified = spec.indemnified_deals();

        // Commitments: one per interaction edge, in interaction order.
        let mut commitments = Vec::with_capacity(interaction.edge_count());
        let mut edges = Vec::new();
        for ie in interaction.edges() {
            let cid = CommitmentId::new(commitments.len() as u32);
            commitments.push(Commitment {
                id: cid,
                principal: ie.principal,
                trusted: ie.trusted,
                deal: ie.deal,
                side: ie.side,
                clause2_waiver: spec.plays_role(ie.trusted, ie.principal),
            });

            // Edge to the principal's conjunction (if it exists), unless the
            // deal is indemnified and this is the buyer side — the indemnity
            // splits the beneficiary's conjunction — or the principal's
            // conjunction is delegated to a shared escrow (§9 extension).
            let split = (ie.side == DealSide::Buyer && indemnified.contains(&ie.deal))
                || delegated.contains(&ie.principal);
            if !split {
                if let Some(&j) = conjunction_of.get(&ie.principal) {
                    let color = if red
                        .iter()
                        .any(|&(p, d, s)| p == ie.principal && d == ie.deal && s == ie.side)
                    {
                        EdgeColor::Red
                    } else {
                        EdgeColor::Black
                    };
                    edges.push(Edge {
                        id: EdgeId::new(edges.len() as u32),
                        commitment: cid,
                        conjunction: j,
                        color,
                    });
                }
            }

            // Edge to the trusted component's group conjunction — always
            // black.
            if let Some(&j) = conjunction_of.get(&spec.trusted_group_of(ie.trusted)) {
                edges.push(Edge {
                    id: EdgeId::new(edges.len() as u32),
                    commitment: cid,
                    conjunction: j,
                    color: EdgeColor::Black,
                });
            }
        }

        Ok(SequencingGraph::from_parts(
            commitments,
            conjunctions,
            edges,
        ))
    }

    /// The conjunction node of `agent`, if it has one.
    pub fn conjunction_of(&self, agent: AgentId) -> Option<ConjunctionId> {
        self.conjunctions()
            .iter()
            .find(|j| j.agent == agent)
            .map(|j| j.id)
    }

    /// The commitment node for `(deal, side)`, if present.
    pub fn commitment_for(&self, deal: DealId, side: DealSide) -> Option<CommitmentId> {
        self.commitments()
            .iter()
            .find(|c| c.deal == deal && c.side == side)
            .map(|c| c.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use trustseq_model::Money;

    #[test]
    fn figure3_shape() {
        // Example #1 (Figure 3): 4 commitments, 3 conjunctions (∧T1, ∧B,
        // ∧T2), 6 edges, exactly one of them red.
        let (spec, _) = fixtures::example1();
        let g = SequencingGraph::from_spec(&spec).unwrap();
        assert_eq!(g.commitments().len(), 4);
        assert_eq!(g.conjunctions().len(), 3);
        assert_eq!(g.initial_edge_count(), 6);
        let reds: Vec<_> = g
            .live_edges()
            .filter(|e| e.color == EdgeColor::Red)
            .collect();
        assert_eq!(reds.len(), 1);
        // The red edge joins the broker's sale-side commitment to ∧B.
        let red = reds[0];
        let c = g.commitment(red.commitment);
        let j = g.conjunction(red.conjunction);
        assert_eq!(c.principal, j.agent);
        assert_eq!(c.side, DealSide::Seller);
        assert!(!j.trusted);
    }

    #[test]
    fn figure4_shape() {
        // Example #2 (Figure 4): 8 commitments; 7 conjunctions (∧C, ∧B1,
        // ∧B2, ∧T1..∧T4); 14 edges (the source-side commitments have only
        // their trusted edge); two red edges (one per broker).
        let (spec, _) = fixtures::example2();
        let g = SequencingGraph::from_spec(&spec).unwrap();
        assert_eq!(g.commitments().len(), 8);
        assert_eq!(g.conjunctions().len(), 7);
        assert_eq!(g.initial_edge_count(), 14);
        assert_eq!(
            g.live_edges().filter(|e| e.color == EdgeColor::Red).count(),
            2
        );
    }

    #[test]
    fn clause2_waiver_set_by_direct_trust() {
        let (mut spec, ids) = fixtures::example1();
        let g = SequencingGraph::from_spec(&spec).unwrap();
        assert!(g.commitments().iter().all(|c| !c.clause2_waiver));

        // Producer trusts the broker → the broker's commitment at t2 gets
        // the waiver.
        spec.add_trust(ids.producer, ids.broker).unwrap();
        let g = SequencingGraph::from_spec(&spec).unwrap();
        let waived: Vec<_> = g
            .commitments()
            .iter()
            .filter(|c| c.clause2_waiver)
            .collect();
        assert_eq!(waived.len(), 1);
        assert_eq!(waived[0].principal, ids.broker);
        assert_eq!(waived[0].trusted, ids.t2);
    }

    #[test]
    fn indemnity_splits_buyer_conjunction() {
        let (mut spec, ids) = fixtures::example2();
        let g = SequencingGraph::from_spec(&spec).unwrap();
        let consumer_j = g.conjunction_of(ids.consumer).unwrap();
        assert_eq!(g.conjunction_degree(consumer_j), 2);

        // Broker 1 indemnifies its sale to the consumer.
        spec.add_indemnity(ids.broker1, ids.sale1, Money::from_dollars(20))
            .unwrap();
        let g = SequencingGraph::from_spec(&spec).unwrap();
        let consumer_j = g.conjunction_of(ids.consumer).unwrap();
        assert_eq!(g.conjunction_degree(consumer_j), 1);
        assert_eq!(g.initial_edge_count(), 13);
    }

    #[test]
    fn funding_constraint_adds_second_red_edge() {
        let (mut spec, ids) = fixtures::example1();
        spec.add_funding_constraint(ids.broker, ids.supply, ids.sale)
            .unwrap();
        let g = SequencingGraph::from_spec(&spec).unwrap();
        let broker_j = g.conjunction_of(ids.broker).unwrap();
        let reds = g
            .live_edges_of_conjunction(broker_j)
            .filter(|e| e.color == EdgeColor::Red)
            .count();
        assert_eq!(reds, 2);
    }

    #[test]
    fn shared_escrow_infeasible_under_paper_rules() {
        // §9: the unextended formalism cannot exploit an agent trusted by
        // more than two parties.
        let (spec, _) = fixtures::example2_shared_escrow();
        let g = SequencingGraph::from_spec(&spec).unwrap();
        assert_eq!(g.conjunctions().len(), 4); // ∧c, ∧b1, ∧b2, ∧escrow
        let outcome = crate::Reducer::new(g).run();
        assert!(!outcome.feasible);
    }

    #[test]
    fn shared_escrow_feasible_with_delegation() {
        let (spec, ids) = fixtures::example2_shared_escrow();
        let g = SequencingGraph::from_spec_with(&spec, BuildOptions::EXTENDED).unwrap();
        // Both red edges discharged; consumer and broker conjunctions
        // delegated to the escrow.
        assert_eq!(
            g.live_edges().filter(|e| e.color == EdgeColor::Red).count(),
            0
        );
        assert!(g
            .conjunction_of(ids.consumer)
            .map(|j| g.conjunction_degree(j) == 0)
            .unwrap_or(true));
        let outcome = crate::Reducer::new(g).run();
        assert!(outcome.feasible);
    }

    #[test]
    fn delegation_changes_nothing_on_paper_examples() {
        // With one deal per trusted component, the extension is inert.
        for spec in [
            fixtures::example1().0,
            fixtures::example2().0,
            fixtures::poor_broker().0,
            fixtures::figure7().0,
        ] {
            let paper = SequencingGraph::from_spec(&spec).unwrap();
            let extended = SequencingGraph::from_spec_with(&spec, BuildOptions::EXTENDED).unwrap();
            assert_eq!(paper, extended, "{}", spec.name());
        }
    }

    #[test]
    fn partial_sharing_is_not_enough() {
        // Only chain 1 shares an escrow (consumer-side and source-side):
        // broker 2's ordering concern remains, so the bundle stays stuck.
        let (mut spec, _) = fixtures::example2_shared_escrow();
        // Rebuild: move chain 2 to dedicated intermediaries.
        let t3 = spec.add_trusted("t3").unwrap();
        let t4 = spec.add_trusted("t4").unwrap();
        let consumer = spec.participant_by_name("consumer").unwrap().id();
        let broker2 = spec.participant_by_name("broker2").unwrap().id();
        let source2 = spec.participant_by_name("source2").unwrap().id();
        let doc3 = spec.add_item("doc3", "Document 3").unwrap();
        let sale3 = spec
            .add_deal(
                broker2,
                consumer,
                t3,
                doc3,
                trustseq_model::Money::from_dollars(5),
            )
            .unwrap();
        let supply3 = spec
            .add_deal(
                source2,
                broker2,
                t4,
                doc3,
                trustseq_model::Money::from_dollars(4),
            )
            .unwrap();
        spec.add_resale_constraint(broker2, sale3, supply3).unwrap();
        let outcome = crate::analyze_with(&spec, BuildOptions::EXTENDED).unwrap();
        assert!(!outcome.feasible);
    }

    #[test]
    fn lookups() {
        let (spec, ids) = fixtures::example1();
        let g = SequencingGraph::from_spec(&spec).unwrap();
        assert!(g.conjunction_of(ids.broker).is_some());
        assert!(g.conjunction_of(ids.consumer).is_none()); // degree 1
        assert!(g.commitment_for(ids.sale, DealSide::Buyer).is_some());
        assert!(g.commitment_for(DealId::new(99), DealSide::Buyer).is_none());
    }
}
