//! Reduction traces: the record of rule applications that execution-sequence
//! recovery (§5) replays.

use crate::graph::{CommitmentId, ConjunctionId, EdgeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which reduction rule was applied (§4.2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rule {
    /// Rule #1: a fringe *commitment* node's edge is removed.
    CommitmentFringe,
    /// Rule #2: a fringe *conjunction* node's edge is removed.
    ConjunctionFringe,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rule::CommitmentFringe => "rule #1",
            Rule::ConjunctionFringe => "rule #2",
        })
    }
}

/// One rule application: which edge was removed, by which rule, and what the
/// removal disconnected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReductionStep {
    /// The removed edge.
    pub edge: EdgeId,
    /// The rule that sanctioned the removal.
    pub rule: Rule,
    /// Whether rule #1 applied through its clause 2 (the principal plays
    /// the trusted-agent role) rather than the no-red-pre-emption clause 1.
    pub via_clause2: bool,
    /// The commitment this removal fully disconnected, if any — in §5's
    /// terms, this commitment's "commit point" has been reached.
    pub disconnected_commitment: Option<CommitmentId>,
    /// The conjunction this removal fully disconnected, if any — a
    /// disconnected *trusted* conjunction generates a `notify` action.
    pub disconnected_conjunction: Option<ConjunctionId>,
}

impl fmt::Display for ReductionStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "remove {} by {}", self.edge, self.rule)?;
        if self.via_clause2 {
            write!(f, " (clause 2)")?;
        }
        if let Some(c) = self.disconnected_commitment {
            write!(f, ", commits {c}")?;
        }
        if let Some(j) = self.disconnected_conjunction {
            write!(f, ", completes {j}")?;
        }
        Ok(())
    }
}

/// The full record of a maximal reduction.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReductionTrace {
    steps: Vec<ReductionStep>,
}

impl ReductionTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn push(&mut self, step: ReductionStep) {
        self.steps.push(step);
    }

    /// Empties the trace, keeping its capacity for the next run.
    pub(crate) fn clear(&mut self) {
        self.steps.clear();
    }

    /// The rule applications, in order.
    pub fn steps(&self) -> &[ReductionStep] {
        &self.steps
    }

    /// Number of rule applications.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` if no rule was applied.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Commitments in the order their commit points were reached.
    pub fn commitment_order(&self) -> impl Iterator<Item = CommitmentId> + '_ {
        self.steps.iter().filter_map(|s| s.disconnected_commitment)
    }
}

impl fmt::Display for ReductionTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.steps.iter().enumerate() {
            writeln!(f, "{:>3}. {s}", i + 1)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_display() {
        let step = ReductionStep {
            edge: EdgeId::new(3),
            rule: Rule::CommitmentFringe,
            via_clause2: true,
            disconnected_commitment: Some(CommitmentId::new(1)),
            disconnected_conjunction: None,
        };
        let s = step.to_string();
        assert!(s.contains("e3"));
        assert!(s.contains("rule #1"));
        assert!(s.contains("clause 2"));
        assert!(s.contains("commits c1"));
    }

    #[test]
    fn trace_accumulates_and_orders() {
        let mut trace = ReductionTrace::new();
        assert!(trace.is_empty());
        for i in 0..3u32 {
            trace.push(ReductionStep {
                edge: EdgeId::new(i),
                rule: Rule::ConjunctionFringe,
                via_clause2: false,
                disconnected_commitment: (i % 2 == 0).then(|| CommitmentId::new(i)),
                disconnected_conjunction: None,
            });
        }
        assert_eq!(trace.len(), 3);
        let commits: Vec<_> = trace.commitment_order().collect();
        assert_eq!(commits, vec![CommitmentId::new(0), CommitmentId::new(2)]);
        assert!(trace.to_string().contains("rule #2"));
    }
}
