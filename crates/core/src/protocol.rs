//! Protocol synthesis: per-participant instruction lists derived from an
//! execution sequence.
//!
//! §2.3 defines a *protocol* as "a set of instructions for each participant
//! that governs its actions", acceptable only if every execution it
//! sanctions is acceptable to all parties. Our synthesised protocols are
//! totally ordered: each instruction waits for the previous global step to
//! be observed, then performs its action. The simulator executes these and
//! injects defections to check the safety claim empirically.

use crate::execution::{ExecutionSequence, ExecutionStep, StepKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use trustseq_model::{Action, AgentId, ExchangeSpec};

/// One instruction of a participant's protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instruction {
    /// Global step index this instruction occupies.
    pub global_index: usize,
    /// The action to perform.
    pub action: Action,
    /// The step's protocol role.
    pub kind: StepKind,
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[step {}] {}", self.global_index, self.action)
    }
}

/// A synthesised protocol: the global step order plus per-participant
/// instruction lists.
///
/// ```
/// use trustseq_core::{fixtures, synthesize, Protocol};
///
/// # fn main() -> Result<(), trustseq_core::CoreError> {
/// let (spec, ids) = fixtures::example1();
/// let sequence = synthesize(&spec)?;
/// let protocol = Protocol::from_sequence(&spec, &sequence);
/// // The broker acts four times: deposits money, receives nothing else to
/// // do until notified, then deposits the document.
/// assert_eq!(protocol.instructions_for(ids.broker).len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Protocol {
    steps: Vec<ExecutionStep>,
    by_agent: BTreeMap<AgentId, Vec<Instruction>>,
}

impl Protocol {
    /// Derives the protocol from an execution sequence.
    pub fn from_sequence(_spec: &ExchangeSpec, sequence: &ExecutionSequence) -> Self {
        let steps: Vec<ExecutionStep> = sequence.steps().to_vec();
        let mut by_agent: BTreeMap<AgentId, Vec<Instruction>> = BTreeMap::new();
        for (i, step) in steps.iter().enumerate() {
            by_agent.entry(step.actor).or_default().push(Instruction {
                global_index: i,
                action: step.action,
                kind: step.kind,
            });
        }
        Protocol { steps, by_agent }
    }

    /// The global step order.
    pub fn steps(&self) -> &[ExecutionStep] {
        &self.steps
    }

    /// Number of global steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when the protocol has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The instructions assigned to `agent` (empty for bystanders).
    pub fn instructions_for(&self, agent: AgentId) -> &[Instruction] {
        self.by_agent.get(&agent).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The participants with at least one instruction.
    pub fn participants(&self) -> impl Iterator<Item = AgentId> + '_ {
        self.by_agent.keys().copied()
    }

    /// The *deposit* instructions of `agent` — the points where the agent
    /// voluntarily parts with an asset (and could defect).
    pub fn deposits_of(&self, agent: AgentId) -> impl Iterator<Item = &Instruction> {
        self.instructions_for(agent)
            .iter()
            .filter(|i| matches!(i.kind, StepKind::Deposit(_) | StepKind::IndemnityDeposit(_)))
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (agent, instructions) in &self.by_agent {
            writeln!(f, "{agent}:")?;
            for i in instructions {
                writeln!(f, "  {i}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execution::synthesize;
    use crate::fixtures;

    #[test]
    fn every_step_is_assigned_exactly_once() {
        let (spec, _) = fixtures::example1();
        let seq = synthesize(&spec).unwrap();
        let protocol = Protocol::from_sequence(&spec, &seq);
        let total: usize = protocol
            .participants()
            .map(|a| protocol.instructions_for(a).len())
            .sum();
        assert_eq!(total, protocol.len());
        assert_eq!(protocol.len(), 10);
    }

    #[test]
    fn instructions_preserve_global_order() {
        let (spec, ids) = fixtures::example1();
        let seq = synthesize(&spec).unwrap();
        let protocol = Protocol::from_sequence(&spec, &seq);
        for agent in [ids.consumer, ids.broker, ids.producer, ids.t1, ids.t2] {
            let idxs: Vec<_> = protocol
                .instructions_for(agent)
                .iter()
                .map(|i| i.global_index)
                .collect();
            let mut sorted = idxs.clone();
            sorted.sort_unstable();
            assert_eq!(idxs, sorted);
        }
    }

    #[test]
    fn broker_has_two_deposits_in_example1() {
        let (spec, ids) = fixtures::example1();
        let seq = synthesize(&spec).unwrap();
        let protocol = Protocol::from_sequence(&spec, &seq);
        assert_eq!(protocol.deposits_of(ids.broker).count(), 2);
        assert_eq!(protocol.deposits_of(ids.consumer).count(), 1);
        assert_eq!(protocol.deposits_of(ids.t1).count(), 0);
    }

    #[test]
    fn bystanders_have_no_instructions() {
        let (spec, _) = fixtures::example1();
        let seq = synthesize(&spec).unwrap();
        let protocol = Protocol::from_sequence(&spec, &seq);
        assert!(protocol
            .instructions_for(trustseq_model::AgentId::new(99))
            .is_empty());
        assert!(!protocol.is_empty());
    }

    #[test]
    fn display_groups_by_agent() {
        let (spec, _) = fixtures::example1();
        let seq = synthesize(&spec).unwrap();
        let protocol = Protocol::from_sequence(&spec, &seq);
        let s = protocol.to_string();
        assert!(s.contains("[step 0]"));
        assert!(s.lines().count() >= protocol.len());
    }
}
