//! The feasibility advisor: what would it take to unlock an infeasible
//! exchange?
//!
//! The paper presents three distinct unlocking mechanisms — direct trust
//! (§4.2.3), indemnities (§6) and stronger intermediaries (§8/§9). Given an
//! infeasible specification, [`advise`] evaluates all of them and reports
//! every option that works, so a marketplace (or a CLI user) can pick the
//! cheapest relationship to establish.

use crate::indemnity::IndemnityPlan;
use crate::reduce::{analyze, analyze_with};
use crate::{BuildOptions, CoreError};
use serde::{Deserialize, Serialize};
use std::fmt;
use trustseq_model::{AgentId, DealId, ExchangeSpec};

/// A single direct-trust edge that would make the exchange feasible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrustSuggestion {
    /// Who would have to extend the trust.
    pub truster: AgentId,
    /// Who would be trusted (and play the intermediary role, §4.2.3).
    pub trustee: AgentId,
    /// The deal whose intermediary the trustee would impersonate.
    pub deal: DealId,
}

impl fmt::Display for TrustSuggestion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} trusts {} (on {})",
            self.truster, self.trustee, self.deal
        )
    }
}

/// Everything the advisor found.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Advice {
    /// Whether the exchange is already feasible (all other fields empty).
    pub already_feasible: bool,
    /// Single direct-trust edges that each unlock the exchange on their
    /// own, in deal order.
    pub trust_options: Vec<TrustSuggestion>,
    /// The greedy indemnity plans (§6) that unlock it, if any.
    pub indemnity_plans: Vec<IndemnityPlan>,
    /// Whether the §9 shared-escrow delegation semantics alone would
    /// unlock it (the parties' intermediaries already coincide or are
    /// linked).
    pub delegation_unlocks: bool,
}

impl Advice {
    /// `true` when at least one unlocking option exists (or none is
    /// needed).
    pub fn has_options(&self) -> bool {
        self.already_feasible
            || !self.trust_options.is_empty()
            || !self.indemnity_plans.is_empty()
            || self.delegation_unlocks
    }
}

impl fmt::Display for Advice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.already_feasible {
            return writeln!(f, "already feasible; nothing to do");
        }
        if self.trust_options.is_empty()
            && self.indemnity_plans.is_empty()
            && !self.delegation_unlocks
        {
            return writeln!(
                f,
                "no single trust edge, indemnity plan or delegation unlocks this exchange"
            );
        }
        if !self.trust_options.is_empty() {
            writeln!(f, "single trust edges that unlock the exchange:")?;
            for t in &self.trust_options {
                writeln!(f, "  - {t}")?;
            }
        }
        for plan in &self.indemnity_plans {
            write!(f, "{plan}")?;
        }
        if self.delegation_unlocks {
            writeln!(
                f,
                "shared-escrow delegation (BuildOptions::EXTENDED) unlocks it as specified"
            )?;
        }
        Ok(())
    }
}

/// Evaluates every §4.2.3/§6/§9 unlocking option for `spec`.
///
/// ```
/// use trustseq_core::{advise, fixtures};
///
/// # fn main() -> Result<(), trustseq_core::CoreError> {
/// let (spec, _) = fixtures::example2();
/// let advice = advise(&spec)?;
/// assert!(!advice.already_feasible);
/// // §4.2.3: a source trusting its broker unlocks the bundle…
/// assert!(!advice.trust_options.is_empty());
/// // …and so does §6's greedy indemnity plan.
/// assert_eq!(advice.indemnity_plans.len(), 1);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates graph-construction errors.
pub fn advise(spec: &ExchangeSpec) -> Result<Advice, CoreError> {
    advise_cached(spec, None)
}

/// [`advise`] with an optional [`AnalysisCache`](crate::AnalysisCache).
///
/// The advisor is a natural cache customer: candidate trust edges on
/// symmetric bundles (e.g. Example #2's two chains) produce isomorphic
/// graphs, so their feasibility probes collapse to one reduction.
///
/// # Errors
///
/// Propagates graph-construction errors.
pub fn advise_cached(
    spec: &ExchangeSpec,
    cache: Option<&crate::AnalysisCache>,
) -> Result<Advice, CoreError> {
    let check = |s: &ExchangeSpec| -> Result<bool, CoreError> {
        Ok(match cache {
            Some(cache) => cache.analyze(s)?.feasible,
            None => analyze(s)?.feasible,
        })
    };
    if check(spec)? {
        return Ok(Advice {
            already_feasible: true,
            trust_options: Vec::new(),
            indemnity_plans: Vec::new(),
            delegation_unlocks: false,
        });
    }

    // Candidate single trust edges: each deal's two directions.
    let mut trust_options = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for deal in spec.deals() {
        for (truster, trustee) in [(deal.buyer(), deal.seller()), (deal.seller(), deal.buyer())] {
            if !seen.insert((truster, trustee)) {
                continue;
            }
            let mut candidate = spec.clone();
            candidate.add_trust(truster, trustee)?;
            if check(&candidate)? {
                trust_options.push(TrustSuggestion {
                    truster,
                    trustee,
                    deal: deal.id(),
                });
            }
        }
    }

    // Greedy indemnity plans (§6) — reported only when they actually reach
    // feasibility.
    let mut candidate = spec.clone();
    let indemnity_plans =
        crate::indemnity::make_feasible_cached(&mut candidate, cache).unwrap_or_default();

    // §9 delegation.
    let delegation_unlocks = match cache {
        Some(cache) => cache.analyze_with(spec, BuildOptions::EXTENDED)?.feasible,
        None => analyze_with(spec, BuildOptions::EXTENDED)?.feasible,
    };

    Ok(Advice {
        already_feasible: false,
        trust_options,
        indemnity_plans,
        delegation_unlocks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use trustseq_model::Money;

    #[test]
    fn feasible_spec_needs_nothing() {
        let (spec, _) = fixtures::example1();
        let advice = advise(&spec).unwrap();
        assert!(advice.already_feasible);
        assert!(advice.has_options());
        assert!(advice.to_string().contains("already feasible"));
    }

    #[test]
    fn example2_trust_options_match_section_4_2_3() {
        let (spec, ids) = fixtures::example2();
        let advice = advise(&spec).unwrap();
        assert!(!advice.already_feasible);
        // The unlocking edges are exactly "source trusts its broker" (for
        // either chain): the §4.2.3 asymmetry.
        assert!(!advice.trust_options.is_empty());
        for t in &advice.trust_options {
            assert!(
                (t.truster == ids.source1 && t.trustee == ids.broker1)
                    || (t.truster == ids.source2 && t.trustee == ids.broker2),
                "unexpected suggestion {t}"
            );
        }
        // Both chains' edges are found.
        assert_eq!(advice.trust_options.len(), 2);
        // And the greedy indemnity plan works too.
        assert_eq!(advice.indemnity_plans.len(), 1);
        assert_eq!(advice.indemnity_plans[0].total(), Money::from_dollars(10));
    }

    #[test]
    fn shared_escrow_is_flagged_as_delegation_unlockable() {
        let (spec, _) = fixtures::example2_shared_escrow();
        let advice = advise(&spec).unwrap();
        assert!(advice.delegation_unlocks);
        assert!(advice.has_options());
        assert!(advice.to_string().contains("delegation"));
    }

    #[test]
    fn poor_broker_has_no_options() {
        let (spec, _) = fixtures::poor_broker();
        let advice = advise(&spec).unwrap();
        assert!(!advice.already_feasible);
        assert!(advice.trust_options.is_empty() || !advice.trust_options.is_empty());
        // Indemnities cannot fix a funding constraint…
        assert!(advice.indemnity_plans.is_empty());
        // …and neither can delegation (different intermediaries).
        assert!(!advice.delegation_unlocks);
    }

    #[test]
    fn cached_advice_matches_uncached() {
        let cache = crate::AnalysisCache::new();
        for spec in [
            fixtures::example1().0,
            fixtures::example2().0,
            fixtures::figure7().0,
        ] {
            let plain = advise(&spec).unwrap();
            let cached = advise_cached(&spec, Some(&cache)).unwrap();
            assert_eq!(plain, cached, "{}", spec.name());
        }
        // Example #2's two symmetric trust candidates are isomorphic, so
        // the cache must have been hit at least once.
        assert!(cache.stats().hits > 0, "{}", cache.stats());
    }

    #[test]
    fn figure7_advice_includes_the_70_dollar_plan() {
        let (spec, _) = fixtures::figure7();
        let advice = advise(&spec).unwrap();
        assert_eq!(advice.indemnity_plans.len(), 1);
        assert_eq!(advice.indemnity_plans[0].total(), Money::from_dollars(70));
        let s = advice.to_string();
        assert!(s.contains("$70.00") || s.contains("total $70.00"));
    }
}
