//! A flat compressed-sparse-row (CSR) arena: per-node item lists packed
//! into one allocation.
//!
//! [`SequencingGraph`](crate::SequencingGraph) stores its commitment and
//! conjunction adjacency this way (two allocations total instead of one
//! `Vec` per node), and the [`canon`](crate::canon) refinement builds its
//! live-incidence table on the same type. Row order is insertion order:
//! `from_memberships` appends items to each row in the order the input
//! iterator yields them, so adjacency scans visit edges exactly as the
//! former `Vec<Vec<EdgeId>>` layout did and reduction traces stay
//! byte-identical.

use serde::{Deserialize, Serialize};

/// Packed per-node item lists: node `v`'s items occupy
/// `items[offsets[v]..offsets[v + 1]]`.
///
/// Offsets are `u32`: the arena addresses at most `u32::MAX` items, which
/// the graph builder's `u32` ids already guarantee.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Csr<T> {
    offsets: Vec<u32>,
    items: Vec<T>,
}

impl<T> Default for Csr<T> {
    fn default() -> Self {
        Csr {
            offsets: vec![0],
            items: Vec::new(),
        }
    }
}

impl<T: Copy> Csr<T> {
    /// Builds the arena from `(node, item)` memberships in two passes over
    /// the same iterator: count, prefix-sum, fill. Items land in each row
    /// in iteration order.
    ///
    /// # Panics
    ///
    /// Panics if a membership names a node `>= nodes`.
    pub fn from_memberships<I>(nodes: usize, memberships: I) -> Self
    where
        I: Iterator<Item = (usize, T)> + Clone,
    {
        let mut csr = Csr {
            offsets: Vec::new(),
            items: Vec::new(),
        };
        csr.rebuild(nodes, memberships);
        csr
    }

    /// Re-fills the arena in place (capacity retained): the allocation-free
    /// path for callers that build many same-shaped arenas in a loop.
    pub fn rebuild<I>(&mut self, nodes: usize, memberships: I)
    where
        I: Iterator<Item = (usize, T)> + Clone,
    {
        self.offsets.clear();
        self.offsets.resize(nodes + 1, 0);
        for (v, _) in memberships.clone() {
            self.offsets[v + 1] += 1;
        }
        for v in 0..nodes {
            self.offsets[v + 1] += self.offsets[v];
        }
        let total = self.offsets[nodes] as usize;
        self.items.clear();
        self.items.reserve(total);
        // Fill using `offsets[v]` itself as row `v`'s write cursor — no
        // side cursor buffer. Afterwards `offsets[v]` holds row `v`'s *end*
        // (= row `v + 1`'s start), so one backwards shift restores the
        // start-offset invariant. The pre-fill with an arbitrary item keeps
        // this safe; every slot is overwritten by the cursor pass.
        if let Some((_, first)) = memberships.clone().next() {
            self.items.resize(total, first);
        }
        for (v, item) in memberships {
            let slot = self.offsets[v];
            self.items[slot as usize] = item;
            self.offsets[v] = slot + 1;
        }
        for v in (1..=nodes).rev() {
            self.offsets[v] = self.offsets[v - 1];
        }
        if let Some(first) = self.offsets.first_mut() {
            *first = 0;
        }
    }
}

impl<T> Csr<T> {
    /// Number of nodes (rows).
    pub fn node_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total packed items across all rows.
    pub fn item_count(&self) -> usize {
        self.items.len()
    }

    /// Node `v`'s items, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn row(&self, v: usize) -> &[T] {
        &self.items[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_per_row_insertion_order() {
        let memberships = [(1usize, 10u32), (0, 20), (1, 30), (2, 40), (1, 50)];
        let csr = Csr::from_memberships(4, memberships.iter().copied());
        assert_eq!(csr.node_count(), 4);
        assert_eq!(csr.item_count(), 5);
        assert_eq!(csr.row(0), &[20]);
        assert_eq!(csr.row(1), &[10, 30, 50]);
        assert_eq!(csr.row(2), &[40]);
        assert_eq!(csr.row(3), &[] as &[u32]);
    }

    #[test]
    fn rebuild_reuses_capacity() {
        let mut csr = Csr::from_memberships(2, [(0usize, 1u32), (1, 2), (1, 3)].iter().copied());
        let ptr = csr.items.as_ptr();
        csr.rebuild(2, [(1usize, 9u32), (0, 8)].iter().copied());
        assert_eq!(csr.row(0), &[8]);
        assert_eq!(csr.row(1), &[9]);
        assert_eq!(csr.items.as_ptr(), ptr, "rebuild must not reallocate");
    }

    #[test]
    fn empty_and_default() {
        let csr: Csr<u32> = Csr::default();
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.item_count(), 0);
        let built = Csr::from_memberships(3, std::iter::empty::<(usize, u32)>());
        assert_eq!(built.node_count(), 3);
        assert_eq!(built.row(1), &[] as &[u32]);
    }

    #[test]
    fn serde_round_trip_shape() {
        let csr = Csr::from_memberships(2, [(0usize, 7u32), (1, 8)].iter().copied());
        let cloned = csr.clone();
        assert_eq!(csr, cloned);
    }
}
