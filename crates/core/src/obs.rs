//! Structured observability: counters, histograms and spans with a
//! zero-cost disabled path.
//!
//! Every hot subsystem in the workspace (the reducers, the analysis
//! cache, the worker pool, the resilient distributed engine) carries
//! instrumentation points that report into a process-global [`Recorder`].
//! By default the recorder is [`NoopRecorder`] and **disabled**: each
//! instrumentation site is guarded by [`enabled`], a single relaxed
//! atomic load, so the disabled path performs no locking, no formatting
//! and — crucially — no heap allocation. The counting-allocator test in
//! `crates/core/tests/alloc.rs` asserts that the zero-allocation
//! steady-state guarantee of the scratch reducer survives with the
//! instrumentation compiled in.
//!
//! # Clocks
//!
//! Spans come in two flavours, matching the two notions of time in the
//! workspace:
//!
//! * **Wall clock** ([`Span::wall`]): a monotonic [`Instant`] pair, used
//!   by purely local subsystems (cache interning, pool dispatch). Values
//!   are recorded in nanoseconds.
//! * **Virtual clock** ([`VirtualClock`], [`Span::virtual_at`]): the
//!   simulated round counter of the distributed/simulated engines. Fault
//!   plans are pure functions of their seed, so round-based durations
//!   are deterministic and replayable — wall time would not be. Values
//!   are recorded in rounds (ticks).
//!
//! # Metric namespaces
//!
//! Metric names are dot-separated, with the first segment naming the
//! emitting subsystem. The taxonomy in use across the workspace:
//!
//! * `reduce.*` — reduction engines: `runs`, `removals`,
//!   `candidates_scanned`, `worklist_peak`, `bitset_words`,
//!   `verdict_only_runs`.
//! * `cache.*` — the analysis cache: `misses`, `evictions`, `expired`
//!   (TTL evictions), `invalidations`, `intern_ns`.
//! * `pool.*` — the worker pool: `jobs`, `width`, `panics`,
//!   `dispatch_ns`, `worker_busy_ns`.
//! * `delta.*` — incremental re-analysis: `applied`, `undone_steps`,
//!   `fallbacks`, `full_runs`.
//! * `dist.*` — the simulated distributed engine: `runs`, `rounds`,
//!   `messages`, `relays`, `retransmissions`, `dedup_drops`,
//!   `decode_failures`, `verdict.{feasible,infeasible,undecided}`.
//! * `net.*` — the socket transport: `frames_rx`, `bytes_sent`,
//!   `reconnects`, `rtt_us`.
//! * `svc.*` — the always-on analysis service: per-request-kind
//!   counters `analyze` / `mutate` / `spec` / `stats`, the end-to-end
//!   `request_ns` histogram, admission outcomes
//!   `rejected.{quota,overloaded,draining,malformed,unknown}`, plus
//!   `enqueued`, `conns`, `proto_drops` (undecodable input →
//!   disconnect), `slow_drops` (stalled partial frames → disconnect)
//!   and `verdict_mismatch` (cache vs resident-analyzer cross-check —
//!   any non-zero value is a bug). The event-stream protocol adds
//!   `events` (lifecycle `event` frames processed), `events_admitted`
//!   (structures admitted hot by a `post` on an unseen id) and
//!   `events_noop` (idempotent re-applications of a toggle already in
//!   the requested state).
//!
//! New instrumentation should claim the existing namespace of the
//! subsystem it lives in, or introduce a new first segment; never reuse
//! a foreign prefix.
//!
//! # Registry
//!
//! [`MetricsRegistry`] is the standard [`Recorder`]: a lock-striped
//! metric table mirroring the [`AnalysisCache`](crate::AnalysisCache)
//! shard design (metric names hash to one of a fixed power-of-two number
//! of `parking_lot` shards). [`MetricsRegistry::snapshot`] locks every
//! shard in a fixed order before reading, so a snapshot is never torn
//! across shards. Snapshots render as an aligned text table or as JSON.
//!
//! ```
//! use trustseq_core::obs::{self, MetricsRegistry};
//!
//! let registry: &'static MetricsRegistry = Box::leak(Box::default());
//! obs::install(registry);
//! obs::with(|r| r.counter("demo.widgets", 3));
//! obs::uninstall();
//! assert_eq!(registry.snapshot().counter("demo.widgets"), Some(3));
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::RwLock;
use std::time::Instant;

use parking_lot::Mutex;

/// Sink for structured telemetry. Implementations must be cheap and
/// re-entrant: instrumentation sites call from pool workers concurrently.
pub trait Recorder: Sync {
    /// Adds `delta` to the named monotonic counter.
    fn counter(&self, name: &str, delta: u64);
    /// Records one observation of `value` into the named histogram.
    fn observe(&self, name: &str, value: u64);
}

/// A [`Recorder`] that discards everything. With the global recorder
/// unset this is what instrumentation sites would reach — but they never
/// do, because [`enabled`] short-circuits first; the disabled path is a
/// single relaxed atomic load.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn counter(&self, _name: &str, _delta: u64) {}
    #[inline(always)]
    fn observe(&self, _name: &str, _value: u64) {}
}

/// Fast-path gate: instrumentation sites check this before doing any
/// work (formatting a metric name, timing a span, taking a lock).
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed recorder. `RwLock` rather than `OnceLock` so tests can
/// install, exercise and uninstall recorders in one process (the on/off
/// byte-identity proptests depend on this). Poisoning is ignored — the
/// guarded value is a plain reference that cannot be left half-written.
static RECORDER: RwLock<Option<&'static (dyn Recorder + Sync)>> = RwLock::new(None);

/// Whether a recorder is installed. One relaxed atomic load; every
/// instrumentation site is gated on this so the disabled path costs
/// nothing and allocates nothing.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `recorder` as the process-global telemetry sink and enables
/// every instrumentation site. The reference must be `'static` — leak a
/// boxed registry (`Box::leak(Box::default())`) for process-lifetime
/// recorders.
pub fn install(recorder: &'static (dyn Recorder + Sync)) {
    *RECORDER.write().unwrap_or_else(|e| e.into_inner()) = Some(recorder);
    ENABLED.store(true, Ordering::Release);
}

/// Disables instrumentation and detaches the current recorder. The
/// previously installed recorder keeps whatever it accumulated (it is
/// `'static`); callers can snapshot it after uninstalling.
pub fn uninstall() {
    ENABLED.store(false, Ordering::Release);
    *RECORDER.write().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Runs `f` against the installed recorder, if any. Callers should gate
/// on [`enabled`] *before* computing anything expensive to pass in; this
/// function re-checks under the read lock so a racing [`uninstall`] is
/// safe.
#[inline]
pub fn with<F: FnOnce(&dyn Recorder)>(f: F) {
    if !enabled() {
        return;
    }
    if let Some(recorder) = *RECORDER.read().unwrap_or_else(|e| e.into_inner()) {
        f(recorder);
    }
}

// ---------------------------------------------------------------------------
// Clocks and spans
// ---------------------------------------------------------------------------

/// A monotonic virtual clock: a tick counter advanced explicitly by the
/// owning engine (the distributed engines tick once per message round).
/// Deterministic — two runs of the same seeded fault plan see identical
/// tick streams, which is what makes recorded span durations replayable.
#[derive(Debug, Default)]
pub struct VirtualClock {
    ticks: AtomicU64,
}

impl VirtualClock {
    /// A clock at tick zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current tick.
    pub fn now(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Advances the clock by `ticks`.
    pub fn advance(&self, ticks: u64) {
        self.ticks.fetch_add(ticks, Ordering::Relaxed);
    }

    /// Sets the clock to an absolute tick (monotonicity is the caller's
    /// responsibility; the engines only ever move it forward).
    pub fn set(&self, tick: u64) {
        self.ticks.store(tick, Ordering::Relaxed);
    }
}

/// Start of a span: wall or virtual. Ended explicitly with
/// [`Span::finish`], which records the elapsed duration as one histogram
/// observation (nanoseconds for wall spans, ticks for virtual spans).
///
/// Spans are plain values, not RAII guards: instrumentation sites only
/// construct them when [`enabled`] already returned `true`, so the
/// disabled path never touches the clock.
#[derive(Debug)]
pub struct Span {
    start: SpanStart,
}

#[derive(Debug)]
enum SpanStart {
    Wall(Instant),
    Virtual(u64),
}

impl Span {
    /// Starts a wall-clock span (nanosecond resolution).
    pub fn wall() -> Self {
        Span {
            start: SpanStart::Wall(Instant::now()),
        }
    }

    /// Starts a virtual-clock span at the clock's current tick.
    pub fn virtual_at(clock: &VirtualClock) -> Self {
        Span {
            start: SpanStart::Virtual(clock.now()),
        }
    }

    /// Elapsed duration in the span's own unit (ns or ticks) without
    /// recording it.
    pub fn elapsed(&self, clock: Option<&VirtualClock>) -> u64 {
        match &self.start {
            SpanStart::Wall(t) => u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX),
            SpanStart::Virtual(start) => clock.map_or(0, |c| c.now().saturating_sub(*start)),
        }
    }

    /// Records the elapsed duration under `name` in the installed
    /// recorder. Virtual spans need the clock back to read "now".
    pub fn finish(self, name: &str, clock: Option<&VirtualClock>) {
        let value = self.elapsed(clock);
        with(|r| r.observe(name, value));
    }
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// Shard count for the metric table. Mirrors the `AnalysisCache` design:
/// a power of two so the hash can be masked, small enough that a
/// full-table snapshot (which locks every shard) stays cheap.
const SHARDS: usize = 8;

/// One metric: a monotonic counter or a min/max/sum/count histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Monotonic event count.
    Counter(u64),
    /// Aggregated distribution of observed values.
    Histogram {
        /// Number of observations.
        count: u64,
        /// Sum of observed values (saturating).
        sum: u64,
        /// Smallest observed value.
        min: u64,
        /// Largest observed value.
        max: u64,
    },
}

impl Metric {
    fn add(&mut self, delta: u64) {
        if let Metric::Counter(n) = self {
            *n = n.saturating_add(delta);
        }
    }

    fn record(&mut self, value: u64) {
        if let Metric::Histogram {
            count,
            sum,
            min,
            max,
        } = self
        {
            *count += 1;
            *sum = sum.saturating_add(value);
            *min = (*min).min(value);
            *max = (*max).max(value);
        }
    }
}

/// Lock-striped [`Recorder`]: metric names hash (FNV-1a) onto [`SHARDS`]
/// `parking_lot` mutexes, each guarding an ordered name → [`Metric`]
/// table. Writers touch exactly one shard; [`snapshot`](Self::snapshot)
/// locks all shards in index order for a torn-free read.
#[derive(Debug)]
pub struct MetricsRegistry {
    shards: [Mutex<BTreeMap<String, Metric>>; SHARDS],
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry {
            shards: std::array::from_fn(|_| Mutex::new(BTreeMap::new())),
        }
    }
}

fn shard_of(name: &str) -> usize {
    // FNV-1a over the name bytes; cheap and stable.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) & (SHARDS - 1)
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a torn-free snapshot: all shards are locked (in index
    /// order) before any is read, so no metric can move between shards'
    /// reads.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let guards: Vec<_> = self.shards.iter().map(|s| s.lock()).collect();
        let mut metrics = BTreeMap::new();
        for guard in &guards {
            for (name, metric) in guard.iter() {
                metrics.insert(name.clone(), *metric);
            }
        }
        MetricsSnapshot { metrics }
    }

    /// Clears every metric (snapshot discipline: all shards locked
    /// first).
    pub fn reset(&self) {
        let mut guards: Vec<_> = self.shards.iter().map(|s| s.lock()).collect();
        for guard in &mut guards {
            guard.clear();
        }
    }
}

impl Recorder for MetricsRegistry {
    fn counter(&self, name: &str, delta: u64) {
        let mut shard = self.shards[shard_of(name)].lock();
        shard
            .entry(name.to_owned())
            .or_insert(Metric::Counter(0))
            .add(delta);
    }

    fn observe(&self, name: &str, value: u64) {
        let mut shard = self.shards[shard_of(name)].lock();
        shard
            .entry(name.to_owned())
            .or_insert(Metric::Histogram {
                count: 0,
                sum: 0,
                min: u64::MAX,
                max: 0,
            })
            .record(value);
    }
}

/// A consistent point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    metrics: BTreeMap<String, Metric>,
}

impl MetricsSnapshot {
    /// The named counter's value, if it exists and is a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(Metric::Counter(n)) => Some(*n),
            _ => None,
        }
    }

    /// The named histogram, if it exists and is a histogram.
    pub fn histogram(&self, name: &str) -> Option<Metric> {
        match self.metrics.get(name) {
            Some(m @ Metric::Histogram { .. }) => Some(*m),
            _ => None,
        }
    }

    /// All metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Renders an aligned text table (`name  value` for counters,
    /// `name  count/sum/min/max` for histograms), sorted by name.
    pub fn render_table(&self) -> String {
        let width = self
            .metrics
            .keys()
            .map(String::len)
            .max()
            .unwrap_or(0)
            .max(6);
        let mut out = String::new();
        use fmt::Write as _;
        let _ = writeln!(out, "{:<width$}  value", "metric");
        for (name, metric) in &self.metrics {
            match metric {
                Metric::Counter(n) => {
                    let _ = writeln!(out, "{name:<width$}  {n}");
                }
                Metric::Histogram {
                    count,
                    sum,
                    min,
                    max,
                } => {
                    let (lo, mean) = if *count == 0 {
                        (0, 0)
                    } else {
                        (*min, sum / count)
                    };
                    let _ = writeln!(
                        out,
                        "{name:<width$}  count={count} sum={sum} min={lo} mean={mean} max={max}"
                    );
                }
            }
        }
        out
    }

    /// Renders the snapshot as one JSON object (hand-rolled — the
    /// vendored serde is an API stub with no wire format). Counter
    /// metrics map to numbers, histograms to
    /// `{"count":…,"sum":…,"min":…,"max":…}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, metric)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&escape_json(name));
            out.push_str("\":");
            match metric {
                Metric::Counter(n) => out.push_str(&n.to_string()),
                Metric::Histogram {
                    count,
                    sum,
                    min,
                    max,
                } => {
                    let lo = if *count == 0 { 0 } else { *min };
                    out.push_str(&format!(
                        "{{\"count\":{count},\"sum\":{sum},\"min\":{lo},\"max\":{max}}}"
                    ));
                }
            }
        }
        out.push('}');
        out
    }
}

/// Escapes a string for inclusion in a JSON string literal. Shared by
/// the metrics renderer and the distributed event journal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Unescapes a JSON string literal body produced by [`escape_json`] (or
/// any standard JSON encoder; `\uXXXX` escapes are decoded, surrogate
/// pairs included). Returns `None` on a malformed escape.
pub fn unescape_json(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            '/' => out.push('/'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'b' => out.push('\u{8}'),
            'f' => out.push('\u{c}'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return None;
                }
                let unit = u32::from_str_radix(&hex, 16).ok()?;
                if (0xd800..0xdc00).contains(&unit) {
                    // High surrogate: a low surrogate escape must follow.
                    if chars.next() != Some('\\') || chars.next() != Some('u') {
                        return None;
                    }
                    let hex2: String = chars.by_ref().take(4).collect();
                    let low = u32::from_str_radix(&hex2, 16).ok()?;
                    if !(0xdc00..0xe000).contains(&low) {
                        return None;
                    }
                    let cp = 0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                    out.push(char::from_u32(cp)?);
                } else {
                    out.push(char::from_u32(unit)?);
                }
            }
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Install/uninstall toggle the global process state; serialize the
    /// tests that touch it.
    static GLOBAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_by_default_and_with_is_a_noop() {
        let _g = GLOBAL.lock();
        assert!(!enabled());
        let mut ran = false;
        with(|_| ran = true);
        assert!(!ran);
    }

    #[test]
    fn install_routes_counters_and_histograms() {
        let _g = GLOBAL.lock();
        let registry: &'static MetricsRegistry = Box::leak(Box::default());
        install(registry);
        assert!(enabled());
        with(|r| r.counter("t.count", 2));
        with(|r| r.counter("t.count", 3));
        with(|r| r.observe("t.hist", 10));
        with(|r| r.observe("t.hist", 4));
        uninstall();
        assert!(!enabled());
        let snap = registry.snapshot();
        assert_eq!(snap.counter("t.count"), Some(5));
        assert_eq!(
            snap.histogram("t.hist"),
            Some(Metric::Histogram {
                count: 2,
                sum: 14,
                min: 4,
                max: 10
            })
        );
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let registry = MetricsRegistry::new();
        registry.counter("c", u64::MAX - 1);
        registry.counter("c", 5);
        assert_eq!(registry.snapshot().counter("c"), Some(u64::MAX));
    }

    #[test]
    fn snapshot_is_consistent_and_sorted() {
        let registry = MetricsRegistry::new();
        for i in 0..32 {
            registry.counter(&format!("m{i:02}"), i);
        }
        let snap = registry.snapshot();
        assert_eq!(snap.len(), 32);
        let names: Vec<&str> = snap.iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn table_and_json_render() {
        let registry = MetricsRegistry::new();
        registry.counter("a.count", 7);
        registry.observe("b.hist", 3);
        let snap = registry.snapshot();
        let table = snap.render_table();
        assert!(table.contains("a.count"));
        assert!(table.contains('7'));
        assert!(table.contains("count=1 sum=3 min=3 mean=3 max=3"));
        assert_eq!(
            snap.render_json(),
            "{\"a.count\":7,\"b.hist\":{\"count\":1,\"sum\":3,\"min\":3,\"max\":3}}"
        );
    }

    #[test]
    fn virtual_clock_spans_measure_in_ticks() {
        let clock = VirtualClock::new();
        let span = Span::virtual_at(&clock);
        clock.advance(3);
        clock.advance(4);
        assert_eq!(span.elapsed(Some(&clock)), 7);
        let wall = Span::wall();
        // Wall spans are ns-resolution; elapsed is simply non-panicking.
        let _ = wall.elapsed(None);
    }

    #[test]
    fn json_escape_round_trips() {
        let cases = [
            "plain",
            "with \"quotes\" and \\slashes\\",
            "line\nbreak\ttab\rret",
            "unicode ✓ and control \u{1}",
        ];
        for case in cases {
            let escaped = escape_json(case);
            assert_eq!(unescape_json(&escaped).as_deref(), Some(case), "{case:?}");
        }
        assert_eq!(unescape_json("\\u0041"), Some("A".to_owned()));
        assert_eq!(unescape_json("\\ud83d\\ude00"), Some("😀".to_owned()));
        assert_eq!(unescape_json("\\u12"), None);
        assert_eq!(unescape_json("bad\\q"), None);
    }

    #[test]
    fn noop_recorder_is_inert() {
        let noop = NoopRecorder;
        noop.counter("x", 1);
        noop.observe("x", 1);
    }
}
