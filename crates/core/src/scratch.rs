//! A reusable reduction scratchpad: the §4.2 rules over a *borrowed*
//! graph, with zero steady-state heap allocations and a cache-friendly
//! data layout.
//!
//! [`Reducer`](crate::Reducer) owns its graph and mutates it, which is the
//! right shape for one-shot analysis and for callers that want the reduced
//! graph back. Batch drivers — feasibility sweeps, confluence sampling,
//! the simulation harness — reduce thousands of specs and want none of
//! that: they need the verdict and the trace, and they need the per-spec
//! constant factors to vanish.
//!
//! # Data layout
//!
//! [`ScratchReducer`] keeps every piece of mutable reduction state in
//! structure-of-arrays buffers it owns and reuses:
//!
//! * **liveness** is a packed [`EdgeBitSet`] indexed by edge slot — the
//!   remaining-edge scan walks `u64` words with `trailing_zeros` instead
//!   of a byte-per-edge bitmap;
//! * **candidate scoring** is a pair of bitsets (rule #1 / rule #2
//!   eligibility) replacing the former `BinaryHeap<Candidate>`: selecting
//!   the next move is a branch-light top-down word scan over
//!   `rule1 | rule2` with `leading_zeros`, guided by a high-water word
//!   hint, instead of pointer-chasing a heap;
//! * **degrees and survivors** are packed per-node `u64` state words
//!   (live degree in the high 32 bits, an XOR accumulator of live edge
//!   slots in the low 32) copied verbatim from the graph's own caches:
//!   one cache word per node carries both the fringe test and — when the
//!   degree is exactly 1 — the surviving edge slot, so fringe cascades
//!   need no adjacency-row scan at all;
//! * **clause-2 waivers** are packed into one more bitset (memcpy'd from
//!   the graph) so the hot loop never loads a whole `Commitment` record.
//!
//! After the first run over the largest graph shape, a
//! [`reset_for`](ScratchReducer::reset_for) +
//! [`run_into`](ScratchReducer::run_into) loop performs no heap
//! allocation at all (verified by the counting test allocator in
//! `tests/alloc.rs`).
//!
//! # Exact candidacy: no pop-time revalidation
//!
//! The §4.2 rules are *monotone*: degrees only decrease (a degree-2
//! commitment becoming degree-1 enables a move; degree 1→0 means the
//! candidate itself was just removed), and rule #1's red pre-emption only
//! ever lifts (red edges are removed, never added). So a move that is
//! applicable stays applicable until its edge is removed. The heap engine
//! needed pop-time revalidation only because it pushed candidates
//! *blindly* (possibly still preempted) and kept stale duplicates; the
//! bitset engine instead checks eligibility once at insert and clears a
//! removed edge's candidate bits immediately, so **every set bit is a
//! valid move** and the pop loop applies straight away.
//!
//! # Trace equivalence
//!
//! Traces are byte-identical to [`Reducer`](crate::Reducer)'s for both
//! strategies. The candidate bitsets pop in exactly the heap's
//! `(edge id descending, rule #1 before rule #2)` order: the highest set
//! bit of the fused word is the highest-id candidate, and at equal id the
//! rule #1 bit is taken first — the same lexicographic `Candidate`
//! ordering. At every step the heap's worklist is a superset of the valid
//! moves containing all of them, and it discards invalid entries until
//! the maximum valid one — which is exactly the maximum of the exact
//! candidate sets — so the applied sequences coincide step for step
//! (`via_clause2` is still computed at pop time, as the heap did). The
//! randomized path reuses the same rescan-shuffle protocol with the same
//! seeded RNG, so the `run_naive` oracle and every confluence report
//! carry over unchanged. [`HeapScratchReducer`] retains the
//! pointer-ordered PR-4 engine as a benchmarking baseline and secondary
//! oracle.

use crate::bitset::{EdgeBitSet, WORD_BITS};
use crate::graph::{CommitmentId, ConjunctionId, Edge, EdgeColor, EdgeId, SequencingGraph};
use crate::obs;
use crate::reduce::{record_reduction_metrics, Candidate, Move, ReductionOutcome, Strategy};
use crate::trace::{ReductionStep, Rule};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BinaryHeap;

/// Reusable reduction state: run the reduction rules over `&SequencingGraph`
/// without touching the graph, reusing every internal buffer across runs.
///
/// ```
/// use trustseq_core::{fixtures, ReductionOutcome, ScratchReducer, SequencingGraph, Strategy};
///
/// # fn main() -> Result<(), trustseq_core::CoreError> {
/// let graph = SequencingGraph::from_spec(&fixtures::example1().0)?;
/// let mut scratch = ScratchReducer::default();
/// let mut out = ReductionOutcome::default();
/// scratch.run_into(&graph, Strategy::Deterministic, &mut out);
/// assert!(out.feasible);
/// // The graph itself is untouched and can be reduced again immediately.
/// assert_eq!(graph.live_edge_count(), graph.initial_edge_count());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ScratchReducer {
    /// Live-edge membership, packed 64 slots per word.
    live: EdgeBitSet,
    /// Interleaved candidate set over `2 * edge_count` bits: bit
    /// `2s + 1` is rule #1 (commitment-fringe) candidacy of slot `s`,
    /// bit `2s` is rule #2 (conjunction-fringe). Plain descending bit
    /// order *is* the pop order `(edge id desc, rule #1 first)`, so a
    /// pop is one word load plus `leading_zeros`, and clearing a removed
    /// edge's candidacy is a single masked write on the adjacent pair.
    cand: EdgeBitSet,
    /// High-water hint: every candidate word at index `>= cand_top` is
    /// zero. Raised on insert, lowered by the pop scan.
    cand_top: usize,
    /// Per-commitment packed state: live degree in the high 32 bits, XOR
    /// of live edge slots in the low 32. When the degree is exactly 1 the
    /// accumulator *is* the surviving slot — an O(1) survivor lookup with
    /// no adjacency-row scan — and one word carries both.
    commitment_state: Vec<u64>,
    /// Per-conjunction packed state (same layout).
    conjunction_state: Vec<u64>,
    /// Per-conjunction packed state over live *red* edges only: the high
    /// half drives the rule #1 pre-emption test, the low half is the O(1)
    /// surviving-red lookup for the pre-emption-lift cascade.
    conjunction_red_state: Vec<u64>,
    /// Commitments whose §4.2 clause-2 waiver is set, packed by id.
    waivers: EdgeBitSet,
    /// Per-edge §4.2 pre-emption flags: bit `s` set iff another live red
    /// edge shares slot `s`'s conjunction. Seeded by memcpy from the
    /// graph's static full-live flags and cleared only at the 2→1 / 1→0
    /// red-count transitions, so the rule #1 eligibility test is one hot
    /// bitset load instead of an edge→conjunction→red-state chase.
    /// Deterministic-strategy only; bits of dead edges go stale and are
    /// never read.
    preempted: EdgeBitSet,
    live_count: usize,
    moves: Vec<Move>,
}

impl ScratchReducer {
    /// Creates an empty scratchpad. Buffers grow on first use and are
    /// retained afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads `graph`'s current liveness state (bitmap and cached degree
    /// counters) into the scratch buffers, clearing any previous run. After
    /// the buffers have grown to a graph's shape once, resetting for any
    /// graph of equal or smaller shape allocates nothing.
    pub fn reset_for(&mut self, graph: &SequencingGraph) {
        let edge_count = graph.edges().len();
        if graph.live_edge_count() == edge_count {
            // Fully live graph (the batch-driver common case): fill whole
            // words instead of re-packing the bool slice bit by bit.
            self.live.reset_full(edge_count);
        } else {
            self.live.reset_from_bools(graph.alive_slice());
        }
        // The graph maintains the packed degree+XOR state words in
        // lock-step with its liveness bitmap, so loading them — and the
        // static waiver set — is a handful of memcpys, not an edge scan.
        let (c_state, j_state, r_state) = graph.state_slices();
        self.commitment_state.clear();
        self.commitment_state.extend_from_slice(c_state);
        self.conjunction_state.clear();
        self.conjunction_state.extend_from_slice(j_state);
        self.conjunction_red_state.clear();
        self.conjunction_red_state.extend_from_slice(r_state);
        self.waivers.load_words(graph.waiver_words(), c_state.len());
        self.live_count = graph.live_edge_count();
        self.cand.reset(edge_count * 2);
        self.cand_top = 0;
        self.moves.clear();
    }

    /// Runs a maximal reduction of `graph` under `strategy`, writing the
    /// outcome into `out` (whose buffers are reused). Resets the scratch
    /// state from the graph first, so consecutive calls are independent.
    pub fn run_into(
        &mut self,
        graph: &SequencingGraph,
        strategy: Strategy,
        out: &mut ReductionOutcome,
    ) {
        self.reset_for(graph);
        out.trace.clear();
        out.remaining_edges.clear();
        // Worklist-depth tracking runs only with a recorder installed; the
        // disabled path (a single relaxed load) stays allocation-free, as
        // asserted by the counting allocator in `tests/alloc.rs`.
        let track = obs::enabled();
        let mut worklist_peak = 0usize;
        let mut candidates_scanned = 0u64;
        match strategy {
            Strategy::Deterministic => {
                self.seed_worklist(graph);
                if track {
                    worklist_peak = self.cand.count();
                }
                while let Some((slot, rule1)) = self.pop_candidate() {
                    if track {
                        candidates_scanned += 1;
                    }
                    out.trace.push(self.apply(graph, slot, rule1));
                    if track {
                        worklist_peak = worklist_peak.max(self.cand.count());
                    }
                }
            }
            Strategy::Randomized { seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                loop {
                    self.collect_moves(graph);
                    if self.moves.is_empty() {
                        break;
                    }
                    if track {
                        worklist_peak = worklist_peak.max(self.moves.len());
                        candidates_scanned += self.moves.len() as u64;
                    }
                    self.moves.shuffle(&mut rng);
                    let mv = self.moves[0];
                    let removed = *graph.edge(mv.edge);
                    out.trace.push(self.remove_rescanned(mv, removed));
                }
            }
        }
        out.remaining_edges
            .extend(self.live.ones().map(|slot| graph.edges()[slot].id));
        out.feasible = out.remaining_edges.is_empty();
        debug_assert_eq!(out.feasible, self.live_count == 0);
        if track {
            obs::with(|r| {
                r.counter("reduce.candidates_scanned", candidates_scanned);
                r.counter("reduce.bitset_words", self.live.word_count() as u64);
            });
            record_reduction_metrics(out, worklist_peak);
        }
    }

    /// [`run_into`](Self::run_into) returning a freshly allocated outcome —
    /// the drop-in replacement for `Reducer::new(graph.clone()).run()` when
    /// the caller needs to keep the result.
    pub fn run(&mut self, graph: &SequencingGraph, strategy: Strategy) -> ReductionOutcome {
        let mut out = ReductionOutcome::default();
        self.run_into(graph, strategy, &mut out);
        out
    }

    /// Runs a maximal reduction and returns only the §4.2.4 feasibility
    /// verdict, skipping trace emission and the remaining-edge scan — the
    /// ~15–20 ns/reduction recording floor `BENCH_hotpath.json` identified
    /// — for callers that never read the steps: confluence sampling (which
    /// compares verdicts, not traces), the
    /// [`DeltaAnalyzer`](crate::DeltaAnalyzer)'s full-re-analysis fallback,
    /// and the `--full` marketplace baseline.
    ///
    /// Applies exactly the same move sequence as
    /// [`run_into`](Self::run_into) under the same strategy, so the verdict
    /// is identical by construction (asserted in the equivalence property
    /// suites and in-bench).
    pub fn run_verdict_only(&mut self, graph: &SequencingGraph, strategy: Strategy) -> bool {
        self.reset_for(graph);
        match strategy {
            Strategy::Deterministic => {
                self.seed_worklist(graph);
                while let Some((slot, rule1)) = self.pop_candidate() {
                    self.apply(graph, slot, rule1);
                }
            }
            Strategy::Randomized { seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                loop {
                    self.collect_moves(graph);
                    if self.moves.is_empty() {
                        break;
                    }
                    self.moves.shuffle(&mut rng);
                    let mv = self.moves[0];
                    let removed = *graph.edge(mv.edge);
                    self.remove_rescanned(mv, removed);
                }
            }
        }
        if obs::enabled() {
            obs::with(|r| r.counter("reduce.verdict_only_runs", 1));
        }
        debug_assert_eq!(self.live_count, self.live.count());
        self.live_count == 0
    }

    /// Marks `slot` a rule #1 candidate, raising the scan hint.
    #[inline]
    fn push_rule1(&mut self, slot: usize) {
        let w = self.cand.insert(2 * slot + 1);
        self.cand_top = self.cand_top.max(w + 1);
    }

    /// Marks `slot` a rule #2 candidate, raising the scan hint.
    #[inline]
    fn push_rule2(&mut self, slot: usize) {
        let w = self.cand.insert(2 * slot);
        self.cand_top = self.cand_top.max(w + 1);
    }

    /// Peeks the maximum candidate in the heap's `(edge id, rule #1
    /// first)` order: top-down word scan plus `leading_zeros` in the
    /// first non-empty word. The interleaved layout makes plain bit
    /// order *be* that order, so no fusing or tie-break is needed. The
    /// popped bit is not cleared here — [`apply`](Self::apply) clears
    /// the removed edge's whole candidate pair in one write.
    #[inline]
    fn pop_candidate(&mut self) -> Option<(usize, bool)> {
        while self.cand_top > 0 {
            let w = self.cand_top - 1;
            let word = self.cand.word(w);
            if word == 0 {
                self.cand_top = w;
                continue;
            }
            let bit = w * WORD_BITS + (WORD_BITS - 1 - word.leading_zeros() as usize);
            return Some((bit >> 1, bit & 1 == 1));
        }
        None
    }

    /// Seeds the candidate sets with the currently applicable moves. For
    /// the fully live graph (the batch-driver common case) the applicable
    /// sets are static graph structure, precomputed at construction and
    /// loaded here by memcpy; a partially reduced graph falls back to the
    /// live-set word scan. (The heap seeded these in ascending-id scan
    /// order; set membership is order-independent.)
    fn seed_worklist(&mut self, graph: &SequencingGraph) {
        let edges = graph.edges();
        if self.live_count == edges.len() {
            self.cand
                .load_words(graph.seed_cand_words(), edges.len() * 2);
            self.preempted
                .load_words(graph.seed_preempted_words(), edges.len());
            self.cand_top = self.cand.word_count();
            #[cfg(debug_assertions)]
            for e in edges {
                let rule1 = self.commitment_degree(graph, e.commitment) == 1
                    && (!self.red_probe(graph, e) || self.waivers.contains(e.commitment.index()));
                debug_assert_eq!(
                    self.cand.contains(2 * e.id.index() + 1),
                    rule1,
                    "stale precomputed rule #1 seed at {}",
                    e.id
                );
                debug_assert_eq!(
                    self.cand.contains(2 * e.id.index()),
                    self.conjunction_degree(graph, e.conjunction) == 1,
                    "stale precomputed rule #2 seed at {}",
                    e.id
                );
                debug_assert_eq!(
                    self.preempted.contains(e.id.index()),
                    self.red_probe(graph, e),
                    "stale precomputed pre-emption seed at {}",
                    e.id
                );
            }
            return;
        }
        self.preempted.reset(edges.len());
        for w in 0..self.live.word_count() {
            let mut word = self.live.word(w);
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                let e = &edges[w * WORD_BITS + bit];
                // Every live edge's pre-emption flag is materialised, not
                // just the current fringe's: later survivors consult it.
                let preempted = self.red_probe(graph, e);
                if preempted {
                    self.preempted.insert(e.id.index());
                }
                if self.commitment_degree(graph, e.commitment) == 1
                    && (!preempted || self.waivers.contains(e.commitment.index()))
                {
                    self.push_rule1(e.id.index());
                }
                if self.conjunction_degree(graph, e.conjunction) == 1 {
                    self.push_rule2(e.id.index());
                }
            }
        }
    }

    /// Mirror of `Reducer::applicable_moves`, rescanning into the reusable
    /// move buffer (the randomized strategy must sample from the whole
    /// applicable set at every step). The live-set word scan yields edges
    /// in the same ascending-id order as the former bool-slice scan.
    fn collect_moves(&mut self, graph: &SequencingGraph) {
        self.moves.clear();
        let edges = graph.edges();
        for w in 0..self.live.word_count() {
            let mut word = self.live.word(w);
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                let e = &edges[w * WORD_BITS + bit];
                if self.commitment_degree(graph, e.commitment) == 1 {
                    let preempted = self.red_probe(graph, e);
                    let waiver = self.waivers.contains(e.commitment.index());
                    if !preempted || waiver {
                        self.moves.push(Move {
                            edge: e.id,
                            rule: Rule::CommitmentFringe,
                            via_clause2: preempted && waiver,
                        });
                    }
                }
                if self.conjunction_degree(graph, e.conjunction) == 1 {
                    self.moves.push(Move {
                        edge: e.id,
                        rule: Rule::ConjunctionFringe,
                        via_clause2: false,
                    });
                }
            }
        }
    }

    /// Removes a move picked by the randomized rescan protocol. The rescan
    /// recomputes applicability from scratch every round, so no candidate
    /// bookkeeping is needed here (the candidate sets stay empty in
    /// randomized runs).
    fn remove_rescanned(&mut self, mv: Move, removed: Edge) -> ReductionStep {
        let slot = mv.edge.index();
        debug_assert!(self.live.contains(slot), "removing a dead edge");
        self.live.remove(slot);
        self.live_count -= 1;
        let c_state = {
            let st = &mut self.commitment_state[removed.commitment.index()];
            *st = (*st - (1 << 32)) ^ slot as u64;
            *st
        };
        let j_state = {
            let st = &mut self.conjunction_state[removed.conjunction.index()];
            *st = (*st - (1 << 32)) ^ slot as u64;
            *st
        };
        if removed.color == EdgeColor::Red {
            let st = &mut self.conjunction_red_state[removed.conjunction.index()];
            *st = (*st - (1 << 32)) ^ slot as u64;
        }
        ReductionStep {
            edge: mv.edge,
            rule: mv.rule,
            via_clause2: mv.via_clause2,
            disconnected_commitment: (c_state >> 32 == 0).then_some(removed.commitment),
            disconnected_conjunction: (j_state >> 32 == 0).then_some(removed.conjunction),
        }
    }

    /// Applies the popped candidate: removes the edge from the scratch
    /// liveness state, records the step, and inserts every move the
    /// removal newly enables (the three monotone enabling events, each
    /// checked for full eligibility at insert — see the module docs on
    /// exact candidacy). The candidate needs no revalidation: set
    /// membership guarantees applicability, so this goes straight to work.
    fn apply(&mut self, graph: &SequencingGraph, slot: usize, rule1: bool) -> ReductionStep {
        debug_assert!(self.live.contains(slot), "popped a dead candidate");
        let removed = graph.edges()[slot];
        debug_assert!(
            if rule1 {
                self.commitment_degree(graph, removed.commitment) == 1
            } else {
                self.conjunction_degree(graph, removed.conjunction) == 1
            },
            "popped an inapplicable candidate at {}",
            removed.id
        );
        // `via_clause2` reports pop-time pre-emption, exactly as the heap
        // engine's revalidation did: an in-set rule #1 candidate is either
        // unpreempted or waived, so `preempted && waiver` reduces to the
        // waiver bit gating one pre-emption-flag load. The waiver bit is
        // loaded once — the fringe cascade below is for the same
        // commitment.
        let waived = self.waivers.contains(removed.commitment.index());
        let via_clause2 = rule1 && waived && self.preempted.contains(slot);
        debug_assert!(
            !rule1 || self.preempted.contains(slot) == self.red_probe(graph, &removed),
            "stale pre-emption flag at popped {}",
            removed.id
        );
        let (c_state, j_state) = self.remove_and_enable(graph, slot, waived);

        ReductionStep {
            edge: removed.id,
            rule: if rule1 {
                Rule::CommitmentFringe
            } else {
                Rule::ConjunctionFringe
            },
            via_clause2,
            disconnected_commitment: (c_state >> 32 == 0).then_some(removed.commitment),
            disconnected_conjunction: (j_state >> 32 == 0).then_some(removed.conjunction),
        }
    }

    /// The shared removal core of [`apply`](Self::apply) and the delta
    /// engine's [`exogenous_remove`](Self::exogenous_remove): takes `slot`
    /// out of the live set, updates the packed node states, and inserts
    /// every move the removal newly enables (fringe survivors and the red
    /// pre-emption-lift cascade). Returns the updated packed commitment and
    /// conjunction state words.
    fn remove_and_enable(
        &mut self,
        graph: &SequencingGraph,
        slot: usize,
        waived: bool,
    ) -> (u64, u64) {
        let removed = graph.edges()[slot];
        self.live.remove(slot);
        // One masked write clears both of the removed edge's candidacy
        // bits — the popped rule's and (if set) the other rule's.
        self.cand.remove_pair(2 * slot);
        self.live_count -= 1;
        // One packed read-modify-write per node: the high half is the
        // decremented degree, the low half the updated XOR accumulator —
        // which, at degree 1, is exactly the surviving edge slot.
        let c_state = {
            let st = &mut self.commitment_state[removed.commitment.index()];
            *st = (*st - (1 << 32)) ^ slot as u64;
            *st
        };
        let j_state = {
            let st = &mut self.conjunction_state[removed.conjunction.index()];
            *st = (*st - (1 << 32)) ^ slot as u64;
            *st
        };
        // `None` = the removed edge was black, so no pre-emption lift is
        // possible; the lift branches below key off the red state *after*
        // this decrement.
        let mut red_state = None;
        if removed.color == EdgeColor::Red {
            let st = &mut self.conjunction_red_state[removed.conjunction.index()];
            *st = (*st - (1 << 32)) ^ slot as u64;
            red_state = Some(*st);
        }

        if c_state >> 32 == 1 {
            let survivor = c_state as u32 as usize;
            debug_assert_eq!(
                Some(survivor),
                graph
                    .commitment_edge_ids(removed.commitment)
                    .iter()
                    .map(|e| e.index())
                    .find(|&s| self.live.contains(s)),
                "stale commitment state accumulator at {}",
                removed.commitment
            );
            debug_assert_eq!(
                self.preempted.contains(survivor),
                self.red_probe(graph, &graph.edges()[survivor]),
                "stale pre-emption flag at survivor {survivor}"
            );
            if waived || !self.preempted.contains(survivor) {
                self.push_rule1(survivor);
            }
        }
        if j_state >> 32 == 1 {
            let survivor = j_state as u32 as usize;
            debug_assert_eq!(
                Some(survivor),
                graph
                    .conjunction_edge_ids(removed.conjunction)
                    .iter()
                    .map(|e| e.index())
                    .find(|&s| self.live.contains(s)),
                "stale conjunction state accumulator at {}",
                removed.conjunction
            );
            self.push_rule2(survivor);
        }
        // Pre-emption lift: removing a red edge changes some survivor's
        // pre-emption status only at the 2→1 and 1→0 red-count
        // transitions. At 2→1 the one edge whose status flips is the
        // surviving red itself (the blacks still see one *other* red); at
        // 1→0 nothing at the conjunction is pre-empted any more. Waived
        // degree-1 edges were candidates regardless of pre-emption, so
        // neither branch needs the waiver test.
        if let Some(rst) = red_state {
            if rst >> 32 == 1 {
                let red = rst as u32 as usize;
                debug_assert!(
                    self.live.contains(red) && graph.edges()[red].color == EdgeColor::Red,
                    "stale conjunction red state accumulator at {}",
                    removed.conjunction
                );
                // The surviving red no longer sees another live red, so
                // its pre-emption lifts; the blacks at the conjunction
                // still see it and stay pre-empted.
                self.preempted.remove(red);
                if self.commitment_degree(graph, graph.edges()[red].commitment) == 1 {
                    self.push_rule1(red);
                }
            } else if rst >> 32 == 0 {
                for eid in graph.conjunction_edge_ids(removed.conjunction) {
                    let s = eid.index();
                    if self.live.contains(s) {
                        self.preempted.remove(s);
                        if self.commitment_degree(graph, graph.edge(*eid).commitment) == 1 {
                            self.push_rule1(s);
                        }
                    }
                }
            }
        }

        (c_state, j_state)
    }

    /// O(1) live degree of a commitment (high half of the packed state
    /// word), with the same debug-build scan oracle discipline as
    /// `SequencingGraph::commitment_degree`.
    fn commitment_degree(&self, graph: &SequencingGraph, id: CommitmentId) -> u32 {
        let cached = (self.commitment_state[id.index()] >> 32) as u32;
        debug_assert_eq!(
            cached as usize,
            graph
                .commitment_edge_ids(id)
                .iter()
                .filter(|e| self.live.contains(e.index()))
                .count(),
            "stale scratch commitment state counter at {id}"
        );
        cached
    }

    /// O(1) live degree of a conjunction, oracle-checked in debug builds.
    fn conjunction_degree(&self, graph: &SequencingGraph, id: ConjunctionId) -> u32 {
        let cached = (self.conjunction_state[id.index()] >> 32) as u32;
        debug_assert_eq!(
            cached as usize,
            graph
                .conjunction_edge_ids(id)
                .iter()
                .filter(|e| self.live.contains(e.index()))
                .count(),
            "stale scratch conjunction state counter at {id}"
        );
        cached
    }

    /// The Rule #1 pre-emption test for a **live** edge `e`: is any *other*
    /// live red edge attached to `e`'s conjunction? One state-word load and
    /// a compare — `e`'s own contribution to the red count is its colour,
    /// which the caller already holds. Oracle-checked in debug builds.
    #[inline]
    fn red_probe(&self, graph: &SequencingGraph, e: &Edge) -> bool {
        debug_assert!(self.live.contains(e.id.index()), "red probe on a dead edge");
        let preempted = self.conjunction_red_state[e.conjunction.index()] >> 32
            > u64::from(e.color == EdgeColor::Red);
        debug_assert_eq!(
            preempted,
            graph
                .conjunction_edge_ids(e.conjunction)
                .iter()
                .filter(|t| self.live.contains(t.index()))
                .map(|t| graph.edge(*t))
                .any(|t| t.color == EdgeColor::Red && t.id != e.id),
            "stale scratch conjunction red state counter at {}",
            e.conjunction
        );
        preempted
    }

    // ------------------------------------------------------------------
    // Delta-maintenance primitives (consumed by `core::delta`)
    // ------------------------------------------------------------------
    //
    // The `DeltaAnalyzer` keeps this scratchpad resident at a reduction
    // fixpoint between mutations. The §4.2 rules are monotone under edge
    // *removal* and waiver *grant* (degrees only fall, pre-emption only
    // lifts, waivers only enable), so every previously applied move stays
    // valid and the engine can resume from the residual state after
    // re-seeding only the disturbed fringe. Edge *restores* and waiver
    // *revocations* are anti-monotone — retained moves may become invalid
    // — so the engine computes the exact set of invalidated moves from
    // per-slot removal stamps (`RemovalLog`) and *resurrects* just those
    // edges in place: the minimal undo frontier, cost proportional to the
    // disturbed region instead of the whole history.

    /// Number of live edges remaining in the scratch state.
    pub(crate) fn remaining_live(&self) -> usize {
        self.live_count
    }

    /// Whether edge slot `s` is live in the scratch state.
    pub(crate) fn slot_is_live(&self, s: usize) -> bool {
        self.live.contains(s)
    }

    /// Full deterministic verdict-only run that also restarts `log`'s
    /// removal history (the delta engine's retained state).
    pub(crate) fn run_stamped(&mut self, graph: &SequencingGraph, log: &mut RemovalLog) -> bool {
        self.reset_for(graph);
        log.reset(graph);
        self.seed_worklist(graph);
        self.drive_stamped(graph, log)
    }

    /// Runs the deterministic pop loop to its fixpoint, stamping every
    /// applied move into `log`. Returns the feasibility verdict.
    pub(crate) fn drive_stamped(&mut self, graph: &SequencingGraph, log: &mut RemovalLog) -> bool {
        while let Some((slot, rule1)) = self.pop_candidate() {
            self.apply(graph, slot, rule1);
            log.stamp_removal(slot, rule1);
        }
        debug_assert_eq!(self.live_count, self.live.count());
        self.live_count == 0
    }

    /// Removes a live edge *exogenously* — by graph mutation, not by a
    /// reduction rule — from the resident fixpoint state, inserting any
    /// moves the removal newly enables at the disturbed fringe (its two
    /// endpoint survivors and the red pre-emption-lift cascade). The caller
    /// stamps the removal and resumes with
    /// [`drive_stamped`](Self::drive_stamped).
    ///
    /// Sound because the rules are monotone under removal: the retained
    /// move list stays valid on the mutated graph, so the residual state is
    /// still reachable and confluence carries the verdict.
    pub(crate) fn exogenous_remove(&mut self, graph: &SequencingGraph, slot: usize) {
        debug_assert!(self.live.contains(slot), "exogenous removal of a dead edge");
        let waived = self
            .waivers
            .contains(graph.edges()[slot].commitment.index());
        self.remove_and_enable(graph, slot, waived);
    }

    /// Grants a clause-2 waiver in the resident fixpoint state and inserts
    /// the one move it can newly enable: the commitment's surviving edge,
    /// when its degree is already 1 and red pre-emption was the only
    /// blocker. (A waiver *revocation* is anti-monotone and goes through
    /// [`undo_frontier`](Self::undo_frontier) instead.)
    pub(crate) fn grant_waiver(&mut self, graph: &SequencingGraph, id: CommitmentId) {
        self.waivers.insert(id.index());
        let st = self.commitment_state[id.index()];
        if st >> 32 == 1 {
            let survivor = st as u32 as usize;
            debug_assert!(self.live.contains(survivor), "stale commitment survivor");
            debug_assert_eq!(graph.edges()[survivor].commitment, id);
            self.push_rule1(survivor);
        }
    }

    /// The anti-monotone maintenance path: applies `origin` (an edge
    /// restore or a waiver revocation, already applied to `graph`) to the
    /// resident fixpoint state by resurrecting exactly the retained moves
    /// it invalidates — the **minimal undo frontier** — then re-seeding
    /// candidates over the disturbed region and popping to the new
    /// fixpoint. Returns `Some((undone, feasible))` with the frontier size
    /// and the new verdict, or `None` when the frontier exceeded
    /// `threshold` — the scratch state is then torn and the caller must
    /// fall back to a full [`run_stamped`](Self::run_stamped).
    ///
    /// # Why the cascade is exact (and sound)
    ///
    /// The retained history is a valid move sequence ordered by removal
    /// stamp. A retained move `t` is invalidated by a resurrected edge `f`
    /// only when `f` left the live set *before* `t` was applied
    /// (`stamp(f) < stamp(t)` — earlier removals are the only absences
    /// `t`'s validity could have observed) and `f` touches `t`'s validity
    /// predicate: same commitment for rule #1's degree test, same
    /// conjunction for rule #2's degree test, or a red `f` at `t`'s
    /// conjunction re-imposing rule #1 pre-emption — unless `t`'s clause-2
    /// waiver already held when `t` was applied
    /// (`waiver_stamp < stamp(t)`). Closing the frontier under this
    /// relation and touching nothing else leaves every retained move valid
    /// in stamp order, so the patched state is reachable on the mutated
    /// graph and the confluence theorem carries the verdict. New
    /// candidates can only appear *at* resurrected slots: every other
    /// live edge sees the same or higher degrees and the same or more red
    /// pre-emption than at the old fixpoint, where it was not reducible.
    pub(crate) fn undo_frontier(
        &mut self,
        graph: &SequencingGraph,
        log: &mut RemovalLog,
        origin: UndoOrigin,
        threshold: usize,
    ) -> Option<(usize, bool)> {
        let mut queue = std::mem::take(&mut log.queue);
        let mut undone = std::mem::take(&mut log.undone);
        queue.clear();
        undone.clear();
        // Retained moves invalidated so far (a restore's own edge is the
        // mutation itself, not undone work, and is excluded).
        let mut frontier = 0usize;
        match origin {
            UndoOrigin::Restore(slot) => {
                debug_assert!(!self.live.contains(slot), "restore of a live slot");
                let stamp = log.stamp[slot];
                log.stamp[slot] = LIVE_STAMP;
                queue.push((slot as u32, stamp));
            }
            UndoOrigin::Revoke(c) => {
                self.waivers.remove(c.index());
                // Only a rule #1 move applied after the grant can have
                // relied on the revoked waiver.
                for t in graph.commitment_edge_ids(c) {
                    let s = t.index();
                    let stamp = log.stamp[s];
                    if stamp != LIVE_STAMP
                        && log.rule1[s]
                        && graph.is_live(*t)
                        && log.waiver_stamp[c.index()] < stamp
                    {
                        log.stamp[s] = LIVE_STAMP;
                        frontier += 1;
                        queue.push((s as u32, stamp));
                    }
                }
            }
        }

        let mut qi = 0;
        while qi < queue.len() {
            if frontier > threshold {
                log.queue = queue;
                log.undone = undone;
                return None;
            }
            let (slot, stamp) = queue[qi];
            qi += 1;
            let slot = slot as usize;
            let e = graph.edges()[slot];
            // Bring the edge back into the resident live set.
            self.live.insert(slot);
            self.live_count += 1;
            {
                let st = &mut self.commitment_state[e.commitment.index()];
                *st = (*st + (1 << 32)) ^ slot as u64;
            }
            {
                let st = &mut self.conjunction_state[e.conjunction.index()];
                *st = (*st + (1 << 32)) ^ slot as u64;
            }
            if e.color == EdgeColor::Red {
                let st = &mut self.conjunction_red_state[e.conjunction.index()];
                *st = (*st + (1 << 32)) ^ slot as u64;
            }
            undone.push(slot as u32);

            // Cascade over the retained moves this resurrection
            // invalidates. Only reduced-but-graph-live slots carry
            // retained moves: exogenously removed edges are filtered by
            // `is_live`, already-queued slots by their `LIVE_STAMP`
            // marker.
            for t in graph.commitment_edge_ids(e.commitment) {
                let s = t.index();
                let ts = log.stamp[s];
                if ts != LIVE_STAMP && ts > stamp && log.rule1[s] && graph.is_live(*t) {
                    log.stamp[s] = LIVE_STAMP;
                    frontier += 1;
                    queue.push((s as u32, ts));
                }
            }
            for t in graph.conjunction_edge_ids(e.conjunction) {
                let s = t.index();
                let ts = log.stamp[s];
                if ts == LIVE_STAMP || ts <= stamp || !graph.is_live(*t) {
                    continue;
                }
                let invalid = if log.rule1[s] {
                    let c = graph.edges()[s].commitment.index();
                    e.color == EdgeColor::Red
                        && !(self.waivers.contains(c) && log.waiver_stamp[c] < ts)
                } else {
                    true
                };
                if invalid {
                    log.stamp[s] = LIVE_STAMP;
                    frontier += 1;
                    queue.push((s as u32, ts));
                }
            }
        }

        // Exact pre-emption flags over the disturbed region: each
        // resurrected slot's own flag, plus — for resurrected reds — the
        // flags of every live edge at their conjunction.
        for &slot in &undone {
            let slot = slot as usize;
            let e = graph.edges()[slot];
            let preempted = self.red_probe(graph, &e);
            self.set_preempted(slot, preempted);
            if e.color == EdgeColor::Red {
                for t in graph.conjunction_edge_ids(e.conjunction) {
                    let s = t.index();
                    if s != slot && self.live.contains(s) {
                        let preempted = self.red_probe(graph, &graph.edges()[s]);
                        self.set_preempted(s, preempted);
                    }
                }
            }
        }
        // Seed candidates: only resurrected slots can have become
        // reducible (see the soundness note above).
        for &slot in &undone {
            let slot = slot as usize;
            let e = graph.edges()[slot];
            if self.commitment_degree(graph, e.commitment) == 1
                && (!self.preempted.contains(slot) || self.waivers.contains(e.commitment.index()))
            {
                self.push_rule1(slot);
            }
            if self.conjunction_degree(graph, e.conjunction) == 1 {
                self.push_rule2(slot);
            }
        }
        let feasible = self.drive_stamped(graph, log);
        log.queue = queue;
        log.undone = undone;
        Some((frontier, feasible))
    }

    #[inline]
    fn set_preempted(&mut self, slot: usize, preempted: bool) {
        if preempted {
            self.preempted.insert(slot);
        } else {
            self.preempted.remove(slot);
        }
    }
}

/// Stamp marking a slot as currently live (no retained removal).
const LIVE_STAMP: u64 = u64::MAX;

/// The anti-monotone mutation kinds [`ScratchReducer::undo_frontier`]
/// maintains.
#[derive(Debug, Clone, Copy)]
pub(crate) enum UndoOrigin {
    /// Edge slot restored into the base graph (already live there).
    Restore(usize),
    /// Clause-2 waiver revoked on a commitment (already cleared in the
    /// graph).
    Revoke(CommitmentId),
}

/// The delta engine's retained history: *when* each edge slot left the
/// live set and by which rule, plus when each commitment's clause-2
/// waiver was last granted — enough to compute exact undo frontiers
/// without keeping (or walking) an ordered move list.
#[derive(Debug, Default)]
pub(crate) struct RemovalLog {
    /// Per-slot stamp: [`LIVE_STAMP`] while live, `0` for edges dead
    /// since before this history began (graph-dead at the last full run),
    /// otherwise the strictly increasing clock value of the removal —
    /// reduction move or exogenous graph removal.
    stamp: Vec<u64>,
    /// Whether the slot's stamped removal was a rule #1 move (`false`
    /// for rule #2 moves and exogenous removals).
    rule1: Vec<bool>,
    /// Per-commitment stamp of the most recent clause-2 waiver grant
    /// (`0` = held since before this history began).
    waiver_stamp: Vec<u64>,
    /// Next removal stamp; starts at 1 so stamp `0` always reads as
    /// "before history".
    clock: u64,
    /// Reusable cascade buffers for [`ScratchReducer::undo_frontier`].
    queue: Vec<(u32, u64)>,
    undone: Vec<u32>,
}

impl RemovalLog {
    /// Restarts the history for a freshly (re-)analyzed `graph`.
    pub(crate) fn reset(&mut self, graph: &SequencingGraph) {
        let edges = graph.edges();
        self.stamp.clear();
        self.stamp.extend(
            edges
                .iter()
                .map(|e| if graph.is_live(e.id) { LIVE_STAMP } else { 0 }),
        );
        self.rule1.clear();
        self.rule1.resize(edges.len(), false);
        self.waiver_stamp.clear();
        self.waiver_stamp.resize(graph.commitments().len(), 0);
        self.clock = 1;
    }

    /// Stamps slot `slot` as removed now (by rule #1 if `rule1`, else by
    /// rule #2 or exogenously).
    pub(crate) fn stamp_removal(&mut self, slot: usize, rule1: bool) {
        self.stamp[slot] = self.clock;
        self.rule1[slot] = rule1;
        self.clock += 1;
    }

    /// Stamps a clause-2 waiver grant on commitment `c` now.
    pub(crate) fn stamp_grant(&mut self, c: CommitmentId) {
        self.waiver_stamp[c.index()] = self.clock;
        self.clock += 1;
    }
}

/// The PR-4 pointer-ordered scratch engine: a `BinaryHeap` worklist over a
/// `Vec<bool>` liveness bitmap with `usize` degree counters.
///
/// Retained verbatim as the benchmarking baseline for the bitset/SoA
/// [`ScratchReducer`] (the `hotpath` bench reduces the same corpus through
/// both and `BENCH_hotpath.json` reports the ratio) and as a secondary
/// equivalence oracle in the property tests. Not used by any production
/// driver — prefer [`ScratchReducer`].
#[derive(Debug, Default)]
pub struct HeapScratchReducer {
    alive: Vec<bool>,
    commitment_live: Vec<usize>,
    conjunction_live: Vec<usize>,
    conjunction_live_red: Vec<usize>,
    live_count: usize,
    heap: BinaryHeap<Candidate>,
    moves: Vec<Move>,
}

impl HeapScratchReducer {
    /// Creates an empty scratchpad. Buffers grow on first use and are
    /// retained afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads `graph`'s current liveness state into the scratch buffers,
    /// clearing any previous run.
    pub fn reset_for(&mut self, graph: &SequencingGraph) {
        self.alive.clear();
        self.alive.extend_from_slice(graph.alive_slice());
        let (c_live, j_live, j_red) = graph.live_counter_slices();
        self.commitment_live.clear();
        self.commitment_live.extend_from_slice(c_live);
        self.conjunction_live.clear();
        self.conjunction_live.extend_from_slice(j_live);
        self.conjunction_live_red.clear();
        self.conjunction_live_red.extend_from_slice(j_red);
        self.live_count = graph.live_edge_count();
        self.heap.clear();
        self.moves.clear();
    }

    /// Runs a maximal reduction of `graph` under `strategy`, writing the
    /// outcome into `out` (whose buffers are reused).
    pub fn run_into(
        &mut self,
        graph: &SequencingGraph,
        strategy: Strategy,
        out: &mut ReductionOutcome,
    ) {
        self.reset_for(graph);
        out.trace.clear();
        out.remaining_edges.clear();
        let track = obs::enabled();
        let mut worklist_peak = 0usize;
        match strategy {
            Strategy::Deterministic => {
                self.seed_worklist(graph);
                if track {
                    worklist_peak = self.heap.len();
                }
                while let Some(cand) = self.heap.pop() {
                    let Some(mv) = self.revalidate(graph, cand) else {
                        continue;
                    };
                    let removed = *graph.edge(mv.edge);
                    out.trace.push(self.remove(mv, removed));
                    self.push_unlocked(graph, removed);
                    if track {
                        worklist_peak = worklist_peak.max(self.heap.len());
                    }
                }
            }
            Strategy::Randomized { seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                loop {
                    self.collect_moves(graph);
                    if self.moves.is_empty() {
                        break;
                    }
                    if track {
                        worklist_peak = worklist_peak.max(self.moves.len());
                    }
                    self.moves.shuffle(&mut rng);
                    let mv = self.moves[0];
                    let removed = *graph.edge(mv.edge);
                    out.trace.push(self.remove(mv, removed));
                }
            }
        }
        out.remaining_edges.extend(
            graph
                .edges()
                .iter()
                .filter(|e| self.alive[e.id.index()])
                .map(|e| e.id),
        );
        out.feasible = out.remaining_edges.is_empty();
        debug_assert_eq!(out.feasible, self.live_count == 0);
        if track {
            record_reduction_metrics(out, worklist_peak);
        }
    }

    /// [`run_into`](Self::run_into) returning a freshly allocated outcome.
    pub fn run(&mut self, graph: &SequencingGraph, strategy: Strategy) -> ReductionOutcome {
        let mut out = ReductionOutcome::default();
        self.run_into(graph, strategy, &mut out);
        out
    }

    fn seed_worklist(&mut self, graph: &SequencingGraph) {
        for e in graph.edges() {
            if !self.alive[e.id.index()] {
                continue;
            }
            if self.commitment_degree(graph, e.commitment) == 1 {
                let preempted = self.preempted_by_red(graph, e.conjunction, e.id);
                let waiver = graph.commitment(e.commitment).clause2_waiver;
                if !preempted || waiver {
                    self.heap.push(Candidate {
                        edge: e.id,
                        rule1: true,
                    });
                }
            }
            if self.conjunction_degree(graph, e.conjunction) == 1 {
                self.heap.push(Candidate {
                    edge: e.id,
                    rule1: false,
                });
            }
        }
    }

    fn collect_moves(&mut self, graph: &SequencingGraph) {
        self.moves.clear();
        for e in graph.edges() {
            if !self.alive[e.id.index()] {
                continue;
            }
            if self.commitment_degree(graph, e.commitment) == 1 {
                let preempted = self.preempted_by_red(graph, e.conjunction, e.id);
                let waiver = graph.commitment(e.commitment).clause2_waiver;
                if !preempted || waiver {
                    self.moves.push(Move {
                        edge: e.id,
                        rule: Rule::CommitmentFringe,
                        via_clause2: preempted && waiver,
                    });
                }
            }
            if self.conjunction_degree(graph, e.conjunction) == 1 {
                self.moves.push(Move {
                    edge: e.id,
                    rule: Rule::ConjunctionFringe,
                    via_clause2: false,
                });
            }
        }
    }

    fn revalidate(&self, graph: &SequencingGraph, cand: Candidate) -> Option<Move> {
        if !self.alive[cand.edge.index()] {
            return None;
        }
        let e = graph.edge(cand.edge);
        if cand.rule1 {
            if self.commitment_degree(graph, e.commitment) != 1 {
                return None;
            }
            let preempted = self.preempted_by_red(graph, e.conjunction, e.id);
            let waiver = graph.commitment(e.commitment).clause2_waiver;
            if preempted && !waiver {
                return None;
            }
            Some(Move {
                edge: e.id,
                rule: Rule::CommitmentFringe,
                via_clause2: preempted && waiver,
            })
        } else {
            if self.conjunction_degree(graph, e.conjunction) != 1 {
                return None;
            }
            Some(Move {
                edge: e.id,
                rule: Rule::ConjunctionFringe,
                via_clause2: false,
            })
        }
    }

    fn push_unlocked(&mut self, graph: &SequencingGraph, removed: Edge) {
        if self.commitment_degree(graph, removed.commitment) == 1 {
            let survivor = graph
                .commitment_edge_ids(removed.commitment)
                .iter()
                .find(|e| self.alive[e.index()])
                .expect("degree 1 means one live edge");
            self.heap.push(Candidate {
                edge: *survivor,
                rule1: true,
            });
        }
        if self.conjunction_degree(graph, removed.conjunction) == 1 {
            let survivor = graph
                .conjunction_edge_ids(removed.conjunction)
                .iter()
                .find(|e| self.alive[e.index()])
                .expect("degree 1 means one live edge");
            self.heap.push(Candidate {
                edge: *survivor,
                rule1: false,
            });
        }
        if removed.color == EdgeColor::Red {
            for eid in graph.conjunction_edge_ids(removed.conjunction) {
                if !self.alive[eid.index()] {
                    continue;
                }
                let e = graph.edge(*eid);
                if self.commitment_degree(graph, e.commitment) == 1 {
                    self.heap.push(Candidate {
                        edge: e.id,
                        rule1: true,
                    });
                }
            }
        }
    }

    fn remove(&mut self, mv: Move, removed: Edge) -> ReductionStep {
        debug_assert!(self.alive[mv.edge.index()], "removing a dead edge");
        self.alive[mv.edge.index()] = false;
        self.live_count -= 1;
        self.commitment_live[removed.commitment.index()] -= 1;
        self.conjunction_live[removed.conjunction.index()] -= 1;
        if removed.color == EdgeColor::Red {
            self.conjunction_live_red[removed.conjunction.index()] -= 1;
        }
        ReductionStep {
            edge: mv.edge,
            rule: mv.rule,
            via_clause2: mv.via_clause2,
            disconnected_commitment: (self.commitment_live[removed.commitment.index()] == 0)
                .then_some(removed.commitment),
            disconnected_conjunction: (self.conjunction_live[removed.conjunction.index()] == 0)
                .then_some(removed.conjunction),
        }
    }

    fn commitment_degree(&self, graph: &SequencingGraph, id: CommitmentId) -> usize {
        let cached = self.commitment_live[id.index()];
        debug_assert_eq!(
            cached,
            graph
                .commitment_edge_ids(id)
                .iter()
                .filter(|e| self.alive[e.index()])
                .count(),
            "stale scratch commitment_live counter at {id}"
        );
        cached
    }

    fn conjunction_degree(&self, graph: &SequencingGraph, id: ConjunctionId) -> usize {
        let cached = self.conjunction_live[id.index()];
        debug_assert_eq!(
            cached,
            graph
                .conjunction_edge_ids(id)
                .iter()
                .filter(|e| self.alive[e.index()])
                .count(),
            "stale scratch conjunction_live counter at {id}"
        );
        cached
    }

    fn preempted_by_red(
        &self,
        graph: &SequencingGraph,
        conjunction: ConjunctionId,
        except: EdgeId,
    ) -> bool {
        let mut reds = self.conjunction_live_red[conjunction.index()];
        if let Some(e) = graph.edges().get(except.index()) {
            if self.alive[except.index()]
                && e.color == EdgeColor::Red
                && e.conjunction == conjunction
            {
                reds -= 1;
            }
        }
        let preempted = reds > 0;
        debug_assert_eq!(
            preempted,
            graph
                .conjunction_edge_ids(conjunction)
                .iter()
                .filter(|e| self.alive[e.index()])
                .map(|e| graph.edge(*e))
                .any(|e| e.color == EdgeColor::Red && e.id != except),
            "stale scratch conjunction_live_red counter at {conjunction}"
        );
        preempted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::Reducer;

    fn fixture_graphs() -> Vec<SequencingGraph> {
        [
            fixtures::example1().0,
            fixtures::example2().0,
            fixtures::poor_broker().0,
            fixtures::figure7().0,
        ]
        .iter()
        .map(|s| SequencingGraph::from_spec(s).unwrap())
        .collect()
    }

    #[test]
    fn matches_owning_reducer_deterministic() {
        let mut scratch = ScratchReducer::new();
        let mut out = ReductionOutcome::default();
        for graph in fixture_graphs() {
            scratch.run_into(&graph, Strategy::Deterministic, &mut out);
            let reference = Reducer::new(graph.clone()).run();
            assert_eq!(out, reference);
            // And against the rescan oracle.
            assert_eq!(out, Reducer::new(graph).run_naive());
        }
    }

    #[test]
    fn matches_owning_reducer_randomized() {
        let mut scratch = ScratchReducer::new();
        let mut out = ReductionOutcome::default();
        for graph in fixture_graphs() {
            for seed in 0..8 {
                let strategy = Strategy::Randomized { seed };
                scratch.run_into(&graph, strategy, &mut out);
                let reference = Reducer::new(graph.clone()).with_strategy(strategy).run();
                assert_eq!(out, reference, "seed {seed}");
            }
        }
    }

    #[test]
    fn matches_heap_scratch_engine() {
        // The retained PR-4 engine and the bitset/SoA engine agree on
        // every fixture under both strategies.
        let mut bitset = ScratchReducer::new();
        let mut heap = HeapScratchReducer::new();
        let mut a = ReductionOutcome::default();
        let mut b = ReductionOutcome::default();
        for graph in fixture_graphs() {
            bitset.run_into(&graph, Strategy::Deterministic, &mut a);
            heap.run_into(&graph, Strategy::Deterministic, &mut b);
            assert_eq!(a, b);
            for seed in 0..4 {
                let strategy = Strategy::Randomized { seed };
                bitset.run_into(&graph, strategy, &mut a);
                heap.run_into(&graph, strategy, &mut b);
                assert_eq!(a, b, "seed {seed}");
            }
        }
    }

    #[test]
    fn graph_is_untouched_and_runs_are_independent() {
        let graph = SequencingGraph::from_spec(&fixtures::example1().0).unwrap();
        let pristine = graph.clone();
        let mut scratch = ScratchReducer::new();
        let first = scratch.run(&graph, Strategy::Deterministic);
        let second = scratch.run(&graph, Strategy::Deterministic);
        assert_eq!(first, second);
        assert_eq!(graph, pristine);
    }

    #[test]
    fn resumes_from_a_partially_reduced_graph() {
        // reset_for copies the graph's *current* liveness, so a scratch run
        // on a half-reduced graph completes exactly the remaining work.
        let graph = SequencingGraph::from_spec(&fixtures::example1().0).unwrap();
        let mut reducer = Reducer::new(graph);
        let mv = reducer.applicable_moves()[0];
        reducer.apply(mv).unwrap();
        let partial = reducer.graph().clone();
        let mut scratch = ScratchReducer::new();
        let out = scratch.run(&partial, Strategy::Deterministic);
        assert!(out.feasible);
        assert_eq!(out.trace.len(), partial.live_edge_count());
        // The partial graph exercises the packed (non-full) reset path.
        let heap = HeapScratchReducer::new().run(&partial, Strategy::Deterministic);
        assert_eq!(out, heap);
    }
}
