//! A reusable reduction scratchpad: the §4.2 rules over a *borrowed*
//! graph, with zero steady-state heap allocations.
//!
//! [`Reducer`](crate::Reducer) owns its graph and mutates it, which is the
//! right shape for one-shot analysis and for callers that want the reduced
//! graph back. Batch drivers — feasibility sweeps, confluence sampling,
//! the simulation harness — reduce thousands of specs and want none of
//! that: they need the verdict and the trace, and they need the per-spec
//! constant factors to vanish. [`ScratchReducer`] keeps every piece of
//! mutable reduction state (liveness bitmap, cached degree counters, the
//! worklist heap, the rescan move buffer) in buffers it owns and reuses,
//! so after the first run over the largest graph shape, a
//! [`reset_for`](ScratchReducer::reset_for) + [`run_into`](ScratchReducer::run_into)
//! loop performs no heap allocation at all (verified by the counting
//! test allocator in `tests/alloc.rs`).
//!
//! Traces are byte-identical to [`Reducer`](crate::Reducer)'s for both
//! strategies: the worklist heap is seeded in the same live-edge scan
//! order, the enabling events mirror `push_unlocked`, and the randomized
//! path reuses the same rescan-shuffle protocol with the same seeded RNG —
//! so the `run_naive` oracle and every confluence report carry over
//! unchanged. The scratch state mirrors the graph's own cached counters
//! and keeps the same debug-build scan oracles.

use crate::graph::{CommitmentId, ConjunctionId, Edge, EdgeColor, EdgeId, SequencingGraph};
use crate::obs;
use crate::reduce::{record_reduction_metrics, Candidate, Move, ReductionOutcome, Strategy};
use crate::trace::{ReductionStep, Rule};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BinaryHeap;

/// Reusable reduction state: run the reduction rules over `&SequencingGraph`
/// without touching the graph, reusing every internal buffer across runs.
///
/// ```
/// use trustseq_core::{fixtures, ReductionOutcome, ScratchReducer, SequencingGraph, Strategy};
///
/// # fn main() -> Result<(), trustseq_core::CoreError> {
/// let graph = SequencingGraph::from_spec(&fixtures::example1().0)?;
/// let mut scratch = ScratchReducer::default();
/// let mut out = ReductionOutcome::default();
/// scratch.run_into(&graph, Strategy::Deterministic, &mut out);
/// assert!(out.feasible);
/// // The graph itself is untouched and can be reduced again immediately.
/// assert_eq!(graph.live_edge_count(), graph.initial_edge_count());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ScratchReducer {
    alive: Vec<bool>,
    commitment_live: Vec<usize>,
    conjunction_live: Vec<usize>,
    conjunction_live_red: Vec<usize>,
    live_count: usize,
    heap: BinaryHeap<Candidate>,
    moves: Vec<Move>,
}

impl ScratchReducer {
    /// Creates an empty scratchpad. Buffers grow on first use and are
    /// retained afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads `graph`'s current liveness state (bitmap and cached degree
    /// counters) into the scratch buffers, clearing any previous run. After
    /// the buffers have grown to a graph's shape once, resetting for any
    /// graph of equal or smaller shape allocates nothing.
    pub fn reset_for(&mut self, graph: &SequencingGraph) {
        self.alive.clear();
        self.alive.extend_from_slice(graph.alive_slice());
        let (c_live, j_live, j_red) = graph.live_counter_slices();
        self.commitment_live.clear();
        self.commitment_live.extend_from_slice(c_live);
        self.conjunction_live.clear();
        self.conjunction_live.extend_from_slice(j_live);
        self.conjunction_live_red.clear();
        self.conjunction_live_red.extend_from_slice(j_red);
        self.live_count = graph.live_edge_count();
        self.heap.clear();
        self.moves.clear();
    }

    /// Runs a maximal reduction of `graph` under `strategy`, writing the
    /// outcome into `out` (whose buffers are reused). Resets the scratch
    /// state from the graph first, so consecutive calls are independent.
    pub fn run_into(
        &mut self,
        graph: &SequencingGraph,
        strategy: Strategy,
        out: &mut ReductionOutcome,
    ) {
        self.reset_for(graph);
        out.trace.clear();
        out.remaining_edges.clear();
        // Worklist-depth tracking runs only with a recorder installed; the
        // disabled path (a single relaxed load) stays allocation-free, as
        // asserted by the counting allocator in `tests/alloc.rs`.
        let track = obs::enabled();
        let mut worklist_peak = 0usize;
        match strategy {
            Strategy::Deterministic => {
                self.seed_worklist(graph);
                if track {
                    worklist_peak = self.heap.len();
                }
                while let Some(cand) = self.heap.pop() {
                    let Some(mv) = self.revalidate(graph, cand) else {
                        continue;
                    };
                    let removed = *graph.edge(mv.edge);
                    out.trace.push(self.remove(mv, removed));
                    self.push_unlocked(graph, removed);
                    if track {
                        worklist_peak = worklist_peak.max(self.heap.len());
                    }
                }
            }
            Strategy::Randomized { seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                loop {
                    self.collect_moves(graph);
                    if self.moves.is_empty() {
                        break;
                    }
                    if track {
                        worklist_peak = worklist_peak.max(self.moves.len());
                    }
                    self.moves.shuffle(&mut rng);
                    let mv = self.moves[0];
                    let removed = *graph.edge(mv.edge);
                    out.trace.push(self.remove(mv, removed));
                }
            }
        }
        out.remaining_edges.extend(
            graph
                .edges()
                .iter()
                .filter(|e| self.alive[e.id.index()])
                .map(|e| e.id),
        );
        out.feasible = out.remaining_edges.is_empty();
        debug_assert_eq!(out.feasible, self.live_count == 0);
        if track {
            record_reduction_metrics(out, worklist_peak);
        }
    }

    /// [`run_into`](Self::run_into) returning a freshly allocated outcome —
    /// the drop-in replacement for `Reducer::new(graph.clone()).run()` when
    /// the caller needs to keep the result.
    pub fn run(&mut self, graph: &SequencingGraph, strategy: Strategy) -> ReductionOutcome {
        let mut out = ReductionOutcome::default();
        self.run_into(graph, strategy, &mut out);
        out
    }

    /// Seeds the worklist with the currently applicable moves, scanning
    /// live edges in the same ascending-id order as
    /// `Reducer::applicable_moves` so the heap starts from the identical
    /// candidate multiset.
    fn seed_worklist(&mut self, graph: &SequencingGraph) {
        for e in graph.edges() {
            if !self.alive[e.id.index()] {
                continue;
            }
            if self.commitment_degree(graph, e.commitment) == 1 {
                let preempted = self.preempted_by_red(graph, e.conjunction, e.id);
                let waiver = graph.commitment(e.commitment).clause2_waiver;
                if !preempted || waiver {
                    self.heap.push(Candidate {
                        edge: e.id,
                        rule1: true,
                    });
                }
            }
            if self.conjunction_degree(graph, e.conjunction) == 1 {
                self.heap.push(Candidate {
                    edge: e.id,
                    rule1: false,
                });
            }
        }
    }

    /// Mirror of `Reducer::applicable_moves`, rescanning into the reusable
    /// move buffer (the randomized strategy must sample from the whole
    /// applicable set at every step).
    fn collect_moves(&mut self, graph: &SequencingGraph) {
        self.moves.clear();
        for e in graph.edges() {
            if !self.alive[e.id.index()] {
                continue;
            }
            if self.commitment_degree(graph, e.commitment) == 1 {
                let preempted = self.preempted_by_red(graph, e.conjunction, e.id);
                let waiver = graph.commitment(e.commitment).clause2_waiver;
                if !preempted || waiver {
                    self.moves.push(Move {
                        edge: e.id,
                        rule: Rule::CommitmentFringe,
                        via_clause2: preempted && waiver,
                    });
                }
            }
            if self.conjunction_degree(graph, e.conjunction) == 1 {
                self.moves.push(Move {
                    edge: e.id,
                    rule: Rule::ConjunctionFringe,
                    via_clause2: false,
                });
            }
        }
    }

    /// Mirror of `Reducer::revalidate` against the scratch liveness state.
    fn revalidate(&self, graph: &SequencingGraph, cand: Candidate) -> Option<Move> {
        if !self.alive[cand.edge.index()] {
            return None;
        }
        let e = graph.edge(cand.edge);
        if cand.rule1 {
            if self.commitment_degree(graph, e.commitment) != 1 {
                return None;
            }
            let preempted = self.preempted_by_red(graph, e.conjunction, e.id);
            let waiver = graph.commitment(e.commitment).clause2_waiver;
            if preempted && !waiver {
                return None;
            }
            Some(Move {
                edge: e.id,
                rule: Rule::CommitmentFringe,
                via_clause2: preempted && waiver,
            })
        } else {
            if self.conjunction_degree(graph, e.conjunction) != 1 {
                return None;
            }
            Some(Move {
                edge: e.id,
                rule: Rule::ConjunctionFringe,
                via_clause2: false,
            })
        }
    }

    /// Mirror of `Reducer::push_unlocked`: pushes every move that removing
    /// `removed` can newly enable (the three monotone enabling events).
    fn push_unlocked(&mut self, graph: &SequencingGraph, removed: Edge) {
        if self.commitment_degree(graph, removed.commitment) == 1 {
            let survivor = graph
                .commitment_edge_ids(removed.commitment)
                .iter()
                .find(|e| self.alive[e.index()])
                .expect("degree 1 means one live edge");
            self.heap.push(Candidate {
                edge: *survivor,
                rule1: true,
            });
        }
        if self.conjunction_degree(graph, removed.conjunction) == 1 {
            let survivor = graph
                .conjunction_edge_ids(removed.conjunction)
                .iter()
                .find(|e| self.alive[e.index()])
                .expect("degree 1 means one live edge");
            self.heap.push(Candidate {
                edge: *survivor,
                rule1: false,
            });
        }
        if removed.color == EdgeColor::Red {
            for eid in graph.conjunction_edge_ids(removed.conjunction) {
                if !self.alive[eid.index()] {
                    continue;
                }
                let e = graph.edge(*eid);
                if self.commitment_degree(graph, e.commitment) == 1 {
                    self.heap.push(Candidate {
                        edge: e.id,
                        rule1: true,
                    });
                }
            }
        }
    }

    /// Removes `mv.edge` from the scratch liveness state and records the
    /// step. The caller has already revalidated the move.
    fn remove(&mut self, mv: Move, removed: Edge) -> ReductionStep {
        debug_assert!(self.alive[mv.edge.index()], "removing a dead edge");
        self.alive[mv.edge.index()] = false;
        self.live_count -= 1;
        self.commitment_live[removed.commitment.index()] -= 1;
        self.conjunction_live[removed.conjunction.index()] -= 1;
        if removed.color == EdgeColor::Red {
            self.conjunction_live_red[removed.conjunction.index()] -= 1;
        }
        ReductionStep {
            edge: mv.edge,
            rule: mv.rule,
            via_clause2: mv.via_clause2,
            disconnected_commitment: (self.commitment_live[removed.commitment.index()] == 0)
                .then_some(removed.commitment),
            disconnected_conjunction: (self.conjunction_live[removed.conjunction.index()] == 0)
                .then_some(removed.conjunction),
        }
    }

    /// O(1) live degree of a commitment, with the same debug-build scan
    /// oracle discipline as `SequencingGraph::commitment_degree`.
    fn commitment_degree(&self, graph: &SequencingGraph, id: CommitmentId) -> usize {
        let cached = self.commitment_live[id.index()];
        debug_assert_eq!(
            cached,
            graph
                .commitment_edge_ids(id)
                .iter()
                .filter(|e| self.alive[e.index()])
                .count(),
            "stale scratch commitment_live counter at {id}"
        );
        cached
    }

    /// O(1) live degree of a conjunction, oracle-checked in debug builds.
    fn conjunction_degree(&self, graph: &SequencingGraph, id: ConjunctionId) -> usize {
        let cached = self.conjunction_live[id.index()];
        debug_assert_eq!(
            cached,
            graph
                .conjunction_edge_ids(id)
                .iter()
                .filter(|e| self.alive[e.index()])
                .count(),
            "stale scratch conjunction_live counter at {id}"
        );
        cached
    }

    /// The Rule #1 pre-emption test against scratch liveness: any live red
    /// edge other than `except` at the conjunction. O(1) via the cached red
    /// counter, oracle-checked in debug builds.
    fn preempted_by_red(
        &self,
        graph: &SequencingGraph,
        conjunction: ConjunctionId,
        except: EdgeId,
    ) -> bool {
        let mut reds = self.conjunction_live_red[conjunction.index()];
        if let Some(e) = graph.edges().get(except.index()) {
            if self.alive[except.index()]
                && e.color == EdgeColor::Red
                && e.conjunction == conjunction
            {
                reds -= 1;
            }
        }
        let preempted = reds > 0;
        debug_assert_eq!(
            preempted,
            graph
                .conjunction_edge_ids(conjunction)
                .iter()
                .filter(|e| self.alive[e.index()])
                .map(|e| graph.edge(*e))
                .any(|e| e.color == EdgeColor::Red && e.id != except),
            "stale scratch conjunction_live_red counter at {conjunction}"
        );
        preempted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::Reducer;

    fn fixture_graphs() -> Vec<SequencingGraph> {
        [
            fixtures::example1().0,
            fixtures::example2().0,
            fixtures::poor_broker().0,
            fixtures::figure7().0,
        ]
        .iter()
        .map(|s| SequencingGraph::from_spec(s).unwrap())
        .collect()
    }

    #[test]
    fn matches_owning_reducer_deterministic() {
        let mut scratch = ScratchReducer::new();
        let mut out = ReductionOutcome::default();
        for graph in fixture_graphs() {
            scratch.run_into(&graph, Strategy::Deterministic, &mut out);
            let reference = Reducer::new(graph.clone()).run();
            assert_eq!(out, reference);
            // And against the rescan oracle.
            assert_eq!(out, Reducer::new(graph).run_naive());
        }
    }

    #[test]
    fn matches_owning_reducer_randomized() {
        let mut scratch = ScratchReducer::new();
        let mut out = ReductionOutcome::default();
        for graph in fixture_graphs() {
            for seed in 0..8 {
                let strategy = Strategy::Randomized { seed };
                scratch.run_into(&graph, strategy, &mut out);
                let reference = Reducer::new(graph.clone()).with_strategy(strategy).run();
                assert_eq!(out, reference, "seed {seed}");
            }
        }
    }

    #[test]
    fn graph_is_untouched_and_runs_are_independent() {
        let graph = SequencingGraph::from_spec(&fixtures::example1().0).unwrap();
        let pristine = graph.clone();
        let mut scratch = ScratchReducer::new();
        let first = scratch.run(&graph, Strategy::Deterministic);
        let second = scratch.run(&graph, Strategy::Deterministic);
        assert_eq!(first, second);
        assert_eq!(graph, pristine);
    }

    #[test]
    fn resumes_from_a_partially_reduced_graph() {
        // reset_for copies the graph's *current* liveness, so a scratch run
        // on a half-reduced graph completes exactly the remaining work.
        let graph = SequencingGraph::from_spec(&fixtures::example1().0).unwrap();
        let mut reducer = Reducer::new(graph);
        let mv = reducer.applicable_moves()[0];
        reducer.apply(mv).unwrap();
        let partial = reducer.graph().clone();
        let mut scratch = ScratchReducer::new();
        let out = scratch.run(&partial, Strategy::Deterministic);
        assert!(out.feasible);
        assert_eq!(out.trace.len(), partial.live_edge_count());
    }
}
