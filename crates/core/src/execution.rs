//! Execution-sequence recovery (§5): turning a successful reduction trace
//! into a total order of transfers and notifications that protects every
//! participant.

use crate::graph::{CommitmentId, SequencingGraph};
use crate::reduce::ReductionOutcome;
use crate::CoreError;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use trustseq_model::{
    Action, AgentId, DealId, DealSide, ExchangeSpec, ExchangeState, ItemId, Outcome,
};

/// What kind of protocol step an [`ExecutionStep`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StepKind {
    /// An indemnity provider deposits collateral with the holding trusted
    /// component (index into [`ExchangeSpec::indemnities`]).
    IndemnityDeposit(usize),
    /// A principal deposits its side of a deal with the trusted component.
    Deposit(CommitmentId),
    /// A trusted component notifies a principal that the other sides are in
    /// place.
    Notify,
    /// A trusted component forwards a held asset to its destination.
    Forward(DealId),
    /// A bridged deal's seller-side component relays the held item to the
    /// buyer-side component (§9's hierarchy of trust).
    Relay(DealId),
    /// A trusted component refunds an indemnity after the covered deal
    /// completed.
    IndemnityRefund(usize),
}

/// One step of a synthesised execution sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionStep {
    /// The participant performing the step.
    pub actor: AgentId,
    /// The action performed.
    pub action: Action,
    /// The step's role in the protocol.
    pub kind: StepKind,
}

impl fmt::Display for ExecutionStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.action)
    }
}

/// A total order of pairwise transfers and notifications implementing a
/// feasible distributed exchange (§5).
///
/// Produced by [`recover_execution`]; consumed by the protocol synthesiser
/// and the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionSequence {
    steps: Vec<ExecutionStep>,
}

impl ExecutionSequence {
    /// The steps in execution order.
    pub fn steps(&self) -> &[ExecutionStep] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The actions of the sequence, in order.
    pub fn actions(&self) -> impl Iterator<Item = Action> + '_ {
        self.steps.iter().map(|s| s.action)
    }

    /// The final state reached when every step executes.
    pub fn final_state(&self) -> ExchangeState {
        self.actions().collect()
    }

    /// Number of messages exchanged (every step is one message; see §8's
    /// cost-of-mistrust accounting).
    pub fn message_count(&self) -> usize {
        self.steps.len()
    }

    /// Renders the sequence in the numbered style of §5's worked example.
    pub fn describe(&self, spec: &ExchangeSpec) -> Vec<String> {
        let name = |a: AgentId| -> String {
            spec.participant(a)
                .map(|p| p.name().to_owned())
                .unwrap_or_else(|_| a.to_string())
        };
        self.steps
            .iter()
            .map(|s| match s.action {
                Action::Give { from, to, item } => {
                    let title = spec
                        .item(item)
                        .map(|i| i.key().to_owned())
                        .unwrap_or_else(|_| item.to_string());
                    format!("{} sends {} to {}", name(from), title, name(to))
                }
                Action::Pay { from, to, amount } => {
                    format!("{} sends {} to {}", name(from), amount, name(to))
                }
                Action::InversePay { from, to, amount } => {
                    format!("{} refunds {} to {}", name(to), amount, name(from))
                }
                Action::InverseGive { from, to, item } => {
                    let title = spec
                        .item(item)
                        .map(|i| i.key().to_owned())
                        .unwrap_or_else(|_| item.to_string());
                    format!("{} returns {} to {}", name(to), title, name(from))
                }
                Action::Notify { from, to } => {
                    format!("{} notifies {}", name(from), name(to))
                }
            })
            .collect()
    }

    /// The minimal escrow deadline (in protocol ticks) each trusted
    /// component must grant for this sequence to complete: the longest gap
    /// between a deposit it receives and its last expected deposit.
    ///
    /// §2.2 assumes deadlines "always sufficiently generous"; this computes
    /// exactly how generous, so the deposit messages can carry concrete
    /// expiry times. The simulator's deadline boundary tests confirm the
    /// derived values.
    ///
    /// ```
    /// use trustseq_core::{fixtures, synthesize};
    ///
    /// # fn main() -> Result<(), trustseq_core::CoreError> {
    /// let (spec, ids) = fixtures::example1();
    /// let deadlines = synthesize(&spec)?.required_deadlines(&spec);
    /// assert_eq!(deadlines[&ids.t1], 5); // money held from tick 3 to 8
    /// # Ok(())
    /// # }
    /// ```
    pub fn required_deadlines(&self, spec: &ExchangeSpec) -> BTreeMap<AgentId, u64> {
        // Tick of each deposit, grouped by the receiving component's
        // trusted-link group.
        let mut first_deposit: BTreeMap<AgentId, u64> = BTreeMap::new();
        let mut last_deposit: BTreeMap<AgentId, u64> = BTreeMap::new();
        for (i, step) in self.steps.iter().enumerate() {
            if matches!(step.kind, StepKind::Deposit(_)) {
                let group = spec.trusted_group_of(step.action.recipient());
                let tick = i as u64 + 1;
                first_deposit.entry(group).or_insert(tick);
                last_deposit.insert(group, tick);
            }
        }
        first_deposit
            .into_iter()
            .map(|(group, first)| (group, last_deposit[&group] - first))
            .collect()
    }

    /// Verifies the sequence end to end:
    ///
    /// 1. replaying item holdings confirms nobody sends an item it does not
    ///    hold (the §2.4 practicality constraints);
    /// 2. the final state classifies as [`Outcome::Preferred`] for every
    ///    principal.
    ///
    /// # Errors
    ///
    /// [`CoreError::ScheduleStuck`] when an item transfer is not physically
    /// realisable, [`CoreError::UnacceptableOutcome`] when a principal does
    /// not end in its preferred state.
    pub fn verify(&self, spec: &ExchangeSpec) -> Result<(), CoreError> {
        // 1. Item-flow replay. Transfers routed inside a shared escrow
        // (§9 extension) are virtual: the component keeps the item.
        let internal = spec.internal_transfers();
        let mut holdings = initial_holdings(spec);
        for step in &self.steps {
            if let Action::Give { from, to, item } = step.action {
                if internal.contains(&(from, to, item)) {
                    continue;
                }
                if holdings.get(&(from, item)).copied().unwrap_or(0) == 0 {
                    // Compose from components if an assembly allows (§3.2).
                    match assembly_ready(spec, &holdings, from, item) {
                        Some(assembly) => {
                            let inputs = assembly.inputs.clone();
                            for input in inputs {
                                *holdings.entry((from, input)).or_insert(0) -= 1;
                            }
                            *holdings.entry((from, item)).or_insert(0) += 1;
                        }
                        None => {
                            return Err(CoreError::ScheduleStuck {
                                unscheduled: Vec::new(),
                            })
                        }
                    }
                }
                let n = holdings.entry((from, item)).or_insert(0);
                *n -= 1;
                *holdings.entry((to, item)).or_insert(0) += 1;
            }
        }
        // 2. Acceptability.
        let final_state = self.final_state();
        for accept in spec.acceptance_specs() {
            if accept.classify(&final_state) != Outcome::Preferred {
                return Err(CoreError::UnacceptableOutcome {
                    party: accept.party(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for ExecutionSequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.steps.iter().enumerate() {
            writeln!(f, "{:>3}. {s}", i + 1)?;
        }
        Ok(())
    }
}

/// Initial item holdings: an agent starts with as many copies of an item as
/// it sells beyond what it buys (sources can replicate their own goods) —
/// except assembly outputs, which the assembler composes rather than
/// originally holds.
fn initial_holdings(spec: &ExchangeSpec) -> BTreeMap<(AgentId, ItemId), u32> {
    let mut balance: BTreeMap<(AgentId, ItemId), i64> = BTreeMap::new();
    for d in spec.deals() {
        *balance.entry((d.seller(), d.item())).or_insert(0) += 1;
        *balance.entry((d.buyer(), d.item())).or_insert(0) -= 1;
    }
    for a in spec.assemblies() {
        balance.remove(&(a.assembler, a.output));
    }
    balance
        .into_iter()
        .filter(|&(_, n)| n > 0)
        .map(|(k, n)| (k, n as u32))
        .collect()
}

/// Whether `assembler` can compose `item` right now, and if so which inputs
/// it would consume.
fn assembly_ready<'a>(
    spec: &'a ExchangeSpec,
    holdings: &BTreeMap<(AgentId, ItemId), u32>,
    assembler: AgentId,
    item: ItemId,
) -> Option<&'a trustseq_model::Assembly> {
    spec.assembly_of(assembler, item).filter(|a| {
        a.inputs
            .iter()
            .all(|&i| holdings.get(&(assembler, i)).copied().unwrap_or(0) > 0)
    })
}

/// An event queued for scheduling.
#[derive(Debug, Clone, Copy)]
enum PendingEvent {
    Deposit(CommitmentId),
    Notify {
        trusted: AgentId,
        principal: AgentId,
    },
}

/// Recovers the execution sequence of a feasible exchange (§5).
///
/// Pairwise deposits execute in the order their commitment nodes became
/// disconnected during reduction; a `notify` is generated when a trusted
/// component's conjunction is disconnected. When a trusted component holds
/// every deposit it expects, it forwards items to buyers and payments to
/// sellers. Indemnity collateral is deposited before everything else and
/// refunded after everything else.
///
/// Deposits are additionally gated on *physical availability*: a principal
/// can only deposit an item it currently holds. This is what realises §5's
/// "committed first, executed last" rule for **red** commitments — a
/// reseller's delivery, though committed early, cannot execute until its
/// supply has been forwarded — and on the paper's Example #1 it reproduces
/// the ten-step sequence of §5 exactly. (A broker with direct-trust access
/// to its source may deliver *before* its buyer pays, matching §4.2.3's
/// "risk-free access" narration.)
///
/// # Errors
///
/// * [`CoreError::Infeasible`] when the outcome is not feasible;
/// * [`CoreError::ScheduleStuck`] if no physically executable order exists
///   (indicates an ill-formed specification, e.g. an item resold but never
///   acquired).
pub fn recover_execution(
    spec: &ExchangeSpec,
    graph: &SequencingGraph,
    outcome: &ReductionOutcome,
) -> Result<ExecutionSequence, CoreError> {
    if !outcome.feasible {
        return Err(CoreError::Infeasible {
            remaining_edges: outcome.remaining_edges.len(),
        });
    }

    // Replay the trace into a priority list of events.
    let mut priority: Vec<PendingEvent> = Vec::new();
    for step in outcome.trace.steps() {
        // When one removal disconnects both a conjunction and the final
        // commitment, the notification precedes the deposit: "the exchange
        // will be completed as soon as the notified principal complies"
        // (§2.5).
        if let Some(j) = step.disconnected_conjunction {
            let conj = graph.conjunction(j);
            if conj.trusted {
                // Notify the principal of the commitment whose edge removal
                // disconnected the conjunction.
                let c = graph.commitment(graph.edge(step.edge).commitment);
                priority.push(PendingEvent::Notify {
                    trusted: conj.agent,
                    principal: c.principal,
                });
            }
        }
        if let Some(c) = step.disconnected_commitment {
            priority.push(PendingEvent::Deposit(c));
        }
    }

    schedule(spec, graph, priority)
}

/// Greedy availability-aware scheduling of the priority event list.
fn schedule(
    spec: &ExchangeSpec,
    graph: &SequencingGraph,
    mut pending: Vec<PendingEvent>,
) -> Result<ExecutionSequence, CoreError> {
    let mut steps: Vec<ExecutionStep> = Vec::new();
    let mut holdings = initial_holdings(spec);
    // Item hops routed inside a shared escrow are virtual (§9 extension).
    let internal = spec.internal_transfers();

    // Indemnity deposits come first.
    for (i, ind) in spec.indemnities().iter().enumerate() {
        steps.push(ExecutionStep {
            actor: ind.provider,
            action: Action::pay(ind.provider, ind.via, ind.amount),
            kind: StepKind::IndemnityDeposit(i),
        });
    }

    // Deposits each trusted-link group expects: all commitments naming any
    // member (for unlinked components the group is the component itself).
    let mut expected: BTreeMap<AgentId, BTreeSet<CommitmentId>> = BTreeMap::new();
    for c in graph.commitments() {
        expected
            .entry(spec.trusted_group_of(c.trusted))
            .or_default()
            .insert(c.id);
    }
    let mut deposited: BTreeMap<AgentId, BTreeSet<CommitmentId>> = BTreeMap::new();

    while !pending.is_empty() {
        let mut chosen: Option<usize> = None;
        for (idx, ev) in pending.iter().enumerate() {
            match *ev {
                PendingEvent::Notify { trusted, principal } => {
                    // A trusted component may notify once every deposit it
                    // expects from *other* principals has arrived.
                    let ready = expected[&trusted].iter().all(|&cid| {
                        let c = graph.commitment(cid);
                        c.principal == principal
                            || deposited
                                .get(&trusted)
                                .is_some_and(|set| set.contains(&cid))
                    });
                    if ready {
                        chosen = Some(idx);
                        break;
                    }
                }
                PendingEvent::Deposit(cid) => {
                    let c = graph.commitment(cid);
                    let available = match c.side {
                        DealSide::Buyer => true, // principals are cash-solvent
                        DealSide::Seller => {
                            let item = spec.deal(c.deal)?.item();
                            if internal.contains(&(c.principal, c.trusted, item)) {
                                // Internal hop: the escrow itself must hold
                                // the item (deposited by the upstream
                                // seller).
                                holdings.get(&(c.trusted, item)).copied().unwrap_or(0) > 0
                            } else {
                                holdings.get(&(c.principal, item)).copied().unwrap_or(0) > 0
                                    || assembly_ready(spec, &holdings, c.principal, item).is_some()
                            }
                        }
                    };
                    if available {
                        chosen = Some(idx);
                        break;
                    }
                }
            }
        }
        let Some(idx) = chosen else {
            let unscheduled = pending
                .iter()
                .filter_map(|ev| match ev {
                    PendingEvent::Deposit(c) => Some(*c),
                    PendingEvent::Notify { .. } => None,
                })
                .collect();
            return Err(CoreError::ScheduleStuck { unscheduled });
        };
        match pending.remove(idx) {
            PendingEvent::Notify { trusted, principal } => {
                steps.push(ExecutionStep {
                    actor: trusted,
                    action: Action::notify(trusted, principal),
                    kind: StepKind::Notify,
                });
            }
            PendingEvent::Deposit(cid) => {
                let c = *graph.commitment(cid);
                let deal = *spec.deal(c.deal)?;
                let action = match c.side {
                    DealSide::Buyer => Action::pay(c.principal, c.trusted, deal.price()),
                    DealSide::Seller => {
                        if !internal.contains(&(c.principal, c.trusted, deal.item())) {
                            if holdings
                                .get(&(c.principal, deal.item()))
                                .copied()
                                .unwrap_or(0)
                                == 0
                            {
                                // Compose the item from its components
                                // (§3.2) — inputs are consumed, the fresh
                                // output goes straight into escrow.
                                let assembly =
                                    assembly_ready(spec, &holdings, c.principal, deal.item())
                                        .expect("availability was checked")
                                        .clone();
                                for input in &assembly.inputs {
                                    *holdings.entry((c.principal, *input)).or_insert(0) -= 1;
                                }
                                *holdings.entry((c.principal, deal.item())).or_insert(0) += 1;
                            }
                            let slot = holdings.entry((c.principal, deal.item())).or_insert(0);
                            *slot -= 1;
                            *holdings.entry((c.trusted, deal.item())).or_insert(0) += 1;
                        }
                        Action::give(c.principal, c.trusted, deal.item())
                    }
                };
                steps.push(ExecutionStep {
                    actor: c.principal,
                    action,
                    kind: StepKind::Deposit(cid),
                });
                let group = spec.trusted_group_of(c.trusted);
                let set = deposited.entry(group).or_default();
                set.insert(cid);
                // Completion: the trusted group forwards everything.
                if set.len() == expected[&group].len() {
                    for d in spec.deals_via_group(group) {
                        // A bridged deal's item is relayed from the
                        // seller-side component to the buyer-side one.
                        if d.is_bridged() {
                            let slot = holdings
                                .entry((d.seller_intermediary(), d.item()))
                                .or_insert(0);
                            debug_assert!(*slot > 0, "relay source must hold the item");
                            *slot -= 1;
                            *holdings.entry((d.intermediary(), d.item())).or_insert(0) += 1;
                            steps.push(ExecutionStep {
                                actor: d.seller_intermediary(),
                                action: Action::give(
                                    d.seller_intermediary(),
                                    d.intermediary(),
                                    d.item(),
                                ),
                                kind: StepKind::Relay(d.id()),
                            });
                        }
                        if !internal.contains(&(d.intermediary(), d.buyer(), d.item())) {
                            let slot = holdings.entry((d.intermediary(), d.item())).or_insert(0);
                            debug_assert!(*slot > 0, "escrow must hold the item it forwards");
                            *slot -= 1;
                            *holdings.entry((d.buyer(), d.item())).or_insert(0) += 1;
                        }
                        steps.push(ExecutionStep {
                            actor: d.intermediary(),
                            action: Action::give(d.intermediary(), d.buyer(), d.item()),
                            kind: StepKind::Forward(d.id()),
                        });
                    }
                    for d in spec.deals_via_group(group) {
                        steps.push(ExecutionStep {
                            actor: d.intermediary(),
                            action: Action::pay(d.intermediary(), d.seller(), d.price()),
                            kind: StepKind::Forward(d.id()),
                        });
                    }
                }
            }
        }
    }

    // Indemnity refunds close the protocol.
    for (i, ind) in spec.indemnities().iter().enumerate() {
        steps.push(ExecutionStep {
            actor: ind.via,
            action: Action::pay(ind.provider, ind.via, ind.amount)
                .inverse()
                .expect("pay invertible"),
            kind: StepKind::IndemnityRefund(i),
        });
    }

    Ok(ExecutionSequence { steps })
}

/// One-call helper: builds the sequencing graph, reduces it, and recovers
/// the execution sequence.
///
/// # Errors
///
/// [`CoreError::Infeasible`] when the exchange has no feasible sequence;
/// construction and scheduling errors otherwise.
pub fn synthesize(spec: &ExchangeSpec) -> Result<ExecutionSequence, CoreError> {
    synthesize_with(spec, crate::BuildOptions::PAPER)
}

/// Like [`synthesize`], but with explicit
/// [`BuildOptions`](crate::BuildOptions) — use
/// [`BuildOptions::EXTENDED`](crate::BuildOptions::EXTENDED) for exchanges
/// that are only feasible under the §9 shared-escrow delegation semantics.
///
/// # Errors
///
/// As for [`synthesize`].
pub fn synthesize_with(
    spec: &ExchangeSpec,
    options: crate::BuildOptions,
) -> Result<ExecutionSequence, CoreError> {
    let graph = SequencingGraph::from_spec_with(spec, options)?;
    // Reduce through a scratch reducer: recovery needs the *unreduced*
    // graph, and the scratch engine leaves it untouched without a clone.
    let outcome = crate::ScratchReducer::new().run(&graph, crate::Strategy::Deterministic);
    recover_execution(spec, &graph, &outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use trustseq_model::Money;

    #[test]
    fn example1_reproduces_the_papers_ten_steps() {
        let (spec, _) = fixtures::example1();
        let seq = synthesize(&spec).unwrap();
        let lines = seq.describe(&spec);
        assert_eq!(
            lines,
            vec![
                "producer sends doc to t2",
                "t2 notifies broker",
                "consumer sends $100.00 to t1",
                "t1 notifies broker",
                "broker sends $80.00 to t2",
                "t2 sends doc to broker",
                "t2 sends $80.00 to producer",
                "broker sends doc to t1",
                "t1 sends doc to consumer",
                "t1 sends $100.00 to broker",
            ]
        );
        assert_eq!(seq.message_count(), 10);
    }

    #[test]
    fn example1_sequence_verifies() {
        let (spec, _) = fixtures::example1();
        let seq = synthesize(&spec).unwrap();
        seq.verify(&spec).unwrap();
    }

    #[test]
    fn infeasible_exchange_has_no_sequence() {
        let (spec, _) = fixtures::example2();
        let err = synthesize(&spec).unwrap_err();
        assert!(matches!(
            err,
            CoreError::Infeasible {
                remaining_edges: 10
            }
        ));
    }

    #[test]
    fn direct_trust_variant_synthesises_and_verifies() {
        let (mut spec, ids) = fixtures::example2();
        spec.add_trust(ids.source1, ids.broker1).unwrap();
        let seq = synthesize(&spec).unwrap();
        seq.verify(&spec).unwrap();
        // Every deal is executed: 8 deposits + 8 forwards + notifies.
        let deposits = seq
            .steps()
            .iter()
            .filter(|s| matches!(s.kind, StepKind::Deposit(_)))
            .count();
        assert_eq!(deposits, 8);
    }

    #[test]
    fn indemnified_example2_synthesises_with_collateral_bracketing() {
        let (mut spec, ids) = fixtures::example2();
        spec.add_indemnity(ids.broker1, ids.sale1, Money::from_dollars(20))
            .unwrap();
        let seq = synthesize(&spec).unwrap();
        seq.verify(&spec).unwrap();
        // First step: collateral deposit; last step: its refund.
        assert!(matches!(
            seq.steps().first().unwrap().kind,
            StepKind::IndemnityDeposit(0)
        ));
        assert!(matches!(
            seq.steps().last().unwrap().kind,
            StepKind::IndemnityRefund(0)
        ));
    }

    #[test]
    fn resale_items_flow_before_redelivery() {
        // In every synthesised sequence, the broker receives the document
        // before sending it onward.
        let (spec, ids) = fixtures::example1();
        let seq = synthesize(&spec).unwrap();
        let actions: Vec<Action> = seq.actions().collect();
        let received = actions
            .iter()
            .position(|a| *a == Action::give(ids.t2, ids.broker, ids.doc))
            .unwrap();
        let redelivered = actions
            .iter()
            .position(|a| *a == Action::give(ids.broker, ids.t1, ids.doc))
            .unwrap();
        assert!(received < redelivered);
    }

    #[test]
    fn final_state_is_preferred_for_all() {
        let (spec, _) = fixtures::example1();
        let seq = synthesize(&spec).unwrap();
        let state = seq.final_state();
        for accept in spec.acceptance_specs() {
            assert_eq!(accept.classify(&state), Outcome::Preferred);
        }
    }

    #[test]
    fn initial_holdings_give_sources_their_goods() {
        let (spec, ids) = fixtures::example1();
        let holdings = initial_holdings(&spec);
        assert_eq!(holdings.get(&(ids.producer, ids.doc)), Some(&1));
        // The broker nets to zero: it buys and sells the same document.
        assert_eq!(holdings.get(&(ids.broker, ids.doc)), None);
    }

    #[test]
    fn display_and_describe_have_one_line_per_step() {
        let (spec, _) = fixtures::example1();
        let seq = synthesize(&spec).unwrap();
        assert_eq!(seq.describe(&spec).len(), seq.len());
        assert_eq!(seq.to_string().lines().count(), seq.len());
        assert!(!seq.is_empty());
    }

    #[test]
    fn shared_escrow_synthesises_with_internal_routing() {
        let (spec, ids) = fixtures::example2_shared_escrow();
        let seq = synthesize_with(&spec, crate::BuildOptions::EXTENDED).unwrap();
        seq.verify(&spec).unwrap();
        // The document hops through the brokers are present in the
        // abstract sequence (the escrow routes them internally).
        let actions: Vec<Action> = seq.actions().collect();
        assert!(actions.contains(&Action::give(ids.broker1, ids.escrow, ids.doc1)));
        assert!(actions.contains(&Action::give(ids.escrow, ids.consumer, ids.doc1)));
        // Final state is preferred for every principal.
        let state = seq.final_state();
        for accept in spec.acceptance_specs() {
            assert_eq!(accept.classify(&state), Outcome::Preferred);
        }
    }

    #[test]
    fn required_deadlines_match_the_simulated_boundary() {
        // Example #1: t1 first holds the consumer's money at tick 3 and
        // completes with the broker's document at tick 8 → it must grant 5
        // ticks; t2 holds from tick 1 to tick 5 → 4 ticks. The simulator's
        // deadline-boundary test confirms 5 is the protocol-wide minimum.
        let (spec, ids) = fixtures::example1();
        let seq = synthesize(&spec).unwrap();
        let deadlines = seq.required_deadlines(&spec);
        assert_eq!(deadlines[&ids.t1], 5);
        assert_eq!(deadlines[&ids.t2], 4);
        assert_eq!(deadlines.values().copied().max(), Some(5));
    }

    #[test]
    fn multi_copy_information_goods() {
        // A producer sells *copies* of the same document to two customers:
        // the initial-holdings accounting gives the net seller one copy
        // per sale, and both exchanges verify end to end.
        let mut spec = trustseq_model::ExchangeSpec::new("copies");
        let p = spec
            .add_principal("producer", trustseq_model::Role::Producer)
            .unwrap();
        let c1 = spec
            .add_principal("alice", trustseq_model::Role::Consumer)
            .unwrap();
        let c2 = spec
            .add_principal("bob", trustseq_model::Role::Consumer)
            .unwrap();
        let t1 = spec.add_trusted("t1").unwrap();
        let t2 = spec.add_trusted("t2").unwrap();
        let doc = spec.add_item("doc", "Doc").unwrap();
        spec.add_deal(p, c1, t1, doc, trustseq_model::Money::from_dollars(5))
            .unwrap();
        spec.add_deal(p, c2, t2, doc, trustseq_model::Money::from_dollars(7))
            .unwrap();
        assert_eq!(initial_holdings(&spec).get(&(p, doc)), Some(&2));
        let seq = synthesize(&spec).unwrap();
        seq.verify(&spec).unwrap();
        // Both customers end up with a copy.
        let gives = seq
            .actions()
            .filter(|a| matches!(a, Action::Give { to, .. } if *to == c1 || *to == c2))
            .count();
        assert_eq!(gives, 2);
    }

    #[test]
    fn patent_assembly_synthesises_and_verifies() {
        let (spec, ids) = fixtures::patent_assembly();
        assert!(crate::analyze(&spec).unwrap().feasible);
        let seq = synthesize(&spec).unwrap();
        seq.verify(&spec).unwrap();
        // The publisher never originally holds the patent; the composed
        // copy appears exactly once, as the delivery into escrow, and only
        // after both components were forwarded to the publisher.
        let actions: Vec<Action> = seq.actions().collect();
        let deliver = actions
            .iter()
            .position(|a| *a == Action::give(ids.publisher, ids.t_sale, ids.patent))
            .expect("publisher deposits the assembled patent");
        let got_text = actions
            .iter()
            .position(|a| *a == Action::give(ids.t_text, ids.publisher, ids.text))
            .expect("publisher receives the text");
        let got_diagrams = actions
            .iter()
            .position(|a| *a == Action::give(ids.t_diagrams, ids.publisher, ids.diagrams))
            .expect("publisher receives the diagrams");
        assert!(got_text < deliver && got_diagrams < deliver);
    }

    #[test]
    fn assembly_without_components_gets_stuck_in_verify() {
        // A hand-built sequence delivering the patent before acquiring the
        // components fails the item-flow replay.
        let (spec, ids) = fixtures::patent_assembly();
        let seq = ExecutionSequence {
            steps: vec![ExecutionStep {
                actor: ids.publisher,
                action: Action::give(ids.publisher, ids.t_sale, ids.patent),
                kind: StepKind::Deposit(CommitmentId::new(1)),
            }],
        };
        assert!(matches!(
            seq.verify(&spec),
            Err(CoreError::ScheduleStuck { .. })
        ));
    }

    #[test]
    fn cross_domain_sale_synthesises_with_relay() {
        let (spec, ids) = fixtures::cross_domain_sale();
        let seq = synthesize(&spec).unwrap();
        seq.verify(&spec).unwrap();
        let lines = seq.describe(&spec);
        // producer deposits east, item relayed west, delivered; payment
        // west-side to producer: 5 messages.
        assert_eq!(
            lines,
            vec![
                "producer sends doc to t_east",
                "t_west notifies consumer",
                "consumer sends $25.00 to t_west",
                "t_east sends doc to t_west",
                "t_west sends doc to consumer",
                "t_west sends $25.00 to producer",
            ]
        );
        assert!(seq
            .steps()
            .iter()
            .any(|s| matches!(s.kind, StepKind::Relay(d) if d == ids.deal)));
    }

    #[test]
    fn unbridged_cross_domain_is_rejected() {
        // Without a trusted link, a bridged deal cannot even be declared.
        let mut spec = trustseq_model::ExchangeSpec::new("x");
        let p = spec
            .add_principal("p", trustseq_model::Role::Producer)
            .unwrap();
        let c = spec
            .add_principal("c", trustseq_model::Role::Consumer)
            .unwrap();
        let t1 = spec.add_trusted("t1").unwrap();
        let t2 = spec.add_trusted("t2").unwrap();
        let i = spec.add_item("i", "I").unwrap();
        assert!(matches!(
            spec.add_deal_bridged(p, c, t1, t2, i, trustseq_model::Money::from_dollars(1)),
            Err(trustseq_model::ModelError::UnlinkedBridge { .. })
        ));
    }

    #[test]
    fn shared_escrow_infeasible_without_extension() {
        let (spec, _) = fixtures::example2_shared_escrow();
        assert!(matches!(
            synthesize(&spec),
            Err(CoreError::Infeasible { .. })
        ));
    }

    #[test]
    fn verify_catches_unavailable_item() {
        // A hand-built sequence where the broker gives the doc before
        // receiving it must fail verification.
        let (spec, ids) = fixtures::example1();
        let seq = ExecutionSequence {
            steps: vec![ExecutionStep {
                actor: ids.broker,
                action: Action::give(ids.broker, ids.t1, ids.doc),
                kind: StepKind::Deposit(CommitmentId::new(1)),
            }],
        };
        assert!(matches!(
            seq.verify(&spec),
            Err(CoreError::ScheduleStuck { .. })
        ));
    }
}
