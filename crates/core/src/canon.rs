//! Canonical graph fingerprinting: a label-invariant structural certificate
//! for [`SequencingGraph`]s.
//!
//! The feasibility test of §4 is pure graph structure — two sequencing
//! graphs that differ only in how their commitment, conjunction and edge
//! ids were assigned reduce identically. This module computes a *canonical
//! form* of that structure (a deterministic relabelling driven by colour
//! refinement over node kind, degree, edge colour and the clause-2 waiver,
//! with individualization to break symmetric ties) and condenses it into a
//! stable 128-bit [`Fingerprint`].
//!
//! Soundness: the certificate encodes the *entire* live structure (every
//! edge with its endpoints' canonical ranks, its colour and its
//! commitment's waiver bit), so byte-equal certificates imply isomorphic
//! graphs — a shared fingerprint can only arise from genuinely
//! interchangeable structures (or a 2⁻¹²⁸ hash collision, which the
//! [`cache`](crate::cache) guards with sampled debug re-reductions).
//! Completeness is best-effort: the individualization search prunes
//! branches by refined-colour signature, so pathological
//! refinement-indistinguishable graphs may canonicalize differently under
//! different input labellings. That costs a cache *miss*, never a wrong
//! answer.

use crate::csr::Csr;
use crate::graph::{
    Commitment, CommitmentId, Conjunction, ConjunctionId, Edge, EdgeColor, EdgeId, SequencingGraph,
};
use crate::reduce::ReductionOutcome;
use crate::trace::ReductionTrace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A stable 128-bit hash of a sequencing graph's canonical form.
///
/// Equal fingerprints identify structurally identical (label-invariant)
/// graphs; the hash is a pure function of the canonical certificate, so it
/// is stable across runs, platforms and processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Fingerprint(u128);

impl Fingerprint {
    /// The raw 128-bit value (shard selection keys off the low bits).
    pub const fn as_u128(self) -> u128 {
        self.0
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// splitmix64-style finalizer: the stable mixing primitive behind every
/// colour and the final fingerprint. Not seeded by process state.
fn mix(h: u64, v: u64) -> u64 {
    let mut x = h ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Canonical relabelling of a graph's live structure: for each node and
/// edge kind, position `k` holds the original id assigned canonical rank
/// `k`. Produced by [`canonicalize`]; consumed by the analysis cache to
/// move reduction outcomes between label spaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalForm {
    fingerprint: Fingerprint,
    commitments: Vec<CommitmentId>,
    conjunctions: Vec<ConjunctionId>,
    edges: Vec<EdgeId>,
}

impl CanonicalForm {
    /// The structural fingerprint.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// Number of live edges covered by the canonical form.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Rebuilds `graph`'s live structure under canonical labels: commitment
    /// `k` of the result is the original commitment at canonical rank `k`,
    /// and likewise for conjunctions and edges. Non-structural node
    /// attributes (agents, deals, sides) are carried over verbatim — the
    /// reducer never reads them.
    ///
    /// # Panics
    ///
    /// Panics if `self` was not computed from `graph` (or an identically
    /// labelled graph).
    pub fn canonical_graph(&self, graph: &SequencingGraph) -> SequencingGraph {
        let mut c_rank = vec![u32::MAX; graph.commitments().len()];
        for (rank, id) in self.commitments.iter().enumerate() {
            c_rank[id.index()] = rank as u32;
        }
        let mut j_rank = vec![u32::MAX; graph.conjunctions().len()];
        for (rank, id) in self.conjunctions.iter().enumerate() {
            j_rank[id.index()] = rank as u32;
        }
        let commitments: Vec<Commitment> = self
            .commitments
            .iter()
            .enumerate()
            .map(|(rank, id)| Commitment {
                id: CommitmentId::new(rank as u32),
                ..*graph.commitment(*id)
            })
            .collect();
        let conjunctions: Vec<Conjunction> = self
            .conjunctions
            .iter()
            .enumerate()
            .map(|(rank, id)| Conjunction {
                id: ConjunctionId::new(rank as u32),
                ..*graph.conjunction(*id)
            })
            .collect();
        let edges: Vec<Edge> = self
            .edges
            .iter()
            .enumerate()
            .map(|(rank, id)| {
                let e = graph.edge(*id);
                Edge {
                    id: EdgeId::new(rank as u32),
                    commitment: CommitmentId::new(c_rank[e.commitment.index()]),
                    conjunction: ConjunctionId::new(j_rank[e.conjunction.index()]),
                    color: e.color,
                }
            })
            .collect();
        SequencingGraph::from_parts(commitments, conjunctions, edges)
    }

    /// Maps a reduction outcome expressed in canonical labels back to the
    /// original graph's labels. The result is a valid maximal reduction of
    /// the original graph (isomorphisms preserve rule applicability), with
    /// surviving edges reported in ascending original-id order exactly like
    /// a live-edge scan.
    pub(crate) fn translate(&self, canonical: &ReductionOutcome) -> ReductionOutcome {
        let mut trace = ReductionTrace::new();
        for step in canonical.trace.steps() {
            trace.push(crate::trace::ReductionStep {
                edge: self.edges[step.edge.index()],
                rule: step.rule,
                via_clause2: step.via_clause2,
                disconnected_commitment: step
                    .disconnected_commitment
                    .map(|c| self.commitments[c.index()]),
                disconnected_conjunction: step
                    .disconnected_conjunction
                    .map(|j| self.conjunctions[j.index()]),
            });
        }
        let mut remaining_edges: Vec<EdgeId> = canonical
            .remaining_edges
            .iter()
            .map(|e| self.edges[e.index()])
            .collect();
        remaining_edges.sort_unstable();
        ReductionOutcome {
            feasible: canonical.feasible,
            trace,
            remaining_edges,
        }
    }
}

/// The refinement/search state: live nodes in one unified index space
/// (commitments first, then conjunctions) plus their live adjacency in CSR
/// form — one flat allocation, cache-friendly neighbour scans.
struct Canonicalizer<'g> {
    graph: &'g SequencingGraph,
    /// Original ids of live (degree ≥ 1) commitments, in input order.
    commitments: Vec<CommitmentId>,
    /// Original ids of live conjunctions, in input order.
    conjunctions: Vec<ConjunctionId>,
    /// `(edge colour tag, neighbour node index)` per live incidence, as the
    /// same flat [`Csr`] arena the sequencing graph's adjacency uses.
    adj: Csr<(u32, u32)>,
}

/// Reusable buffers for the refinement loop, search and certificate
/// packing, so a whole canonicalization performs O(1) heap allocations
/// beyond the per-branch colour vectors it genuinely has to own.
#[derive(Default)]
struct Scratch {
    next: Vec<u64>,
    sorted: Vec<u64>,
    c_order: Vec<usize>,
    j_order: Vec<usize>,
    c_rank: Vec<u32>,
    j_rank: Vec<u32>,
    keyed: Vec<(u64, EdgeId)>,
    cert: Vec<u64>,
}

/// One edge of the certificate, packed for cheap lexicographic comparison:
/// commitment rank, conjunction rank, colour, waiver.
fn pack_edge(c_rank: u32, j_rank: u32, color: EdgeColor, waiver: bool) -> u64 {
    debug_assert!(c_rank < (1 << 24) && j_rank < (1 << 24));
    (u64::from(c_rank) << 40)
        | (u64::from(j_rank) << 16)
        | (u64::from(color == EdgeColor::Red) << 8)
        | u64::from(waiver)
}

impl<'g> Canonicalizer<'g> {
    fn new(graph: &'g SequencingGraph) -> Self {
        let commitments: Vec<CommitmentId> = graph
            .commitments()
            .iter()
            .filter(|c| graph.commitment_degree(c.id) > 0)
            .map(|c| c.id)
            .collect();
        let conjunctions: Vec<ConjunctionId> = graph
            .conjunctions()
            .iter()
            .filter(|j| graph.conjunction_degree(j.id) > 0)
            .map(|j| j.id)
            .collect();
        let mut c_node = vec![usize::MAX; graph.commitments().len()];
        for (i, id) in commitments.iter().enumerate() {
            c_node[id.index()] = i;
        }
        let mut j_node = vec![usize::MAX; graph.conjunctions().len()];
        for (i, id) in conjunctions.iter().enumerate() {
            j_node[id.index()] = commitments.len() + i;
        }
        let n = commitments.len() + conjunctions.len();
        // Same scan order as `live_edges()`, spelled out so the iterator is
        // `Clone` for the two-pass CSR build.
        let live = graph.edges().iter().filter(|e| graph.is_live(e.id));
        let adj = Csr::from_memberships(
            n,
            live.flat_map(|e| {
                let c = c_node[e.commitment.index()];
                let j = j_node[e.conjunction.index()];
                let tag = u32::from(e.color == EdgeColor::Red) + 1;
                [(c, (tag, j as u32)), (j, (tag, c as u32))]
            }),
        );
        Canonicalizer {
            graph,
            commitments,
            conjunctions,
            adj,
        }
    }

    fn node_count(&self) -> usize {
        self.adj.node_count()
    }

    fn neighbors(&self, v: usize) -> &[(u32, u32)] {
        self.adj.row(v)
    }

    /// Initial colours: node kind, degree, clause-2 waiver (commitments)
    /// and red-degree (conjunctions) — the invariants named by the
    /// refinement.
    /// Label-invariant distance from every node to its nearest degree-1
    /// node, by multi-source BFS. Seeding the initial colours with this
    /// profile collapses the refinement round count on path-like graphs
    /// (broker chains) from O(diameter) to O(1): positional information
    /// that colour propagation would take one round per hop to discover is
    /// computed in a single O(V + E) sweep. The source set is defined by a
    /// structural property (degree), so the distances are invariant under
    /// relabelling; nodes in leafless components keep `u32::MAX`.
    fn leaf_distances(&self) -> Vec<u32> {
        let n = self.node_count();
        let mut dist = vec![u32::MAX; n];
        let mut frontier: Vec<usize> = (0..n).filter(|&v| self.neighbors(v).len() == 1).collect();
        for &v in &frontier {
            dist[v] = 0;
        }
        let mut next = Vec::new();
        let mut d = 0;
        while !frontier.is_empty() {
            d += 1;
            next.clear();
            for &v in &frontier {
                for &(_, u) in self.neighbors(v) {
                    if dist[u as usize] == u32::MAX {
                        dist[u as usize] = d;
                        next.push(u as usize);
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
        }
        dist
    }

    fn initial_colors(&self) -> Vec<u64> {
        let nc = self.commitments.len();
        let dist = self.leaf_distances();
        (0..self.node_count())
            .map(|v| {
                let degree = self.neighbors(v).len() as u64;
                let reds = self.neighbors(v).iter().filter(|&&(t, _)| t == 2).count() as u64;
                let shape = mix(mix(degree, reds), u64::from(dist[v]));
                if v < nc {
                    let waiver = self.graph.commitment(self.commitments[v]).clause2_waiver;
                    mix(mix(0xC0, shape), u64::from(waiver))
                } else {
                    mix(mix(0x10, shape), 2)
                }
            })
            .collect()
    }

    /// Number of distinct colours, via the reusable sort buffer.
    fn distinct(colors: &[u64], sorted: &mut Vec<u64>) -> usize {
        sorted.clear();
        sorted.extend_from_slice(colors);
        sorted.sort_unstable();
        sorted.dedup();
        sorted.len()
    }

    /// Colour refinement to a fixpoint: each round folds the *multiset* of
    /// `(edge colour, neighbour colour)` into every node's colour, stopping
    /// when the number of classes stops growing. The multiset is combined
    /// with a commutative wrapping sum of mixed terms — order-independent
    /// (so label-invariant) without sorting each node's neighbourhood.
    fn refine(&self, colors: &mut Vec<u64>, scratch: &mut Scratch) {
        let n = colors.len();
        let mut classes = Self::distinct(colors, &mut scratch.sorted);
        while classes < n {
            scratch.next.clear();
            scratch.next.extend((0..n).map(|v| {
                let mut acc = 0u64;
                for &(tag, u) in self.neighbors(v) {
                    acc = acc.wrapping_add(mix(u64::from(tag), colors[u as usize]));
                }
                mix(mix(colors[v], 0x5eed), acc)
            }));
            std::mem::swap(colors, &mut scratch.next);
            let now = Self::distinct(colors, &mut scratch.sorted);
            if now <= classes {
                break;
            }
            classes = now;
        }
    }

    /// The smallest colour shared by more than one node, if the partition
    /// is not yet discrete. (Members are recovered by a scan, so no
    /// per-cell allocation.)
    fn first_non_singleton(colors: &[u64], sorted: &mut Vec<u64>) -> Option<u64> {
        sorted.clear();
        sorted.extend_from_slice(colors);
        sorted.sort_unstable();
        sorted.windows(2).find(|w| w[0] == w[1]).map(|w| w[0])
    }

    /// Certificate for a discrete colouring: nodes ranked by colour, edges
    /// sorted by their packed canonical key. Every intermediate (orders,
    /// rank maps, keyed edges, the certificate words) lives in `scratch`,
    /// so repeated search leaves stop allocating once the buffers have
    /// grown; the owned [`CanonicalForm`] is only materialized by
    /// [`Self::form`] when a leaf actually improves on the best.
    fn certificate(&self, colors: &[u64], scratch: &mut Scratch) {
        let nc = self.commitments.len();
        let Scratch {
            c_order,
            j_order,
            c_rank,
            j_rank,
            keyed,
            cert,
            ..
        } = scratch;
        c_order.clear();
        c_order.extend(0..nc);
        c_order.sort_by_key(|&v| colors[v]);
        j_order.clear();
        j_order.extend(0..self.conjunctions.len());
        j_order.sort_by_key(|&v| colors[nc + v]);

        c_rank.clear();
        c_rank.resize(self.graph.commitments().len(), u32::MAX);
        for (rank, &v) in c_order.iter().enumerate() {
            c_rank[self.commitments[v].index()] = rank as u32;
        }
        j_rank.clear();
        j_rank.resize(self.graph.conjunctions().len(), u32::MAX);
        for (rank, &v) in j_order.iter().enumerate() {
            j_rank[self.conjunctions[v].index()] = rank as u32;
        }

        // Ties between parallel same-coloured edges are broken by original
        // id; such edges are automorphic, so the choice never changes the
        // certificate (only which interchangeable edge gets which rank).
        keyed.clear();
        keyed.extend(self.graph.live_edges().map(|e| {
            let waiver = self.graph.commitment(e.commitment).clause2_waiver;
            (
                pack_edge(
                    c_rank[e.commitment.index()],
                    j_rank[e.conjunction.index()],
                    e.color,
                    waiver,
                ),
                e.id,
            )
        }));
        keyed.sort_unstable();

        cert.clear();
        cert.reserve(keyed.len() + 2);
        cert.push(((nc as u64) << 32) | self.conjunctions.len() as u64);
        cert.push(keyed.len() as u64);
        cert.extend(keyed.iter().map(|&(k, _)| k));
    }

    /// Materializes the owned relabelling for the certificate currently in
    /// `scratch`.
    fn form(&self, scratch: &Scratch) -> CanonicalForm {
        let mut lo = 0x1cdc_1996_u64;
        let mut hi = 0x7a57_e5eed_u64;
        for &w in &scratch.cert {
            lo = mix(lo, w);
            hi = mix(hi, w ^ 0xffff_ffff_ffff_ffff);
        }
        CanonicalForm {
            fingerprint: Fingerprint((u128::from(hi) << 64) | u128::from(lo)),
            commitments: scratch
                .c_order
                .iter()
                .map(|&v| self.commitments[v])
                .collect(),
            conjunctions: scratch
                .j_order
                .iter()
                .map(|&v| self.conjunctions[v])
                .collect(),
            edges: scratch.keyed.iter().map(|&(_, id)| id).collect(),
        }
    }

    /// Individualization search: refine, and while the partition is not
    /// discrete, branch on the members of the first non-singleton cell —
    /// grouped by their post-individualization refined signature so
    /// symmetric siblings (the common case: a bundle of identical chains)
    /// cost one branch, not a factorial tree. The lexicographically
    /// smallest certificate wins.
    fn search(
        &self,
        mut colors: Vec<u64>,
        best: &mut Option<(Vec<u64>, CanonicalForm)>,
        scratch: &mut Scratch,
    ) {
        self.refine(&mut colors, scratch);
        let Some(cell_color) = Self::first_non_singleton(&colors, &mut scratch.sorted) else {
            self.certificate(&colors, scratch);
            match best {
                Some((b, f)) if scratch.cert < *b => {
                    b.clone_from(&scratch.cert);
                    *f = self.form(scratch);
                }
                None => *best = Some((scratch.cert.clone(), self.form(scratch))),
                _ => {}
            }
            return;
        };
        let cell: Vec<usize> = (0..colors.len())
            .filter(|&v| colors[v] == cell_color)
            .collect();
        let mut groups: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for v in cell {
            let mut branch = colors.clone();
            branch[v] = mix(branch[v], 0x1d1d);
            self.refine(&mut branch, scratch);
            // Group symmetric siblings by the refined branch's full colour
            // multiset (multiplicities included).
            scratch.sorted.clear();
            scratch.sorted.extend_from_slice(&branch);
            scratch.sorted.sort_unstable();
            let sig = scratch.sorted.iter().fold(0xa11_u64, |h, &c| mix(h, c));
            groups.entry(sig).or_insert(branch);
        }
        for branch in groups.into_values() {
            self.search(branch, best, scratch);
        }
    }
}

/// Computes the canonical form (and fingerprint) of `graph`'s live
/// structure. Removed edges and fully disconnected nodes are invisible to
/// the certificate — they cannot influence any further reduction.
pub fn canonicalize(graph: &SequencingGraph) -> CanonicalForm {
    let canon = Canonicalizer::new(graph);
    let mut best = None;
    let mut scratch = Scratch::default();
    canon.search(canon.initial_colors(), &mut best, &mut scratch);
    best.expect("search always produces a certificate").1
}

/// Convenience: just the [`Fingerprint`] of `graph`'s live structure.
pub fn fingerprint(graph: &SequencingGraph) -> Fingerprint {
    canonicalize(graph).fingerprint()
}

/// A cheap pre-fingerprint of a graph's *exact labelled* live structure:
/// a commutative 128-bit multiset hash over the live edges (edge id,
/// endpoint ids, colour, clause-2 waiver) plus the live count.
///
/// Unlike [`Fingerprint`], this is **not** label-invariant — two isomorphic
/// graphs under different labellings get different pre-fingerprints. What
/// it guarantees is the converse direction the two-tier cache needs: equal
/// pre-fingerprints identify graphs whose live structures are identical
/// *including their labels* (up to 128-bit hash collision, the same trust
/// the canonical fingerprint already asks for), so a memo entry keyed on a
/// pre-fingerprint can replay its stored relabelling verbatim. Computing
/// it is one O(E) scan with no sorting, refinement or allocation — two
/// orders of magnitude cheaper than full canonicalization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PreFingerprint(u128);

impl PreFingerprint {
    /// The raw 128-bit value (shard selection keys off the low bits).
    pub const fn as_u128(self) -> u128 {
        self.0
    }
}

/// Computes the [`PreFingerprint`] of `graph`'s live structure.
///
/// The per-edge terms are combined with wrapping addition into two
/// independently mixed 64-bit accumulators, so the result is independent
/// of scan order (a multiset hash) and stable across runs and platforms.
pub fn prefingerprint(graph: &SequencingGraph) -> PreFingerprint {
    let mut lo_acc = 0u64;
    let mut hi_acc = 0u64;
    for e in graph.live_edges() {
        let waiver = graph.commitment(e.commitment).clause2_waiver;
        let bits = (u64::from(e.color == EdgeColor::Red) << 1) | u64::from(waiver);
        let term = mix(
            mix(
                mix(e.id.index() as u64, e.commitment.index() as u64),
                e.conjunction.index() as u64,
            ),
            bits,
        );
        lo_acc = lo_acc.wrapping_add(term);
        hi_acc = hi_acc.wrapping_add(mix(term, 0x5bd1_e995_9e37_79b9));
    }
    let count = graph.live_edge_count() as u64;
    let lo = mix(mix(0x9e1a_be11ed, count), lo_acc);
    let hi = mix(mix(0x7e1e_1996, count), hi_acc);
    PreFingerprint((u128::from(hi) << 64) | u128::from(lo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::Reducer;

    fn graph_of(spec: &trustseq_model::ExchangeSpec) -> SequencingGraph {
        SequencingGraph::from_spec(spec).unwrap()
    }

    #[test]
    fn fingerprint_is_deterministic() {
        let g = graph_of(&fixtures::example1().0);
        assert_eq!(fingerprint(&g), fingerprint(&g));
        assert_eq!(canonicalize(&g), canonicalize(&g));
    }

    #[test]
    fn fingerprint_is_invariant_under_relabelling() {
        for spec in [
            fixtures::example1().0,
            fixtures::example2().0,
            fixtures::poor_broker().0,
            fixtures::figure7().0,
        ] {
            let g = graph_of(&spec);
            let fp = fingerprint(&g);
            for seed in 0..8 {
                let permuted = g.permuted(seed);
                assert_eq!(fp, fingerprint(&permuted), "{} seed {seed}", spec.name());
            }
        }
    }

    #[test]
    fn fixture_fingerprints_are_pairwise_distinct() {
        let fps: Vec<Fingerprint> = [
            fixtures::example1().0,
            fixtures::example2().0,
            fixtures::poor_broker().0,
            fixtures::figure7().0,
        ]
        .iter()
        .map(|s| fingerprint(&graph_of(s)))
        .collect();
        for i in 0..fps.len() {
            for j in (i + 1)..fps.len() {
                assert_ne!(fps[i], fps[j], "fixtures {i} and {j} collide");
            }
        }
    }

    #[test]
    fn waiver_changes_the_fingerprint() {
        // §4.2.3: adding a direct-trust edge flips a clause-2 waiver and
        // must therefore change the structural identity.
        let (spec, ids) = fixtures::example2();
        let before = fingerprint(&graph_of(&spec));
        let mut trusted = spec.clone();
        trusted.add_trust(ids.source1, ids.broker1).unwrap();
        assert_ne!(before, fingerprint(&graph_of(&trusted)));
    }

    #[test]
    fn symmetric_bundle_chains_share_structure_across_specs() {
        // Example #2's two chains are structurally identical, so trusting
        // source1→broker1 and source2→broker2 yield isomorphic graphs.
        let (spec, ids) = fixtures::example2();
        let mut v1 = spec.clone();
        v1.add_trust(ids.source1, ids.broker1).unwrap();
        let mut v2 = spec.clone();
        v2.add_trust(ids.source2, ids.broker2).unwrap();
        assert_eq!(fingerprint(&graph_of(&v1)), fingerprint(&graph_of(&v2)));
    }

    #[test]
    fn canonical_graph_reduces_to_the_same_verdict() {
        for spec in [
            fixtures::example1().0,
            fixtures::example2().0,
            fixtures::poor_broker().0,
            fixtures::figure7().0,
        ] {
            let g = graph_of(&spec);
            let form = canonicalize(&g);
            let canonical = form.canonical_graph(&g);
            assert_eq!(canonical.initial_edge_count(), g.live_edge_count());
            let plain = Reducer::new(g).run();
            let canon_outcome = Reducer::new(canonical).run();
            assert_eq!(plain.feasible, canon_outcome.feasible, "{}", spec.name());
            assert_eq!(
                plain.remaining_edges.len(),
                canon_outcome.remaining_edges.len(),
                "{}",
                spec.name()
            );
        }
    }

    #[test]
    fn translate_round_trips_a_canonical_reduction() {
        let g = graph_of(&fixtures::example1().0);
        let form = canonicalize(&g);
        let canonical_outcome = Reducer::new(form.canonical_graph(&g)).run();
        let translated = form.translate(&canonical_outcome);
        assert!(translated.feasible);
        assert_eq!(translated.trace.len(), canonical_outcome.trace.len());
        // The translated trace must replay cleanly on the original graph.
        let mut reducer = Reducer::new(g);
        for step in translated.trace.steps() {
            reducer
                .apply(crate::Move {
                    edge: step.edge,
                    rule: step.rule,
                    via_clause2: step.via_clause2,
                })
                .expect("translated step applies to the original graph");
        }
        assert!(reducer.graph().is_fully_reduced());
    }

    #[test]
    fn empty_graph_canonicalizes() {
        let g = SequencingGraph::from_parts(Vec::new(), Vec::new(), Vec::new());
        let form = canonicalize(&g);
        assert_eq!(form.edge_count(), 0);
        assert_eq!(fingerprint(&g), form.fingerprint());
    }

    #[test]
    fn fingerprint_displays_as_hex() {
        let g = graph_of(&fixtures::example1().0);
        let s = fingerprint(&g).to_string();
        assert_eq!(s.len(), 32);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
