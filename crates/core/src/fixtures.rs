//! Ready-made [`ExchangeSpec`]s for the paper's worked examples.
//!
//! These fixtures are used throughout the test suites, benches and the
//! `reproduce` binary, so that every layer exercises exactly the scenarios
//! of §3–§6 of the paper:
//!
//! * [`example1`] — Figure 1/3: consumer buys a document from a producer
//!   through a broker, two local trusted intermediaries (feasible);
//! * [`example2`] — Figure 2/4: consumer bundles two documents from two
//!   broker/source pairs (infeasible without indemnities);
//! * [`figure7`] — the three-broker $10/$20/$30 bundle of §6;
//! * [`poor_broker`] — Example #1 plus the funding constraint of §5's
//!   closing discussion (infeasible).

use trustseq_model::{AgentId, DealId, ExchangeSpec, ItemId, Money, Role};

/// Identifiers of [`example1`]'s entities.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub struct Example1Ids {
    pub consumer: AgentId,
    pub broker: AgentId,
    pub producer: AgentId,
    pub t1: AgentId,
    pub t2: AgentId,
    pub doc: ItemId,
    /// Broker sells the document to the consumer via t1.
    pub sale: DealId,
    /// Producer sells the document to the broker via t2.
    pub supply: DealId,
}

/// Builds the paper's Example #1 (Figures 1, 3 and 5).
///
/// The consumer pays $100 for a document the broker procures from the
/// producer for $80; the broker must secure its sale before purchasing.
pub fn example1() -> (ExchangeSpec, Example1Ids) {
    let mut spec = ExchangeSpec::new("example1");
    let consumer = spec.add_principal("consumer", Role::Consumer).unwrap();
    let broker = spec.add_principal("broker", Role::Broker).unwrap();
    let producer = spec.add_principal("producer", Role::Producer).unwrap();
    let t1 = spec.add_trusted("t1").unwrap();
    let t2 = spec.add_trusted("t2").unwrap();
    let doc = spec.add_item("doc", "The Document").unwrap();
    let sale = spec
        .add_deal(broker, consumer, t1, doc, Money::from_dollars(100))
        .unwrap();
    let supply = spec
        .add_deal(producer, broker, t2, doc, Money::from_dollars(80))
        .unwrap();
    spec.add_resale_constraint(broker, sale, supply).unwrap();
    (
        spec,
        Example1Ids {
            consumer,
            broker,
            producer,
            t1,
            t2,
            doc,
            sale,
            supply,
        },
    )
}

/// Identifiers of [`example2`]'s entities.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub struct Example2Ids {
    pub consumer: AgentId,
    pub broker1: AgentId,
    pub broker2: AgentId,
    pub source1: AgentId,
    pub source2: AgentId,
    pub t1: AgentId,
    pub t2: AgentId,
    pub t3: AgentId,
    pub t4: AgentId,
    pub doc1: ItemId,
    pub doc2: ItemId,
    /// Broker 1 sells document 1 to the consumer via t1.
    pub sale1: DealId,
    /// Source 1 sells document 1 to broker 1 via t2.
    pub supply1: DealId,
    /// Broker 2 sells document 2 to the consumer via t3.
    pub sale2: DealId,
    /// Source 2 sells document 2 to broker 2 via t4.
    pub supply2: DealId,
}

/// Builds the paper's Example #2 (Figures 2, 4 and 6): a consumer bundling
/// two documents from two broker/source pairs. Infeasible as specified.
///
/// Document 1 retails for $10 and document 2 for $20 (the prices §6 uses
/// when indemnifying this example); wholesale prices are $8 and $16.
pub fn example2() -> (ExchangeSpec, Example2Ids) {
    let mut spec = ExchangeSpec::new("example2");
    let consumer = spec.add_principal("consumer", Role::Consumer).unwrap();
    let broker1 = spec.add_principal("broker1", Role::Broker).unwrap();
    let broker2 = spec.add_principal("broker2", Role::Broker).unwrap();
    let source1 = spec.add_principal("source1", Role::Producer).unwrap();
    let source2 = spec.add_principal("source2", Role::Producer).unwrap();
    let t1 = spec.add_trusted("t1").unwrap();
    let t2 = spec.add_trusted("t2").unwrap();
    let t3 = spec.add_trusted("t3").unwrap();
    let t4 = spec.add_trusted("t4").unwrap();
    let doc1 = spec.add_item("doc1", "Document 1").unwrap();
    let doc2 = spec.add_item("doc2", "Document 2").unwrap();

    let sale1 = spec
        .add_deal(broker1, consumer, t1, doc1, Money::from_dollars(10))
        .unwrap();
    let supply1 = spec
        .add_deal(source1, broker1, t2, doc1, Money::from_dollars(8))
        .unwrap();
    let sale2 = spec
        .add_deal(broker2, consumer, t3, doc2, Money::from_dollars(20))
        .unwrap();
    let supply2 = spec
        .add_deal(source2, broker2, t4, doc2, Money::from_dollars(16))
        .unwrap();

    spec.add_resale_constraint(broker1, sale1, supply1).unwrap();
    spec.add_resale_constraint(broker2, sale2, supply2).unwrap();

    (
        spec,
        Example2Ids {
            consumer,
            broker1,
            broker2,
            source1,
            source2,
            t1,
            t2,
            t3,
            t4,
            doc1,
            doc2,
            sale1,
            supply1,
            sale2,
            supply2,
        },
    )
}

/// Identifiers of [`figure7`]'s entities.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub struct Figure7Ids {
    pub consumer: AgentId,
    pub brokers: [AgentId; 3],
    pub sources: [AgentId; 3],
    /// Consumer-side trusted components t1, t3, t5.
    pub consumer_side: [AgentId; 3],
    /// Source-side trusted components t2, t4, t6.
    pub source_side: [AgentId; 3],
    pub docs: [ItemId; 3],
    /// Broker-to-consumer sales at $10, $20 and $30.
    pub sales: [DealId; 3],
    /// Source-to-broker supplies.
    pub supplies: [DealId; 3],
}

/// Builds the three-broker example of Figure 7: documents priced $10, $20
/// and $30. Infeasible without indemnities; §6's greedy ordering indemnifies
/// the $30 and $20 documents for a total of $70 (versus $90 for the naive
/// ordering).
pub fn figure7() -> (ExchangeSpec, Figure7Ids) {
    let mut spec = ExchangeSpec::new("figure7");
    let consumer = spec.add_principal("consumer", Role::Consumer).unwrap();
    let prices = [10i64, 20, 30];
    let mut brokers = [AgentId::new(0); 3];
    let mut sources = [AgentId::new(0); 3];
    let mut consumer_side = [AgentId::new(0); 3];
    let mut source_side = [AgentId::new(0); 3];
    let mut docs = [ItemId::new(0); 3];
    let mut sales = [DealId::new(0); 3];
    let mut supplies = [DealId::new(0); 3];
    for k in 0..3 {
        brokers[k] = spec
            .add_principal(format!("broker{}", k + 1), Role::Broker)
            .unwrap();
        sources[k] = spec
            .add_principal(format!("source{}", k + 1), Role::Producer)
            .unwrap();
        consumer_side[k] = spec.add_trusted(format!("t{}", 2 * k + 1)).unwrap();
        source_side[k] = spec.add_trusted(format!("t{}", 2 * k + 2)).unwrap();
        docs[k] = spec
            .add_item(format!("doc{}", k + 1), format!("Document {}", k + 1))
            .unwrap();
    }
    for k in 0..3 {
        sales[k] = spec
            .add_deal(
                brokers[k],
                consumer,
                consumer_side[k],
                docs[k],
                Money::from_dollars(prices[k]),
            )
            .unwrap();
        supplies[k] = spec
            .add_deal(
                sources[k],
                brokers[k],
                source_side[k],
                docs[k],
                Money::from_dollars(prices[k] - 2),
            )
            .unwrap();
        spec.add_resale_constraint(brokers[k], sales[k], supplies[k])
            .unwrap();
    }
    (
        spec,
        Figure7Ids {
            consumer,
            brokers,
            sources,
            consumer_side,
            source_side,
            docs,
            sales,
            supplies,
        },
    )
}

/// Identifiers of [`example2_shared_escrow`]'s entities.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub struct SharedEscrowIds {
    pub consumer: AgentId,
    pub broker1: AgentId,
    pub broker2: AgentId,
    pub source1: AgentId,
    pub source2: AgentId,
    /// The single trusted component everyone uses.
    pub escrow: AgentId,
    pub doc1: ItemId,
    pub doc2: ItemId,
    pub sale1: DealId,
    pub supply1: DealId,
    pub sale2: DealId,
    pub supply2: DealId,
}

/// Example #2 with **one** trusted component shared by every party — the
/// §9 "agent trusted by more than two parties" scenario.
///
/// Under the paper's unextended rules this is still infeasible (the
/// formalism cannot see that the shared escrow subsumes the consumer's
/// bundle and the brokers' ordering concerns); with the
/// [`BuildOptions::EXTENDED`](crate::BuildOptions::EXTENDED) delegation
/// semantics it becomes feasible, matching §8's observation that a
/// universally trusted intermediary unlocks any exchange.
pub fn example2_shared_escrow() -> (ExchangeSpec, SharedEscrowIds) {
    let mut spec = ExchangeSpec::new("example2-shared-escrow");
    let consumer = spec.add_principal("consumer", Role::Consumer).unwrap();
    let broker1 = spec.add_principal("broker1", Role::Broker).unwrap();
    let broker2 = spec.add_principal("broker2", Role::Broker).unwrap();
    let source1 = spec.add_principal("source1", Role::Producer).unwrap();
    let source2 = spec.add_principal("source2", Role::Producer).unwrap();
    let escrow = spec.add_trusted("escrow").unwrap();
    let doc1 = spec.add_item("doc1", "Document 1").unwrap();
    let doc2 = spec.add_item("doc2", "Document 2").unwrap();
    let sale1 = spec
        .add_deal(broker1, consumer, escrow, doc1, Money::from_dollars(10))
        .unwrap();
    let supply1 = spec
        .add_deal(source1, broker1, escrow, doc1, Money::from_dollars(8))
        .unwrap();
    let sale2 = spec
        .add_deal(broker2, consumer, escrow, doc2, Money::from_dollars(20))
        .unwrap();
    let supply2 = spec
        .add_deal(source2, broker2, escrow, doc2, Money::from_dollars(16))
        .unwrap();
    spec.add_resale_constraint(broker1, sale1, supply1).unwrap();
    spec.add_resale_constraint(broker2, sale2, supply2).unwrap();
    (
        spec,
        SharedEscrowIds {
            consumer,
            broker1,
            broker2,
            source1,
            source2,
            escrow,
            doc1,
            doc2,
            sale1,
            supply1,
            sale2,
            supply2,
        },
    )
}

/// Identifiers of [`cross_domain_sale`]'s entities.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub struct CrossDomainIds {
    pub consumer: AgentId,
    pub producer: AgentId,
    /// The consumer's local trusted component.
    pub t_west: AgentId,
    /// The producer's local trusted component.
    pub t_east: AgentId,
    pub doc: ItemId,
    pub deal: DealId,
}

/// A cross-domain sale exercising §9's *hierarchy of trust*: consumer and
/// producer share no trusted component, but each has a local one, and the
/// two components trust each other. The deal is *bridged*: the consumer
/// deposits with `t_west`, the producer with `t_east`, and the item is
/// relayed between them.
pub fn cross_domain_sale() -> (ExchangeSpec, CrossDomainIds) {
    let mut spec = ExchangeSpec::new("cross-domain-sale");
    let consumer = spec.add_principal("consumer", Role::Consumer).unwrap();
    let producer = spec.add_principal("producer", Role::Producer).unwrap();
    let t_west = spec.add_trusted("t_west").unwrap();
    let t_east = spec.add_trusted("t_east").unwrap();
    let doc = spec.add_item("doc", "The Document").unwrap();
    spec.add_trusted_link(t_west, t_east).unwrap();
    let deal = spec
        .add_deal_bridged(
            producer,
            consumer,
            t_west,
            t_east,
            doc,
            Money::from_dollars(25),
        )
        .unwrap();
    (
        spec,
        CrossDomainIds {
            consumer,
            producer,
            t_west,
            t_east,
            doc,
            deal,
        },
    )
}

/// Identifiers of [`patent_assembly`]'s entities.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub struct PatentAssemblyIds {
    pub consumer: AgentId,
    pub publisher: AgentId,
    pub text_source: AgentId,
    pub diagram_source: AgentId,
    pub t_sale: AgentId,
    pub t_text: AgentId,
    pub t_diagrams: AgentId,
    pub text: ItemId,
    pub diagrams: ItemId,
    pub patent: ItemId,
    pub sale: DealId,
    pub supply_text: DealId,
    pub supply_diagrams: DealId,
}

/// §3.2's combined documents, made concrete: patent text and diagrams are
/// "sold by different providers"; a publisher buys both, **assembles** the
/// complete patent, and sells it to the consumer — securing its sale before
/// either purchase.
pub fn patent_assembly() -> (ExchangeSpec, PatentAssemblyIds) {
    let mut spec = ExchangeSpec::new("patent-assembly");
    let consumer = spec.add_principal("consumer", Role::Consumer).unwrap();
    let publisher = spec.add_principal("publisher", Role::Broker).unwrap();
    let text_source = spec.add_principal("text_source", Role::Producer).unwrap();
    let diagram_source = spec
        .add_principal("diagram_source", Role::Producer)
        .unwrap();
    let t_sale = spec.add_trusted("t_sale").unwrap();
    let t_text = spec.add_trusted("t_text").unwrap();
    let t_diagrams = spec.add_trusted("t_diagrams").unwrap();
    let text = spec.add_item("text", "Patent text").unwrap();
    let diagrams = spec.add_item("diagrams", "Patent diagrams").unwrap();
    let patent = spec.add_item("patent", "Complete patent").unwrap();
    spec.add_assembly(publisher, vec![text, diagrams], patent)
        .unwrap();
    let sale = spec
        .add_deal(publisher, consumer, t_sale, patent, Money::from_dollars(50))
        .unwrap();
    let supply_text = spec
        .add_deal(
            text_source,
            publisher,
            t_text,
            text,
            Money::from_dollars(15),
        )
        .unwrap();
    let supply_diagrams = spec
        .add_deal(
            diagram_source,
            publisher,
            t_diagrams,
            diagrams,
            Money::from_dollars(20),
        )
        .unwrap();
    spec.add_resale_constraint(publisher, sale, supply_text)
        .unwrap();
    spec.add_resale_constraint(publisher, sale, supply_diagrams)
        .unwrap();
    (
        spec,
        PatentAssemblyIds {
            consumer,
            publisher,
            text_source,
            diagram_source,
            t_sale,
            t_text,
            t_diagrams,
            text,
            diagrams,
            patent,
            sale,
            supply_text,
            supply_diagrams,
        },
    )
}

/// Builds the "poor broker" variant of Example #1 (end of §5): the broker
/// can only pay the producer out of the consumer's money, adding a second
/// red edge at ∧B and making the exchange infeasible.
pub fn poor_broker() -> (ExchangeSpec, Example1Ids) {
    let (mut spec, ids) = example1();
    spec.add_funding_constraint(ids.broker, ids.supply, ids.sale)
        .unwrap();
    (spec, ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example1_matches_figure1() {
        let (spec, ids) = example1();
        let g = spec.interaction_graph().unwrap();
        assert_eq!(g.principal_count(), 3);
        assert_eq!(g.trusted_count(), 2);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(
            spec.deal(ids.sale).unwrap().price(),
            Money::from_dollars(100)
        );
    }

    #[test]
    fn example2_matches_figure2() {
        let (spec, _) = example2();
        let g = spec.interaction_graph().unwrap();
        assert_eq!(g.principal_count(), 5);
        assert_eq!(g.trusted_count(), 4);
        assert_eq!(g.edge_count(), 8);
        assert_eq!(spec.resale_constraints().len(), 2);
    }

    #[test]
    fn figure7_prices() {
        let (spec, ids) = figure7();
        let prices: Vec<_> = ids
            .sales
            .iter()
            .map(|&d| spec.deal(d).unwrap().price())
            .collect();
        assert_eq!(
            prices,
            vec![
                Money::from_dollars(10),
                Money::from_dollars(20),
                Money::from_dollars(30)
            ]
        );
        assert_eq!(spec.interaction_graph().unwrap().edge_count(), 12);
    }

    #[test]
    fn poor_broker_has_funding_constraint() {
        let (spec, _) = poor_broker();
        assert_eq!(spec.funding_constraints().len(), 1);
        assert_eq!(spec.resale_constraints().len(), 1);
    }
}
