//! Indemnity planning (§6): which deals to indemnify, for how much, and in
//! what order, to make an infeasible bundle feasible at minimal collateral.

use crate::reduce::analyze;
use crate::CoreError;
use serde::{Deserialize, Serialize};
use std::fmt;
use trustseq_model::{AgentId, DealId, ExchangeSpec, Money};

/// One planned indemnity: `provider` sets aside `amount` covering `deal`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannedIndemnity {
    /// The deal to cover (one of the bundle's purchases).
    pub deal: DealId,
    /// Who posts the collateral (the covered deal's seller).
    pub provider: AgentId,
    /// The required amount: the total cost of all *other* deals in the
    /// bundle — the worst-case jeopardy of the beneficiary.
    pub amount: Money,
}

impl fmt::Display for PlannedIndemnity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} sets aside {} for {}",
            self.provider, self.amount, self.deal
        )
    }
}

/// An ordered indemnification plan for one buyer's bundle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndemnityPlan {
    /// The bundle's buyer (the beneficiary of every indemnity).
    pub beneficiary: AgentId,
    /// The indemnities, in the order they are offered.
    pub indemnities: Vec<PlannedIndemnity>,
}

impl IndemnityPlan {
    /// The total collateral the plan requires.
    pub fn total(&self) -> Money {
        self.indemnities.iter().map(|i| i.amount).sum()
    }

    /// Number of indemnities in the plan.
    pub fn len(&self) -> usize {
        self.indemnities.len()
    }

    /// `true` when no indemnity is needed.
    pub fn is_empty(&self) -> bool {
        self.indemnities.is_empty()
    }

    /// Applies the plan to a specification (posting every indemnity).
    ///
    /// # Errors
    ///
    /// Propagates [`ExchangeSpec::add_indemnity`] errors.
    pub fn apply(&self, spec: &mut ExchangeSpec) -> Result<(), CoreError> {
        for p in &self.indemnities {
            spec.add_indemnity(p.provider, p.deal, p.amount)?;
        }
        Ok(())
    }
}

impl fmt::Display for IndemnityPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "indemnity plan for {} (total {}):",
            self.beneficiary,
            self.total()
        )?;
        for (i, p) in self.indemnities.iter().enumerate() {
            writeln!(f, "  {}. {p}", i + 1)?;
        }
        Ok(())
    }
}

/// The indemnity required to cover `deal` within `buyer`'s bundle: the sum
/// of the prices of every *other* deal the buyer purchases (§6: "the amount
/// of the indemnity must be high enough to compensate for the worst case
/// outcome").
///
/// Returns [`Money::ZERO`] when the buyer has no other purchases.
pub fn required_indemnity(spec: &ExchangeSpec, buyer: AgentId, deal: DealId) -> Money {
    spec.purchases_of(buyer)
        .filter(|d| d.id() != deal)
        .map(|d| d.price())
        .sum()
}

/// The total collateral of indemnifying every bundle deal except `last` —
/// how §6 evaluates an indemnification *ordering* (the last deal never needs
/// an indemnity).
pub fn ordering_total(spec: &ExchangeSpec, buyer: AgentId, last: DealId) -> Money {
    spec.purchases_of(buyer)
        .filter(|d| d.id() != last)
        .map(|d| required_indemnity(spec, buyer, d.id()))
        .sum()
}

/// The greedy minimal-indemnity ordering of §6: indemnify the bundle's deals
/// in decreasing price order; the cheapest deal goes last and needs no
/// indemnity (it would have required the *largest* one).
///
/// Returns an empty plan when the buyer purchases at most one deal (a
/// single-deal "bundle" needs no indemnity).
pub fn greedy_plan(spec: &ExchangeSpec, buyer: AgentId) -> IndemnityPlan {
    let mut purchases: Vec<_> = spec.purchases_of(buyer).collect();
    if purchases.len() < 2 {
        return IndemnityPlan {
            beneficiary: buyer,
            indemnities: Vec::new(),
        };
    }
    // Decreasing price; ties broken by declaration order for determinism.
    purchases.sort_by_key(|d| (std::cmp::Reverse(d.price()), d.id()));
    let indemnities = purchases
        .iter()
        .take(purchases.len() - 1) // the cheapest (last) is free
        .map(|d| PlannedIndemnity {
            deal: d.id(),
            provider: d.seller(),
            amount: required_indemnity(spec, buyer, d.id()),
        })
        .collect();
    IndemnityPlan {
        beneficiary: buyer,
        indemnities,
    }
}

/// Exhaustively searches all "skip one deal" orderings and returns the
/// minimal-total plan. Exponential bookkeeping is unnecessary: §6 shows an
/// ordering is characterised by which deal goes last, so the search is
/// linear; this function exists to *certify* the greedy plan in tests and
/// benches.
pub fn exhaustive_min_plan(spec: &ExchangeSpec, buyer: AgentId) -> IndemnityPlan {
    let purchases: Vec<_> = spec.purchases_of(buyer).collect();
    if purchases.len() < 2 {
        return IndemnityPlan {
            beneficiary: buyer,
            indemnities: Vec::new(),
        };
    }
    let best_last = purchases
        .iter()
        .min_by_key(|d| (ordering_total(spec, buyer, d.id()), d.id()))
        .expect("non-empty purchases");
    let mut rest: Vec<_> = purchases
        .iter()
        .filter(|d| d.id() != best_last.id())
        .collect();
    rest.sort_by_key(|d| (std::cmp::Reverse(d.price()), d.id()));
    IndemnityPlan {
        beneficiary: buyer,
        indemnities: rest
            .into_iter()
            .map(|d| PlannedIndemnity {
                deal: d.id(),
                provider: d.seller(),
                amount: required_indemnity(spec, buyer, d.id()),
            })
            .collect(),
    }
}

/// Plans and applies the cheapest indemnities that make `spec` feasible.
///
/// ```
/// use trustseq_core::{analyze, fixtures, indemnity};
///
/// # fn main() -> Result<(), trustseq_core::CoreError> {
/// let (mut spec, _) = fixtures::figure7();
/// assert!(!analyze(&spec)?.feasible);
/// let plans = indemnity::make_feasible(&mut spec)?;
/// assert_eq!(plans[0].total(), trustseq_model::Money::from_dollars(70));
/// assert!(analyze(&spec)?.feasible);
/// # Ok(())
/// # }
/// ```
///
/// Buyers with multi-deal bundles are processed in declaration order; each
/// gets its greedy plan applied, and planning stops as soon as the reduced
/// sequencing graph passes the feasibility test.
///
/// Returns the applied plans.
///
/// # Errors
///
/// [`CoreError::PlanFailed`] when the exchange is still infeasible after
/// every bundle has been indemnified (e.g. it is infeasible for reasons
/// indemnities cannot fix, like a funding constraint).
pub fn make_feasible(spec: &mut ExchangeSpec) -> Result<Vec<IndemnityPlan>, CoreError> {
    make_feasible_cached(spec, None)
}

/// [`make_feasible`] with an optional
/// [`AnalysisCache`](crate::AnalysisCache): the feasibility probes after
/// each applied plan go through the memo table, so indemnity search over a
/// sweep of structurally repeated specs pays for each structure once.
///
/// # Errors
///
/// As [`make_feasible`].
pub fn make_feasible_cached(
    spec: &mut ExchangeSpec,
    cache: Option<&crate::AnalysisCache>,
) -> Result<Vec<IndemnityPlan>, CoreError> {
    let feasible = |s: &ExchangeSpec| -> Result<bool, CoreError> {
        Ok(match cache {
            Some(cache) => cache.analyze(s)?.feasible,
            None => analyze(s)?.feasible,
        })
    };
    let mut applied = Vec::new();
    if feasible(spec)? {
        return Ok(applied);
    }
    let buyers: Vec<AgentId> = spec
        .principals()
        .filter(|p| spec.purchases_of(p.id()).count() >= 2)
        .map(|p| p.id())
        .collect();
    for buyer in buyers {
        let plan = greedy_plan(spec, buyer);
        if plan.is_empty() {
            continue;
        }
        plan.apply(spec)?;
        applied.push(plan);
        if feasible(spec)? {
            return Ok(applied);
        }
    }
    Err(CoreError::PlanFailed {
        applied: applied.iter().map(IndemnityPlan::len).sum(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::reduce::analyze;

    #[test]
    fn figure7_ordering_totals_match_paper() {
        // §6 / Figure 7: ordering #1 (broker 1 first, $10 doc last *not*
        // skipped — the $30 doc goes last) totals $90; ordering #2 (the $10
        // doc goes last) totals $70.
        let (spec, ids) = fixtures::figure7();
        let c = ids.consumer;
        // Ordering #1: B1 ($50) then B2 ($40); doc 3 last.
        assert_eq!(
            ordering_total(&spec, c, ids.sales[2]),
            Money::from_dollars(90)
        );
        // Ordering #2: B3 ($30) then B2 ($40); doc 1 last.
        assert_eq!(
            ordering_total(&spec, c, ids.sales[0]),
            Money::from_dollars(70)
        );
    }

    #[test]
    fn figure7_required_amounts_match_paper() {
        let (spec, ids) = fixtures::figure7();
        let c = ids.consumer;
        assert_eq!(
            required_indemnity(&spec, c, ids.sales[0]),
            Money::from_dollars(50) // $20 + $30
        );
        assert_eq!(
            required_indemnity(&spec, c, ids.sales[1]),
            Money::from_dollars(40) // $10 + $30
        );
        assert_eq!(
            required_indemnity(&spec, c, ids.sales[2]),
            Money::from_dollars(30) // $10 + $20
        );
    }

    #[test]
    fn greedy_plan_is_paper_ordering_2() {
        let (spec, ids) = fixtures::figure7();
        let plan = greedy_plan(&spec, ids.consumer);
        assert_eq!(plan.len(), 2);
        // $30 doc first ($30 collateral), then $20 doc ($40 collateral).
        assert_eq!(plan.indemnities[0].deal, ids.sales[2]);
        assert_eq!(plan.indemnities[0].amount, Money::from_dollars(30));
        assert_eq!(plan.indemnities[1].deal, ids.sales[1]);
        assert_eq!(plan.indemnities[1].amount, Money::from_dollars(40));
        assert_eq!(plan.total(), Money::from_dollars(70));
    }

    #[test]
    fn greedy_matches_exhaustive_on_figure7() {
        let (spec, ids) = fixtures::figure7();
        let greedy = greedy_plan(&spec, ids.consumer);
        let best = exhaustive_min_plan(&spec, ids.consumer);
        assert_eq!(greedy.total(), best.total());
        assert_eq!(greedy, best);
    }

    #[test]
    fn applying_the_plan_makes_figure7_feasible() {
        let (mut spec, ids) = fixtures::figure7();
        assert!(!analyze(&spec).unwrap().feasible);
        let plan = greedy_plan(&spec, ids.consumer);
        plan.apply(&mut spec).unwrap();
        assert!(analyze(&spec).unwrap().feasible);
    }

    #[test]
    fn make_feasible_on_example2() {
        let (mut spec, _) = fixtures::example2();
        let plans = make_feasible(&mut spec).unwrap();
        assert_eq!(plans.len(), 1);
        // One indemnity suffices: the pricier deal ($20) is covered with
        // the other deal's price ($10).
        assert_eq!(plans[0].len(), 1);
        assert_eq!(plans[0].indemnities[0].amount, Money::from_dollars(10));
        assert!(analyze(&spec).unwrap().feasible);
    }

    #[test]
    fn make_feasible_noop_on_feasible_spec() {
        let (mut spec, _) = fixtures::example1();
        let plans = make_feasible(&mut spec).unwrap();
        assert!(plans.is_empty());
        assert!(spec.indemnities().is_empty());
    }

    #[test]
    fn make_feasible_fails_on_poor_broker() {
        // The poor broker's double red edge is not a bundle problem;
        // indemnities cannot fix it.
        let (mut spec, _) = fixtures::poor_broker();
        assert!(matches!(
            make_feasible(&mut spec),
            Err(CoreError::PlanFailed { .. })
        ));
    }

    #[test]
    fn single_purchase_needs_no_plan() {
        let (spec, ids) = fixtures::example1();
        let plan = greedy_plan(&spec, ids.consumer);
        assert!(plan.is_empty());
        assert_eq!(plan.total(), Money::ZERO);
        assert_eq!(
            required_indemnity(&spec, ids.consumer, ids.sale),
            Money::ZERO
        );
    }

    #[test]
    fn plan_display() {
        let (spec, ids) = fixtures::figure7();
        let plan = greedy_plan(&spec, ids.consumer);
        let s = plan.to_string();
        assert!(s.contains("total $70.00"));
        assert!(s.contains("$30.00"));
        assert!(s.contains("$40.00"));
    }
}
