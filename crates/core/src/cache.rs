//! Memoized feasibility analysis: a two-tier, sharded, lock-striped table
//! mapping graph structure to interned reduction outcomes.
//!
//! Sweep drivers (defection enumeration, trust-density sweeps, chaos
//! matrices, indemnity search) reduce the same handful of structural
//! shapes thousands of times. An [`AnalysisCache`] collapses those repeats
//! into one reduction per *structure*: on a miss the graph is relabelled
//! into canonical form, reduced there, and the canonical-coordinate
//! outcome is stored; on every path — hit or miss — the stored outcome is
//! translated back through the query graph's own canonical maps. Because
//! hit and miss both read the same interned entry through the same
//! translation, they return byte-identical [`ReductionOutcome`]s by
//! construction.
//!
//! # Two tiers
//!
//! Canonicalization itself (a search over colour refinements, §“canon”) is
//! far more expensive than the O(E) hash a lookup fundamentally needs, and
//! sweeps overwhelmingly re-query *identically labelled* graphs — the same
//! spec probed under different protocols or seeds. Lookups therefore go
//! through two keys:
//!
//! * **Tier 1** — a [`PreFingerprint`] of the *exact labelled* live
//!   structure, computed in one O(E) pass. A hit returns the interned
//!   canonical form and entry without running canonicalization at all —
//!   and serves a clone of the outcome translation memoized at intern
//!   time, so a hit does no relabelling work either.
//! * **Tier 2** — the label-invariant canonical [`Fingerprint`]. Only
//!   tier-1 misses (graphs never seen under these exact labels) pay for
//!   canonicalization; relabelled isomorphs then still hit here and share
//!   the single interned outcome.
//!
//! Equal pre-fingerprints imply identical labelled live structure (up to a
//! 2⁻¹²⁸ collision — the same trust extended to the canonical
//! fingerprint), so the interned canonical form translates the stored
//! outcome verbatim for every tier-1 hit.
//!
//! The cached trace can differ from a fresh [`analyze`](crate::analyze)
//! trace in step *order* (the deterministic reducer picks moves by edge
//! id, and canonical ids order differently) — both are maximal reductions,
//! and by the confluence theorem of §4.2 they agree on the verdict and on
//! the set of removed edges.
//!
//! Concurrency: the table is split into [`SHARDS`] stripes, each behind a
//! `parking_lot::Mutex`, selected by the fingerprint's low bits; counters
//! are relaxed atomics. Racing inserts of the same fingerprint resolve to
//! a single interned entry. In debug builds a sampled fraction of hits is
//! re-reduced from scratch and asserted equal to the cached entry, which
//! would expose a fingerprint collision (probability ≈ 2⁻¹²⁸).

use crate::build::BuildOptions;
use crate::canon::{canonicalize, prefingerprint, CanonicalForm, Fingerprint, PreFingerprint};
use crate::graph::{EdgeColor, SequencingGraph};
use crate::obs;
use crate::reduce::{ConfluenceReport, Reducer, ReductionOutcome, Strategy};
use crate::scratch::ScratchReducer;
use crate::CoreError;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of lock stripes. A small power of two: sweeps run on at most a
/// handful of workers, so 16 stripes keep contention negligible without
/// bloating the table.
const SHARDS: usize = 16;

/// In debug builds, one in this many hits is verified against a fresh
/// reduction of the canonical graph.
#[cfg(debug_assertions)]
const HIT_VERIFY_SAMPLE: u64 = 16;

/// An interned analysis result in canonical coordinates.
#[derive(Debug)]
struct CacheEntry {
    /// Outcome of reducing the canonical graph (canonical ids throughout).
    outcome: ReductionOutcome,
    /// Red edges among `outcome.remaining_edges` — the impasse colour
    /// profile, exposed via [`CachedVerdict`] without translation.
    remaining_red: u32,
    /// Randomized-order confluence validation performed so far on this
    /// structure's canonical graph (see [`AnalysisCache::confluence`]).
    confluence: Mutex<ConfluenceRecord>,
    /// Cache-clock millisecond this entry was interned at; drives TTL
    /// expiry (verdicts never decay *logically* — TTL only bounds how long
    /// an idle long-running service keeps a structure resident).
    interned_ms: u64,
    /// Cache-clock millisecond of the most recent lookup that served this
    /// entry; drives LRU-class segmented eviction.
    accessed_ms: AtomicU64,
}

/// A tier-1 value: one exact labelled live structure's canonical form,
/// paired with the structure's interned entry. Hits on this tier skip
/// canonicalization entirely and translate through the stored form.
#[derive(Debug)]
struct LabelledEntry {
    /// Canonical relabelling of the (exact, labelled) live structure.
    form: CanonicalForm,
    /// The tier-2 entry this structure resolves to.
    entry: Arc<CacheEntry>,
    /// `entry.outcome` translated back into this labelling's own ids,
    /// memoized once at intern time: translation is deterministic per
    /// labelled key, so a tier-1 hit serves a clone instead of
    /// re-relabelling the whole trace.
    translated: ReductionOutcome,
    /// Cache-clock millisecond this labelled key was interned at (TTL).
    interned_ms: u64,
    /// Cache-clock millisecond of the most recent tier-1 hit (LRU).
    accessed_ms: AtomicU64,
}

impl LabelledEntry {
    fn intern(form: CanonicalForm, entry: Arc<CacheEntry>, now_ms: u64) -> Arc<Self> {
        let translated = form.translate(&entry.outcome);
        Arc::new(LabelledEntry {
            form,
            entry,
            translated,
            interned_ms: now_ms,
            accessed_ms: AtomicU64::new(now_ms),
        })
    }
}

/// How much confluence sampling a structure has already been through:
/// seeds `0..samples` have run, and `disagreeing` lists the (normally
/// none) seeds whose verdict contradicted the reference.
#[derive(Debug, Default)]
struct ConfluenceRecord {
    samples: u64,
    disagreeing: Vec<u64>,
}

/// The label-free part of a cached outcome: everything a sweep needs when
/// it only gates on feasibility, available without translating ids back to
/// the query graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedVerdict {
    /// Whether the structure reduces to zero edges (§4.2.4).
    pub feasible: bool,
    /// Edges surviving at the impasse (0 iff feasible).
    pub remaining_edges: usize,
    /// Red edges among the survivors.
    pub remaining_red: u32,
}

/// A point-in-time snapshot of cache effectiveness counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the table (either tier).
    pub hits: u64,
    /// Hits answered at tier 1 — by exact labelled structure, skipping
    /// canonicalization entirely. A subset of `hits`.
    pub pre_hits: u64,
    /// Lookups that had to reduce.
    pub misses: u64,
    /// Entries actually interned (≤ misses: racing misses intern once).
    pub inserts: u64,
    /// Distinct structures currently interned (tier 2).
    pub entries: usize,
    /// Distinct labelled keys currently interned (tier 1, ≥ `entries`).
    pub labelled_entries: usize,
    /// Entries discarded by capacity eviction (both tiers; 0 on an
    /// unbounded cache).
    pub evictions: u64,
    /// Labelled keys dropped by targeted delta-aware invalidation
    /// (see [`AnalysisCache::invalidate_labelled`]).
    pub invalidations: u64,
    /// Keys (both tiers) dropped because they outlived the cache's TTL
    /// (0 on a cache without one). Disjoint from `evictions`, which counts
    /// capacity-pressure drops.
    pub expired: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups. Zero lookups report 0.0 rather
    /// than NaN, and the lookup total saturates instead of overflowing if
    /// the counters are ever near `u64::MAX`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits.saturating_add(self.misses);
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}% hit rate, {} label-fast), {} structures interned, {} evicted, {} expired",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.pre_hits,
            self.entries,
            self.evictions,
            self.expired
        )
    }
}

/// A sharded memo table mapping canonical fingerprints to interned
/// reduction outcomes. Cheap to share by reference across sweep workers;
/// all methods take `&self`.
///
/// By default the table only grows; [`with_capacity`](Self::with_capacity)
/// bounds it with segmented LRU-class eviction, and
/// [`with_capacity_and_ttl`](Self::with_capacity_and_ttl) additionally
/// expires idle keys by age — the configuration a long-running analysis
/// service wants.
#[derive(Debug)]
pub struct AnalysisCache {
    /// Tier 1: exact labelled live structure → canonical form + entry.
    pre_shards: [Mutex<HashMap<u128, Arc<LabelledEntry>>>; SHARDS],
    /// Tier 2: canonical fingerprint → interned outcome.
    shards: [Mutex<HashMap<u128, Arc<CacheEntry>>>; SHARDS],
    /// Per-shard entry cap for each tier; 0 means unbounded.
    shard_cap: usize,
    /// TTL in cache-clock milliseconds; 0 means entries never expire.
    ttl_ms: u64,
    /// Origin of the cache clock (see [`now_ms`](Self::now_ms)).
    epoch: Instant,
    /// Virtual milliseconds added to the cache clock by
    /// [`advance_clock`](Self::advance_clock), so TTL behaviour is testable
    /// without sleeping.
    clock_skew_ms: AtomicU64,
    hits: AtomicU64,
    pre_hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    expired: AtomicU64,
}

impl Default for AnalysisCache {
    fn default() -> Self {
        Self::new()
    }
}

impl AnalysisCache {
    /// An empty, unbounded cache without TTL.
    pub fn new() -> Self {
        Self::with_capacity_and_ttl(0, None)
    }

    /// An empty cache holding at most (approximately) `max_entries`
    /// interned keys *per tier*, without TTL. `0` means unbounded, same as
    /// [`new`](Self::new).
    ///
    /// Bounding is by **segmented LRU-class eviction**: the cap is spread
    /// over the [`SHARDS`] lock stripes (rounded up, at least one entry
    /// per stripe), and an insert into a full stripe first drops the
    /// least-recently-accessed *half* of that stripe (everything at or
    /// below the stripe's median access stamp) — one relaxed store per hit
    /// is the only hot-path bookkeeping, and eviction is a rare O(stripe)
    /// sweep instead of per-entry list surgery. Evicted totals are
    /// reported in [`CacheStats::evictions`] and on the `cache.evictions`
    /// counter. Entries are re-interned on next miss, so eviction affects
    /// throughput, never results.
    ///
    /// Memory note: a tier-1 key pins its tier-2 entry through an `Arc`,
    /// so the worst-case resident set is one entry per interned key across
    /// both tiers — still bounded, at roughly `2 × max_entries` entries.
    pub fn with_capacity(max_entries: usize) -> Self {
        Self::with_capacity_and_ttl(max_entries, None)
    }

    /// An empty cache bounded by `max_entries` (0 = unbounded, as in
    /// [`with_capacity`](Self::with_capacity)) whose keys additionally
    /// expire once they are at least `ttl` old, counted from intern time.
    ///
    /// Expiry is lazy: a lookup that lands on an over-age key drops it,
    /// counts it in [`CacheStats::expired`] (and on the `cache.expired`
    /// counter), and proceeds as a miss — there is no background sweeper
    /// thread. A verdict never decays *logically* (structure determines
    /// outcome), so TTL exists purely to bound the resident set of a
    /// long-running service whose key population drifts: without it, keys
    /// for structures that will never be queried again survive until
    /// capacity pressure happens to hit their stripe.
    ///
    /// Both tiers expire independently: a fresh labelled key can outlive
    /// its structure's tier-2 table slot (the `Arc` pin keeps results
    /// correct), and an expired labelled key re-resolves through a still
    /// fresh tier 2 without re-reducing.
    pub fn with_capacity_and_ttl(max_entries: usize, ttl: Option<Duration>) -> Self {
        AnalysisCache {
            pre_shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            shard_cap: if max_entries == 0 {
                0
            } else {
                max_entries.div_ceil(SHARDS).max(1)
            },
            ttl_ms: ttl.map_or(0, |d| (d.as_millis() as u64).max(1)),
            epoch: Instant::now(),
            clock_skew_ms: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            pre_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            expired: AtomicU64::new(0),
        }
    }

    /// Milliseconds on the cache clock: wall time since construction plus
    /// any virtual skew from [`advance_clock`](Self::advance_clock).
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64 + self.clock_skew_ms.load(Ordering::Relaxed)
    }

    /// Advances the cache clock by `by` without sleeping. Exists so TTL
    /// expiry is deterministic under test; harmless (if pointless) on a
    /// cache without a TTL.
    pub fn advance_clock(&self, by: Duration) {
        self.clock_skew_ms
            .fetch_add(by.as_millis() as u64, Ordering::Relaxed);
    }

    /// Whether a key interned at `interned_ms` is over-age at `now`.
    fn is_expired(&self, interned_ms: u64, now: u64) -> bool {
        self.ttl_ms != 0 && now.saturating_sub(interned_ms) >= self.ttl_ms
    }

    /// Counts one lazily-dropped over-age key.
    fn note_expired(&self) {
        self.expired.fetch_add(1, Ordering::Relaxed);
        obs::with(|r| r.counter("cache.expired", 1));
    }

    /// Makes room in `map`'s stripe if inserting a new `key` would
    /// overflow the per-shard cap: the least-recently-accessed half of the
    /// stripe (access stamp at or below the median, read via `stamp`) is
    /// dropped and credited to the eviction counters. Inserts of an
    /// already-present key never evict. When every stamp is equal — e.g. a
    /// burst interned within one millisecond — the whole stripe goes,
    /// degenerating to the coarse segment eviction this replaces.
    fn evict_if_full<V>(&self, map: &mut HashMap<u128, V>, key: u128, stamp: impl Fn(&V) -> u64) {
        if self.shard_cap == 0 || map.len() < self.shard_cap || map.contains_key(&key) {
            return;
        }
        let mut stamps: Vec<u64> = map.values().map(&stamp).collect();
        let mid = stamps.len() / 2;
        let (_, &mut threshold, _) = stamps.select_nth_unstable(mid);
        let before = map.len();
        map.retain(|_, v| stamp(v) > threshold);
        let evicted = (before - map.len()) as u64;
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        obs::with(|r| r.counter("cache.evictions", evicted));
    }

    /// Interns `labelled` under its tier-1 key, evicting the stripe's
    /// stale half first if it is at capacity. Racing interns keep the
    /// first value.
    fn intern_labelled(&self, pre: PreFingerprint, labelled: &Arc<LabelledEntry>) {
        let mut shard = self.pre_shard(pre).lock();
        self.evict_if_full(&mut shard, pre.as_u128(), |l| {
            l.accessed_ms.load(Ordering::Relaxed)
        });
        shard
            .entry(pre.as_u128())
            .or_insert_with(|| labelled.clone());
    }

    fn pre_shard(&self, pre: PreFingerprint) -> &Mutex<HashMap<u128, Arc<LabelledEntry>>> {
        &self.pre_shards[(pre.as_u128() as usize) & (SHARDS - 1)]
    }

    fn shard(&self, fp: Fingerprint) -> &Mutex<HashMap<u128, Arc<CacheEntry>>> {
        &self.shards[(fp.as_u128() as usize) & (SHARDS - 1)]
    }

    /// In debug builds, every [`HIT_VERIFY_SAMPLE`]th hit re-reduces the
    /// canonical graph from scratch and compares — this would expose a
    /// collision in *either* fingerprint tier.
    #[cfg(debug_assertions)]
    fn maybe_verify_hit(hits_before: u64, graph: &SequencingGraph, labelled: &LabelledEntry) {
        if hits_before.is_multiple_of(HIT_VERIFY_SAMPLE) {
            let fresh = Reducer::new(labelled.form.canonical_graph(graph)).run();
            assert_eq!(
                fresh, labelled.entry.outcome,
                "cached outcome diverges from a fresh reduction (fingerprint collision?)"
            );
        }
    }

    #[cfg(not(debug_assertions))]
    fn maybe_verify_hit(_hits_before: u64, _graph: &SequencingGraph, _labelled: &LabelledEntry) {}

    /// Looks up (or computes and interns) the entry for `graph`'s
    /// structure. Tier-1 hits return without canonicalizing; tier-1 misses
    /// canonicalize, resolve through tier 2 (reducing only if the
    /// *structure* is new as well), and intern the labelled key for next
    /// time.
    fn entry(&self, graph: &SequencingGraph) -> Arc<LabelledEntry> {
        let now = self.now_ms();
        let pre = prefingerprint(graph);
        let tier1 = {
            let mut shard = self.pre_shard(pre).lock();
            match shard.get(&pre.as_u128()) {
                Some(l) if self.is_expired(l.interned_ms, now) => {
                    // Lazy TTL: drop the over-age key and miss through.
                    shard.remove(&pre.as_u128());
                    self.note_expired();
                    None
                }
                Some(l) => Some(l.clone()),
                None => None,
            }
        };
        if let Some(labelled) = tier1 {
            labelled.accessed_ms.store(now, Ordering::Relaxed);
            labelled.entry.accessed_ms.store(now, Ordering::Relaxed);
            let hits = self.hits.fetch_add(1, Ordering::Relaxed);
            self.pre_hits.fetch_add(1, Ordering::Relaxed);
            obs::with(|r| r.counter("cache.tier1_hits", 1));
            Self::maybe_verify_hit(hits, graph, &labelled);
            return labelled;
        }
        let form = canonicalize(graph);
        let fp = form.fingerprint();
        let cached = {
            let mut shard = self.shard(fp).lock();
            match shard.get(&fp.as_u128()) {
                Some(e) if self.is_expired(e.interned_ms, now) => {
                    shard.remove(&fp.as_u128());
                    self.note_expired();
                    None
                }
                Some(e) => Some(e.clone()),
                None => None,
            }
        };
        let entry = match cached {
            Some(entry) => {
                entry.accessed_ms.store(now, Ordering::Relaxed);
                let hits = self.hits.fetch_add(1, Ordering::Relaxed);
                obs::with(|r| r.counter("cache.tier2_hits", 1));
                let labelled = LabelledEntry::intern(form, entry, now);
                Self::maybe_verify_hit(hits, graph, &labelled);
                self.intern_labelled(pre, &labelled);
                return labelled;
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                obs::with(|r| r.counter("cache.misses", 1));
                let intern_span = obs::enabled().then(obs::Span::wall);
                // Reduce outside the lock: reductions are the expensive
                // part, and a racing thread interning the same structure
                // first is harmless.
                let (outcome, reduced) =
                    Reducer::new(form.canonical_graph(graph)).run_keeping_graph();
                let remaining_red = outcome
                    .remaining_edges
                    .iter()
                    .filter(|&&e| reduced.edge(e).color == EdgeColor::Red)
                    .count() as u32;
                let candidate = Arc::new(CacheEntry {
                    outcome,
                    remaining_red,
                    confluence: Mutex::new(ConfluenceRecord::default()),
                    interned_ms: now,
                    accessed_ms: AtomicU64::new(now),
                });
                let mut inserted = false;
                let entry = {
                    let mut shard = self.shard(fp).lock();
                    self.evict_if_full(&mut shard, fp.as_u128(), |e| {
                        e.accessed_ms.load(Ordering::Relaxed)
                    });
                    shard
                        .entry(fp.as_u128())
                        .or_insert_with(|| {
                            inserted = true;
                            candidate
                        })
                        .clone()
                };
                if inserted {
                    self.inserts.fetch_add(1, Ordering::Relaxed);
                }
                // Interning latency = canonical reduce + table insert on
                // the miss path, in wall-clock nanoseconds.
                if let Some(span) = intern_span {
                    span.finish("cache.intern_ns", None);
                }
                entry
            }
        };
        let labelled = LabelledEntry::intern(form, entry, now);
        self.intern_labelled(pre, &labelled);
        labelled
    }

    /// Memoized equivalent of reducing `graph` to its fixpoint: the
    /// returned outcome is expressed in `graph`'s own ids and is
    /// byte-identical whether it was served from the table or computed
    /// fresh. See the module docs for how its trace relates to
    /// [`analyze`](crate::analyze)'s.
    pub fn reduce(&self, graph: &SequencingGraph) -> ReductionOutcome {
        self.entry(graph).translated.clone()
    }

    /// Memoized feasibility verdict for `graph`, skipping the id
    /// translation — the fast path for sweeps that only gate on
    /// feasibility.
    pub fn verdict(&self, graph: &SequencingGraph) -> CachedVerdict {
        let labelled = self.entry(graph);
        CachedVerdict {
            feasible: labelled.entry.outcome.feasible,
            remaining_edges: labelled.entry.outcome.remaining_edges.len(),
            remaining_red: labelled.entry.remaining_red,
        }
    }

    /// Memoized [`analyze`](crate::analyze): builds the sequencing graph
    /// and reduces it through the cache.
    pub fn analyze(
        &self,
        spec: &trustseq_model::ExchangeSpec,
    ) -> Result<ReductionOutcome, CoreError> {
        self.analyze_with(spec, BuildOptions::default())
    }

    /// Memoized [`analyze_with`](crate::analyze_with). Graphs built under
    /// different [`BuildOptions`] have different structures, so they
    /// naturally occupy distinct cache entries.
    pub fn analyze_with(
        &self,
        spec: &trustseq_model::ExchangeSpec,
        options: BuildOptions,
    ) -> Result<ReductionOutcome, CoreError> {
        let graph = SequencingGraph::from_spec_with(spec, options)?;
        Ok(self.reduce(&graph))
    }

    /// Memoized confluence validation
    /// (see [`confluence_check_cached`](crate::confluence_check_cached)):
    /// randomized-order samples run once per *structure*, on its canonical
    /// graph, and every isomorphic query reuses the interned record. A
    /// query asking for more samples than the record holds extends it with
    /// exactly the missing seeds.
    pub fn confluence(&self, graph: &SequencingGraph, samples: u64) -> ConfluenceReport {
        let labelled = self.entry(graph);
        let reference_feasible = labelled.entry.outcome.feasible;
        let mut record = labelled.entry.confluence.lock();
        if record.samples < samples {
            let canonical = labelled.form.canonical_graph(graph);
            // Only the verdict is compared, so the trace-free fast path
            // saves allocating and filling a ReductionOutcome per seed.
            let mut scratch = ScratchReducer::new();
            for seed in record.samples..samples {
                let feasible = scratch.run_verdict_only(&canonical, Strategy::Randomized { seed });
                if feasible != reference_feasible {
                    record.disagreeing.push(seed);
                }
            }
            record.samples = samples;
        }
        let disagreeing_seeds: Vec<u64> = record
            .disagreeing
            .iter()
            .copied()
            .filter(|&s| s < samples)
            .collect();
        ConfluenceReport {
            reference_feasible,
            samples,
            agreeing: samples - disagreeing_seeds.len() as u64,
            disagreeing_seeds,
        }
    }

    /// Drops the tier-1 entry for the exact labelled structure keyed by
    /// `pre`, if present, returning whether anything was dropped.
    ///
    /// This is the *delta-aware* invalidation hook: when a live
    /// marketplace mutates one structure in place (a
    /// [`DeltaAnalyzer`](crate::DeltaAnalyzer) applying
    /// [`GraphDelta`](crate::GraphDelta)s), only that structure's
    /// pre-mutation labelled key goes stale — its graph will never present
    /// that exact labelled live structure again. Dropping the single key
    /// leaves every other labelled key and the whole canonical tier
    /// untouched: tier-2 entries are immutable per *structure* and stay
    /// correct for any graph that still hashes to them, so they are never
    /// invalidated, merely unreferenced once no labelled key pins them.
    pub fn invalidate_labelled(&self, pre: PreFingerprint) -> bool {
        let dropped = self.pre_shard(pre).lock().remove(&pre.as_u128()).is_some();
        if dropped {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
            obs::with(|r| r.counter("cache.invalidations", 1));
        }
        dropped
    }

    /// [`invalidate_labelled`](Self::invalidate_labelled) keyed by a graph:
    /// computes the labelled pre-fingerprint of `graph`'s *current* live
    /// structure and drops that key. Call with the graph **before**
    /// mutating it (or with its stored pre-fingerprint) — afterwards it
    /// hashes to a different key.
    pub fn invalidate_graph(&self, graph: &SequencingGraph) -> bool {
        self.invalidate_labelled(prefingerprint(graph))
    }

    /// Current counter snapshot, torn-free across shards: every shard of
    /// both tiers is locked (in fixed index order, so lookups holding at
    /// most one shard lock cannot deadlock against this) *before* any
    /// counter or table length is read. Previously each shard length was
    /// read under its own lock while inserts raced the others, so the
    /// entry totals could be torn across shards; now both tiers' tables
    /// are frozen together and the counters are sampled at that same
    /// point.
    pub fn stats(&self) -> CacheStats {
        let pre_guards: Vec<_> = self.pre_shards.iter().map(|s| s.lock()).collect();
        let guards: Vec<_> = self.shards.iter().map(|s| s.lock()).collect();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            pre_hits: self.pre_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            entries: guards.iter().map(|s| s.len()).sum(),
            labelled_entries: pre_guards.iter().map(|s| s.len()).sum(),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, fixtures};

    #[test]
    fn hit_and_miss_return_byte_identical_outcomes() {
        let cache = AnalysisCache::new();
        for spec in [
            fixtures::example1().0,
            fixtures::example2().0,
            fixtures::poor_broker().0,
            fixtures::figure7().0,
        ] {
            let cold = cache.analyze(&spec).unwrap();
            let warm = cache.analyze(&spec).unwrap();
            assert_eq!(cold, warm, "{}", spec.name());
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.inserts, 4);
        assert_eq!(stats.entries, 4);
    }

    #[test]
    fn cached_verdict_matches_plain_analyze() {
        let cache = AnalysisCache::new();
        for spec in [
            fixtures::example1().0,
            fixtures::example2().0,
            fixtures::poor_broker().0,
            fixtures::figure7().0,
            fixtures::example2_shared_escrow().0,
        ] {
            let plain = analyze(&spec).unwrap();
            let cached = cache.analyze(&spec).unwrap();
            assert_eq!(plain.feasible, cached.feasible, "{}", spec.name());
            // Confluence (§4.2): any two maximal reductions remove the
            // same edge set, so the impasses must coincide exactly.
            assert_eq!(
                plain.remaining_edges,
                cached.remaining_edges,
                "{}",
                spec.name()
            );
            assert_eq!(plain.trace.len(), cached.trace.len(), "{}", spec.name());
        }
    }

    #[test]
    fn isomorphic_specs_share_one_entry() {
        let (spec, ids) = fixtures::example2();
        let mut v1 = spec.clone();
        v1.add_trust(ids.source1, ids.broker1).unwrap();
        let mut v2 = spec.clone();
        v2.add_trust(ids.source2, ids.broker2).unwrap();
        let cache = AnalysisCache::new();
        let o1 = cache.analyze(&v1).unwrap();
        let o2 = cache.analyze(&v2).unwrap();
        assert_eq!(o1.feasible, o2.feasible);
        let stats = cache.stats();
        assert_eq!(stats.entries, 1, "isomorphic variants must intern once");
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn permuted_graphs_hit_the_cache() {
        let graph = SequencingGraph::from_spec(&fixtures::figure7().0).unwrap();
        let cache = AnalysisCache::new();
        let reference = cache.reduce(&graph);
        for seed in 0..6 {
            let permuted = graph.permuted(seed);
            let outcome = cache.reduce(&permuted);
            assert_eq!(outcome.feasible, reference.feasible);
            assert_eq!(outcome.trace.len(), reference.trace.len());
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 6);
    }

    #[test]
    fn identical_lookups_hit_the_labelled_tier() {
        let cache = AnalysisCache::new();
        let graph = SequencingGraph::from_spec(&fixtures::figure7().0).unwrap();
        let cold = cache.reduce(&graph);
        let warm = cache.reduce(&graph);
        assert_eq!(cold, warm);
        let stats = cache.stats();
        assert_eq!(stats.pre_hits, 1, "warm lookup must skip canonicalization");
        assert_eq!(stats.labelled_entries, 1);
        // A relabelled isomorph misses tier 1 but still hits tier 2, and
        // its labelled key is interned for subsequent queries.
        let permuted = graph.permuted(42);
        let translated = cache.reduce(&permuted);
        assert_eq!(translated.feasible, cold.feasible);
        cache.reduce(&permuted);
        let stats = cache.stats();
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.pre_hits, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1, "one structure");
        assert_eq!(stats.labelled_entries, 2, "two labelled keys");
    }

    #[test]
    fn verdict_reports_red_survivors() {
        let cache = AnalysisCache::new();
        let (spec, _) = fixtures::example2();
        let graph = SequencingGraph::from_spec(&spec).unwrap();
        let verdict = cache.verdict(&graph);
        assert!(!verdict.feasible);
        assert!(verdict.remaining_edges > 0);
        let plain = analyze(&spec).unwrap();
        assert_eq!(verdict.remaining_edges, plain.remaining_edges.len());
        let reds = plain
            .remaining_edges
            .iter()
            .filter(|&&e| graph.edge(e).color == EdgeColor::Red)
            .count();
        assert_eq!(verdict.remaining_red as usize, reds);
    }

    #[test]
    fn confluence_record_is_interned_per_structure() {
        let cache = AnalysisCache::new();
        let graph = SequencingGraph::from_spec(&fixtures::example1().0).unwrap();
        let first = cache.confluence(&graph, 8);
        assert!(first.reference_feasible);
        assert_eq!(first.agreeing, 8);
        assert!(first.disagreeing_seeds.is_empty());
        // Isomorphic queries reuse the record: no further reductions, same
        // report (modulo nothing — it is label-free).
        for seed in 0..4 {
            let again = cache.confluence(&graph.permuted(seed), 8);
            assert_eq!(again, first);
        }
        // Asking for more samples extends the record in place; asking for
        // fewer reports the prefix.
        let extended = cache.confluence(&graph, 12);
        assert_eq!(extended.samples, 12);
        assert_eq!(extended.agreeing, 12);
        let prefix = cache.confluence(&graph, 3);
        assert_eq!(prefix.samples, 3);
        assert_eq!(prefix.agreeing, 3);
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn cached_confluence_matches_plain_check() {
        let cache = AnalysisCache::new();
        for spec in [
            fixtures::example1().0,
            fixtures::example2().0,
            fixtures::figure7().0,
        ] {
            let plain = crate::confluence_check(&spec, 10).unwrap();
            let cached = crate::confluence_check_cached(&spec, 10, Some(&cache)).unwrap();
            assert_eq!(plain, cached, "{}", spec.name());
        }
    }

    #[test]
    fn concurrent_lookups_intern_once() {
        let cache = AnalysisCache::new();
        let graph = SequencingGraph::from_spec(&fixtures::example1().0).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..8 {
                        assert!(cache.reduce(&graph).feasible);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.hits + stats.misses, 32);
        assert!(stats.inserts == 1, "racing misses must intern exactly once");
    }

    #[test]
    fn stats_display_is_human_readable() {
        let cache = AnalysisCache::new();
        cache.analyze(&fixtures::example1().0).unwrap();
        cache.analyze(&fixtures::example1().0).unwrap();
        let text = cache.stats().to_string();
        assert!(text.contains("1 hits / 1 misses"), "{text}");
        assert!(text.contains("50.0% hit rate"), "{text}");
        assert!(text.contains("1 structures interned"), "{text}");
        assert!(text.contains("0 evicted"), "{text}");
    }

    /// A resale chain with `depth` brokers — each depth is a structurally
    /// distinct graph, so a run over many depths fills tier 2 with that
    /// many distinct entries.
    fn chain_spec(depth: usize) -> trustseq_model::ExchangeSpec {
        use trustseq_model::{Money, Role};
        let mut spec = trustseq_model::ExchangeSpec::new(format!("chain-{depth}"));
        let consumer = spec.add_principal("consumer", Role::Consumer).unwrap();
        let brokers: Vec<_> = (0..depth)
            .map(|k| spec.add_principal(format!("b{k}"), Role::Broker).unwrap())
            .collect();
        let producer = spec.add_principal("src", Role::Producer).unwrap();
        let doc = spec.add_item("doc", "The Document").unwrap();
        let mut sellers = brokers.clone();
        sellers.push(producer);
        let mut buyers = vec![consumer];
        buyers.extend(brokers.iter().copied());
        let mut price = Money::from_dollars(100);
        let mut deals = Vec::new();
        for k in 0..=depth {
            let t = spec.add_trusted(format!("t{k}")).unwrap();
            deals.push(spec.add_deal(sellers[k], buyers[k], t, doc, price).unwrap());
            price -= Money::from_dollars(2);
        }
        for (k, &broker) in brokers.iter().enumerate() {
            spec.add_resale_constraint(broker, deals[k], deals[k + 1])
                .unwrap();
        }
        spec
    }

    #[test]
    fn bounded_cache_evicts_and_stays_correct() {
        // Cap of 4 spreads to 1 entry per stripe; 20 distinct structures
        // cannot fit in 16 stripes, so eviction is guaranteed by
        // pigeonhole — and every verdict must match the uncached analyzer
        // before and after entries are thrown out.
        let cache = AnalysisCache::with_capacity(4);
        let specs: Vec<_> = (1..=20).map(chain_spec).collect();
        for spec in &specs {
            assert_eq!(
                cache.analyze(spec).unwrap().feasible,
                analyze(spec).unwrap().feasible,
                "{}",
                spec.name()
            );
        }
        let stats = cache.stats();
        assert!(
            stats.evictions > 0,
            "20 structures over 16 stripes: {stats:?}"
        );
        assert!(
            stats.entries <= SHARDS,
            "tier 2 must respect the per-stripe cap: {stats:?}"
        );
        assert!(stats.labelled_entries <= SHARDS, "{stats:?}");
        // Evicted structures are recomputed, not wrong.
        for spec in &specs {
            assert_eq!(
                cache.analyze(spec).unwrap().feasible,
                analyze(spec).unwrap().feasible
            );
        }
        assert!(cache.stats().to_string().contains("evicted"));
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = AnalysisCache::new();
        for depth in 1..=20 {
            cache.analyze(&chain_spec(depth)).unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.entries, 20);
        // with_capacity(0) is the same unbounded behaviour.
        let unbounded = AnalysisCache::with_capacity(0);
        for depth in 1..=20 {
            unbounded.analyze(&chain_spec(depth)).unwrap();
        }
        assert_eq!(unbounded.stats().evictions, 0);
    }

    #[test]
    fn tier1_survives_tier2_eviction_and_stays_correct() {
        // A tier-1 key Arc-pins its CacheEntry, so evicting the entry's
        // tier-2 stripe must not corrupt labelled-tier hits: the pinned
        // entry is immutable and stays correct for the structure it was
        // reduced from. Hammer tier 2 with distinct structures until the
        // original's stripe has demonstrably been cleared, then re-query
        // the original through tier 1 and compare byte-for-byte.
        let cache = AnalysisCache::with_capacity(4);
        let graph = SequencingGraph::from_spec(&fixtures::example1().0).unwrap();
        let reference = cache.reduce(&graph);
        let mut tier1_hits_under_pressure = 0u64;
        for depth in 2..=40 {
            cache.analyze(&chain_spec(depth)).unwrap();
            let before = cache.stats();
            let warm = cache.reduce(&graph);
            assert_eq!(warm, reference, "depth {depth}");
            let after = cache.stats();
            if before.evictions > 0 && after.pre_hits > before.pre_hits {
                tier1_hits_under_pressure += 1;
            }
        }
        let stats = cache.stats();
        assert!(stats.evictions > 0, "pressure must evict: {stats:?}");
        assert!(
            tier1_hits_under_pressure > 0,
            "some re-queries must be served by the labelled tier after \
             evictions began: {stats:?}"
        );
        // And the uncached oracle still agrees.
        assert_eq!(
            reference.feasible,
            analyze(&fixtures::example1().0).unwrap().feasible
        );
    }

    #[test]
    fn invalidation_drops_only_the_targeted_labelled_key() {
        let cache = AnalysisCache::new();
        let g1 = SequencingGraph::from_spec(&fixtures::example1().0).unwrap();
        let g2 = SequencingGraph::from_spec(&fixtures::example2().0).unwrap();
        cache.reduce(&g1);
        cache.reduce(&g2);
        assert_eq!(cache.stats().labelled_entries, 2);

        assert!(cache.invalidate_graph(&g1));
        assert!(!cache.invalidate_graph(&g1), "second drop is a no-op");
        let stats = cache.stats();
        assert_eq!(stats.labelled_entries, 1, "{stats:?}");
        assert_eq!(stats.entries, 2, "canonical tier is never invalidated");
        assert_eq!(stats.invalidations, 1);

        // g2's labelled key is untouched: its lookup is still a tier-1
        // hit, while g1 re-resolves through tier 2 without re-reducing.
        let pre_hits = cache.stats().pre_hits;
        cache.reduce(&g2);
        assert_eq!(cache.stats().pre_hits, pre_hits + 1);
        let misses = cache.stats().misses;
        cache.reduce(&g1);
        assert_eq!(cache.stats().misses, misses, "structure is still interned");
        assert_eq!(cache.stats().labelled_entries, 2, "key re-interned");
    }

    #[test]
    fn ttl_expires_both_tiers_lazily() {
        let ttl = Duration::from_millis(60_000);
        let cache = AnalysisCache::with_capacity_and_ttl(0, Some(ttl));
        let graph = SequencingGraph::from_spec(&fixtures::figure7().0).unwrap();
        let reference = cache.reduce(&graph);
        // Within the TTL the key is live: a re-query is a tier-1 hit.
        cache.advance_clock(Duration::from_millis(59_000));
        assert_eq!(cache.reduce(&graph), reference);
        let stats = cache.stats();
        assert_eq!(stats.pre_hits, 1);
        assert_eq!(stats.expired, 0);
        // Hits do not refresh intern age (TTL counts from intern, not last
        // access): one more millisecond and both tiers are over-age. The
        // next lookup lazily drops them, misses, and re-reduces to the
        // same outcome.
        cache.advance_clock(Duration::from_millis(1_000));
        assert_eq!(cache.reduce(&graph), reference);
        let stats = cache.stats();
        assert_eq!(stats.misses, 2, "{stats:?}");
        assert_eq!(stats.expired, 2, "tier-1 and tier-2 keys both expire");
        assert_eq!(stats.entries, 1, "re-interned fresh");
        assert_eq!(stats.labelled_entries, 1);
        // The re-interned key is young again.
        cache.advance_clock(Duration::from_millis(30_000));
        assert_eq!(cache.reduce(&graph), reference);
        assert_eq!(cache.stats().expired, 2);
    }

    #[test]
    fn ttl_zero_duration_and_no_ttl_never_expire() {
        // None = no TTL even across huge clock jumps.
        let cache = AnalysisCache::with_capacity_and_ttl(0, None);
        let graph = SequencingGraph::from_spec(&fixtures::example1().0).unwrap();
        cache.reduce(&graph);
        cache.advance_clock(Duration::from_secs(10_000_000));
        cache.reduce(&graph);
        let stats = cache.stats();
        assert_eq!(stats.expired, 0);
        assert_eq!(stats.pre_hits, 1);
    }

    #[test]
    fn tier1_stays_consistent_across_time_based_eviction() {
        // The PR-8 labelled-key consistency regression, extended to TTL:
        // interleave queries whose keys expire at different cache-clock
        // times with capacity pressure, and require every answer to stay
        // byte-identical to the first. Expiry and eviction may cost
        // re-reduction, never correctness.
        let ttl = Duration::from_millis(10_000);
        let cache = AnalysisCache::with_capacity_and_ttl(4, Some(ttl));
        let graph = SequencingGraph::from_spec(&fixtures::example1().0).unwrap();
        let reference = cache.reduce(&graph);
        for round in 0..30u64 {
            // Advance past the TTL every few rounds so the pinned graph's
            // keys expire repeatedly while chain structures churn the
            // bounded stripes.
            cache.advance_clock(Duration::from_millis(4_000));
            cache
                .analyze(&chain_spec(2 + (round as usize % 12)))
                .unwrap();
            let warm = cache.reduce(&graph);
            assert_eq!(warm, reference, "round {round}");
        }
        let stats = cache.stats();
        assert!(stats.expired > 0, "TTL must have fired: {stats:?}");
        assert!(stats.evictions > 0, "capacity must have fired: {stats:?}");
        assert!(stats.labelled_entries <= SHARDS, "{stats:?}");
        assert_eq!(
            reference.feasible,
            analyze(&fixtures::example1().0).unwrap().feasible
        );
    }

    #[test]
    fn segmented_eviction_drops_the_stale_half() {
        // Drive the private eviction hook directly: a full stripe sheds
        // everything at or below its median access stamp, so the
        // most-recently-used half survives.
        let cache = AnalysisCache::with_capacity(8 * SHARDS); // 8 per stripe
        let mut map: HashMap<u128, u64> = (0..8u128).map(|k| (k, k as u64)).collect();
        cache.evict_if_full(&mut map, 99, |v| *v);
        assert_eq!(map.len(), 3, "stamps 0..=4 (median 4) evicted: {map:?}");
        assert!(map.values().all(|&v| v > 4), "{map:?}");
        assert_eq!(cache.stats().evictions, 5);

        // Inserting an existing key never evicts; a non-full stripe never
        // evicts.
        cache.evict_if_full(&mut map, 7, |v| *v);
        assert_eq!(map.len(), 3);
        cache.evict_if_full(&mut map, 100, |v| *v);
        assert_eq!(map.len(), 3);

        // Uniform stamps degenerate to clearing the stripe (still at
        // least one slot freed).
        let mut uniform: HashMap<u128, u64> = (0..8u128).map(|k| (k, 7)).collect();
        cache.evict_if_full(&mut uniform, 99, |v| *v);
        assert!(uniform.is_empty(), "{uniform:?}");
    }

    #[test]
    fn lru_eviction_prefers_dropping_cold_entries() {
        // End-to-end recency check on tier 2: keep one structure hot with
        // a touch between every insertion burst; after heavy churn the hot
        // structure must still be resolvable without a fresh reduction
        // much more often than not. (Stripe assignment is hash-dependent,
        // so assert on the aggregate miss count rather than per-stripe
        // placement.)
        let cache = AnalysisCache::with_capacity(2 * SHARDS); // 2 per stripe
        let hot = SequencingGraph::from_spec(&fixtures::figure7().0).unwrap();
        cache.reduce(&hot);
        let mut hot_misses = 0u64;
        for depth in 1..=40 {
            cache.analyze(&chain_spec(depth)).unwrap();
            // Tick the virtual clock between the cold insert and the hot
            // touch so the hot stamps are strictly fresher than every cold
            // entry's, regardless of how fast the loop runs.
            cache.advance_clock(Duration::from_millis(5));
            let before = cache.stats().misses;
            cache.reduce(&hot);
            if cache.stats().misses > before {
                hot_misses += 1;
            }
        }
        let stats = cache.stats();
        assert!(stats.evictions > 0, "churn must evict: {stats:?}");
        assert_eq!(
            hot_misses, 0,
            "a continuously-touched entry outlives cold churn: {stats:?}"
        );
    }

    #[test]
    fn tier1_eviction_bounds_labelled_keys() {
        // Permutations of one structure are distinct tier-1 keys sharing a
        // single tier-2 entry: enough of them must overflow and evict
        // tier 1 while tier 2 stays at one interned structure.
        let cache = AnalysisCache::with_capacity(4);
        let graph = SequencingGraph::from_spec(&fixtures::figure7().0).unwrap();
        let reference = cache.reduce(&graph);
        for seed in 0..40 {
            let outcome = cache.reduce(&graph.permuted(seed));
            assert_eq!(outcome.feasible, reference.feasible);
            assert_eq!(outcome.trace.len(), reference.trace.len());
        }
        let stats = cache.stats();
        assert!(stats.labelled_entries <= SHARDS, "{stats:?}");
        assert!(stats.evictions > 0, "{stats:?}");
        assert_eq!(stats.entries, 1, "one structure throughout: {stats:?}");
    }
}
