//! Graphviz (DOT) export for interaction and sequencing graphs — the tool
//! for regenerating the paper's figures.

use crate::graph::{EdgeColor, SequencingGraph};
use std::fmt::Write as _;
use trustseq_model::{ExchangeSpec, InteractionGraph};

fn agent_name(spec: &ExchangeSpec, a: trustseq_model::AgentId) -> String {
    spec.participant(a)
        .map(|p| p.name().to_owned())
        .unwrap_or_else(|_| a.to_string())
}

/// Renders an interaction graph (Figures 1/2) in DOT: principals as circles,
/// trusted components as squares.
pub fn interaction_to_dot(spec: &ExchangeSpec, graph: &InteractionGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph interaction {{");
    let _ = writeln!(out, "  layout=dot; rankdir=LR;");
    for &p in graph.principals() {
        let _ = writeln!(out, "  \"{}\" [shape=circle];", agent_name(spec, p));
    }
    for &t in graph.trusted() {
        let _ = writeln!(out, "  \"{}\" [shape=square];", agent_name(spec, t));
    }
    for e in graph.edges() {
        let _ = writeln!(
            out,
            "  \"{}\" -- \"{}\" [label=\"{} {}\"];",
            agent_name(spec, e.principal),
            agent_name(spec, e.trusted),
            e.deal,
            e.side
        );
    }
    // Trusted links (§9's hierarchy of trust) as dashed component-to-
    // component edges.
    for &(a, b) in spec.trusted_links() {
        let _ = writeln!(
            out,
            "  \"{}\" -- \"{}\" [style=dashed, label=\"trust link\"];",
            agent_name(spec, a),
            agent_name(spec, b),
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a sequencing graph (Figures 3/4) in DOT: commitments as hexagons,
/// conjunctions as squares, red edges bold red. Removed edges are drawn
/// dashed grey, so a partially reduced graph shows the reduction's progress
/// (Figures 5/6).
pub fn sequencing_to_dot(spec: &ExchangeSpec, graph: &SequencingGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph sequencing {{");
    let _ = writeln!(out, "  layout=dot; rankdir=LR;");
    for c in graph.commitments() {
        let _ = writeln!(
            out,
            "  \"{}\" [shape=hexagon, label=\"{} -- {}\"];",
            c.id,
            agent_name(spec, c.principal),
            agent_name(spec, c.trusted),
        );
    }
    for j in graph.conjunctions() {
        let _ = writeln!(
            out,
            "  \"{}\" [shape=square, label=\"AND {}\"];",
            j.id,
            agent_name(spec, j.agent),
        );
    }
    for e in graph.edges() {
        let style = match (graph.is_live(e.id), e.color) {
            (true, EdgeColor::Red) => "[color=red, penwidth=2]",
            (true, EdgeColor::Black) => "[color=black]",
            (false, _) => "[color=grey, style=dashed]",
        };
        let _ = writeln!(
            out,
            "  \"{}\" -- \"{}\" {style};",
            e.commitment, e.conjunction
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::Reducer;

    #[test]
    fn interaction_dot_has_all_nodes_and_edges() {
        let (spec, _) = fixtures::example1();
        let g = spec.interaction_graph().unwrap();
        let dot = interaction_to_dot(&spec, &g);
        assert!(dot.starts_with("graph interaction {"));
        assert!(dot.contains("\"consumer\" [shape=circle]"));
        assert!(dot.contains("\"t1\" [shape=square]"));
        assert_eq!(dot.matches(" -- ").count(), 4);
    }

    #[test]
    fn trusted_links_render_dashed() {
        let (spec, _) = fixtures::cross_domain_sale();
        let g = spec.interaction_graph().unwrap();
        let dot = interaction_to_dot(&spec, &g);
        assert!(dot.contains("trust link"));
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn sequencing_dot_marks_red_edges() {
        let (spec, _) = fixtures::example1();
        let g = SequencingGraph::from_spec(&spec).unwrap();
        let dot = sequencing_to_dot(&spec, &g);
        assert!(dot.contains("shape=hexagon"));
        assert!(dot.contains("AND broker"));
        assert_eq!(dot.matches("color=red").count(), 1);
        assert!(!dot.contains("style=dashed"));
    }

    #[test]
    fn reduced_graph_shows_dashed_removed_edges() {
        let (spec, _) = fixtures::example2();
        let g = SequencingGraph::from_spec(&spec).unwrap();
        let (_, reduced) = Reducer::new(g).run_keeping_graph();
        let dot = sequencing_to_dot(&spec, &reduced);
        // Four edges removed at the impasse (Figure 6).
        assert_eq!(dot.matches("style=dashed").count(), 4);
    }
}
