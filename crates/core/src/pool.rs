//! A persistent, lazily-spawned worker pool for sweep fan-out.
//!
//! Every batch driver in the workspace used to pay thread spawn/join on
//! each call (`std::thread::scope` in [`analyze_batch`](crate::analyze_batch),
//! crossbeam scopes in the simulation harness). On sweep-heavy workloads —
//! thousands of small per-spec reductions — the spawn cost rivals the work
//! itself. This pool spawns OS threads once, on first use, and parks them
//! between jobs; a [`broadcast`] hands all waiting workers one borrowed
//! closure, runs index 0 on the calling thread, and returns when every
//! index has finished, so callers keep the ergonomics of scoped borrows
//! without the per-call spawns.
//!
//! # Lifecycle
//!
//! * Threads are spawned lazily: a [`broadcast`] over `w` worker indices
//!   grows the pool to `w - 1` parked threads (index 0 always runs on the
//!   caller). A process that never fans out never spawns a thread.
//! * One job runs at a time (a mutex serializes broadcasts); worker
//!   threads are shared by every subsystem — batch analysis, confluence
//!   sampling, defection sweeps, chaos matrices.
//! * Work distribution *within* a job is the existing atomic-counter
//!   stealing pattern, owned by the callers; the pool only distributes
//!   worker indices.
//! * A panic in any index is caught, the job is still drained, and the
//!   payload is re-thrown on the calling thread — same observable
//!   behaviour as `std::thread::scope`.
//! * Nested broadcasts (a pool worker fanning out again) degrade to
//!   inline serial execution instead of deadlocking on the job mutex.
//!
//! The default fan-out width for sweep drivers is [`size`], settable once
//! at startup via [`set_size`] (the CLI's `--threads N`).

use crate::obs;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

/// Configured pool width; 0 means "not set, use `available_parallelism`".
static POOL_SIZE: AtomicUsize = AtomicUsize::new(0);

static POOL: OnceLock<Pool> = OnceLock::new();

std::thread_local! {
    /// Set while this thread is executing a broadcast index (as the caller
    /// or as a pool worker): a nested broadcast must run inline rather
    /// than contend for the pool it is already part of.
    static INLINE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// The default worker count for sweep drivers: the value set by
/// [`set_size`], or `available_parallelism` when unset.
pub fn size() -> usize {
    match POOL_SIZE.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        n => n,
    }
}

/// Upper bound accepted by [`set_size`]: each worker index beyond the
/// first pins an OS thread for the life of the process, so widths past
/// this are almost certainly a mis-typed flag. The CLI rejects such
/// values with an error; programmatic callers are clamped.
pub const MAX_WIDTH: usize = 1024;

/// Sets the default worker count reported by [`size`] (clamped to
/// `1..=`[`MAX_WIDTH`]). Call once at startup — already-spawned threads
/// are not reaped, so shrinking mid-run only narrows *future* fan-outs.
pub fn set_size(n: usize) {
    POOL_SIZE.store(n.clamp(1, MAX_WIDTH), Ordering::Relaxed);
}

struct State {
    /// The current job's closure, lifetime-erased; `None` between jobs.
    job: Option<&'static (dyn Fn(usize) + Sync)>,
    /// Worker-index count of the current job (index 0 runs on the caller).
    workers: usize,
    /// Indices of the current job not yet claimed.
    remaining: usize,
    /// Claimed indices still executing.
    active: usize,
    /// First panic payload caught in a pool worker, re-thrown by the
    /// broadcaster once the job has drained.
    panic: Option<Box<dyn std::any::Any + Send>>,
    /// Worker threads spawned so far (grows lazily, never shrinks).
    threads: usize,
}

struct Pool {
    /// Serializes broadcasts: one job owns the worker threads at a time.
    scope: Mutex<()>,
    state: Mutex<State>,
    /// Signals parked workers that a job (or more of one) is available.
    work: Condvar,
    /// Signals the broadcaster that the job has fully drained.
    done: Condvar,
}

impl Pool {
    fn new() -> Self {
        Pool {
            scope: Mutex::new(()),
            state: Mutex::new(State {
                job: None,
                workers: 0,
                remaining: 0,
                active: 0,
                panic: None,
                threads: 0,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Erases the closure's borrow lifetime so parked worker threads (which
/// are `'static`) can call it.
///
/// SAFETY: the only caller is [`broadcast`], which stores the result in
/// the pool's job slot and does not return (or resume a panic) until
/// every claimed index has finished (`remaining == 0 && active == 0`) and
/// the slot is cleared — all under the scope mutex that serializes jobs.
/// No worker can observe the reference once `broadcast` returns, so the
/// borrow never outlives the real closure.
#[allow(unsafe_code)]
fn erase<'a>(f: &'a (dyn Fn(usize) + Sync)) -> &'static (dyn Fn(usize) + Sync) {
    unsafe { std::mem::transmute::<&'a (dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f) }
}

fn worker_loop() {
    // A pool worker is always "inside" a broadcast: if the job it runs
    // fans out again, that inner broadcast must go inline.
    INLINE.with(|b| b.set(true));
    let pool = POOL.get().expect("pool is initialized before spawning");
    let mut st = pool.lock_state();
    loop {
        if st.remaining > 0 {
            let job = st.job.expect("remaining > 0 implies an active job");
            let index = st.workers - st.remaining;
            st.remaining -= 1;
            st.active += 1;
            drop(st);
            let busy = obs::enabled().then(obs::Span::wall);
            let result = catch_unwind(AssertUnwindSafe(|| job(index)));
            if let Some(span) = busy {
                span.finish("pool.worker_busy_ns", None);
            }
            st = pool.lock_state();
            st.active -= 1;
            if let Err(payload) = result {
                st.panic.get_or_insert(payload);
            }
            if st.remaining == 0 && st.active == 0 {
                pool.done.notify_all();
            }
            continue;
        }
        st = pool.work.wait(st).unwrap_or_else(|e| e.into_inner());
    }
}

/// Runs `f(0)`, `f(1)`, …, `f(workers - 1)`, each exactly once, with
/// indices ≥ 1 distributed over the persistent pool threads and index 0 on
/// the calling thread. Returns once every index has finished. `f` may
/// borrow freely from the caller's stack (the pool never retains it).
///
/// `workers <= 1`, a nested call from inside a pool job, and single-width
/// pools all run every index inline on the caller — no threads, no locks.
///
/// # Panics
///
/// Re-throws the first panic raised by any index, after the job drains.
pub fn broadcast(workers: usize, f: &(dyn Fn(usize) + Sync)) {
    if workers <= 1 || INLINE.with(|b| b.get()) {
        for i in 0..workers {
            f(i);
        }
        return;
    }
    // Dispatch latency covers queueing for the scope mutex through full
    // drain — the end-to-end cost a sweep driver pays per fan-out.
    let dispatch = obs::enabled().then(obs::Span::wall);
    let pool = POOL.get_or_init(Pool::new);
    let guard = pool.scope.lock().unwrap_or_else(|e| e.into_inner());
    let job = erase(f);
    {
        let mut st = pool.lock_state();
        debug_assert!(st.job.is_none() && st.active == 0 && st.remaining == 0);
        while st.threads < workers - 1 {
            st.threads += 1;
            std::thread::Builder::new()
                .name(format!("trustseq-pool-{}", st.threads))
                .spawn(worker_loop)
                .expect("spawning a pool worker thread");
        }
        st.job = Some(job);
        st.workers = workers;
        st.remaining = workers - 1;
        st.panic = None;
    }
    pool.work.notify_all();

    INLINE.with(|b| b.set(true));
    let caller_busy = obs::enabled().then(obs::Span::wall);
    let caller_result = catch_unwind(AssertUnwindSafe(|| f(0)));
    if let Some(span) = caller_busy {
        span.finish("pool.worker_busy_ns", None);
    }
    INLINE.with(|b| b.set(false));

    let mut st = pool.lock_state();
    while st.remaining > 0 || st.active > 0 {
        st = pool.done.wait(st).unwrap_or_else(|e| e.into_inner());
    }
    st.job = None;
    let worker_panic = st.panic.take();
    drop(st);
    drop(guard);
    if let Some(span) = dispatch {
        span.finish("pool.dispatch_ns", None);
        let panics = u64::from(caller_result.is_err()) + u64::from(worker_panic.is_some());
        obs::with(|r| {
            r.counter("pool.jobs", 1);
            r.observe("pool.width", workers as u64);
            if panics > 0 {
                r.counter("pool.panics", panics);
            }
        });
    }
    if let Err(payload) = caller_result {
        resume_unwind(payload);
    }
    if let Some(payload) = worker_panic {
        resume_unwind(payload);
    }
}

/// How a batch driver distributes corpus items across worker indices.
///
/// The global default ([`batch_mode`] / [`set_batch_mode`], the CLI's
/// `--sharded`) is consulted by [`analyze_batch`](crate::analyze_batch),
/// the confluence samplers and the sim drivers; explicit-mode entry
/// points like [`analyze_batch_with`](crate::analyze_batch_with) take it
/// per call. Both modes produce byte-identical result vectors — only the
/// worker-to-item assignment (and therefore cache locality and tail
/// latency) differs.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum BatchMode {
    /// Workers pull the next item from a shared atomic counter. Robust to
    /// skew — one structurally hard item cannot idle the other workers —
    /// at the cost of cross-worker cache-line traffic on the counter and
    /// an unpredictable item→worker mapping.
    #[default]
    Stealing,
    /// Each worker owns one contiguous corpus shard
    /// ([`shard_range`]-sized). No shared counter in the inner loop, and a
    /// worker's scratch buffers see a contiguous, prefetch-friendly slice
    /// of the corpus — the right trade for large uniform batches.
    Sharded,
}

/// Global default batch mode; 0 = stealing, 1 = sharded.
static BATCH_MODE: AtomicUsize = AtomicUsize::new(0);

/// The process-wide default [`BatchMode`] for batch drivers that don't
/// take one explicitly.
pub fn batch_mode() -> BatchMode {
    match BATCH_MODE.load(Ordering::Relaxed) {
        0 => BatchMode::Stealing,
        _ => BatchMode::Sharded,
    }
}

/// Sets the process-wide default [`BatchMode`] (the CLI's `--sharded`
/// flag). Call once at startup; in-flight batches keep the mode they
/// started with.
pub fn set_batch_mode(mode: BatchMode) {
    BATCH_MODE.store(mode as usize, Ordering::Relaxed);
}

/// Worker `index`'s contiguous slice of an `items`-element corpus split
/// across `workers` shards: sizes differ by at most one, lower indices
/// take the remainder, and the ranges tile `0..items` exactly.
///
/// # Panics
///
/// Panics if `workers` is zero or `index >= workers`.
pub fn shard_range(items: usize, workers: usize, index: usize) -> std::ops::Range<usize> {
    assert!(workers > 0, "shard_range needs at least one worker");
    assert!(index < workers, "shard index {index} out of {workers}");
    let base = items / workers;
    let rem = items % workers;
    let start = index * base + index.min(rem);
    let len = base + usize::from(index < rem);
    start..start + len
}

/// Shard-affinity [`broadcast`]: runs `f(index, shard)` for each worker
/// index, where `shard` is [`shard_range`]`(items, workers, index)` — a
/// contiguous slice of the corpus pinned to that worker for the whole
/// job. The alternative to atomic-counter stealing for batch drivers
/// ([`BatchMode::Sharded`]).
///
/// Workers whose shard is empty still run (with an empty range), so `f`
/// sees every index exactly once, same as [`broadcast`].
///
/// # Panics
///
/// Re-throws the first panic raised by any index, after the job drains.
pub fn broadcast_sharded<F>(workers: usize, items: usize, f: &F)
where
    F: Fn(usize, std::ops::Range<usize>) + Sync,
{
    if workers == 0 {
        return;
    }
    broadcast(workers, &|i| f(i, shard_range(items, workers, i)));
}

/// [`broadcast`] for jobs that produce results: each index's output vector
/// is collected and the concatenation is returned in worker-index order.
pub fn broadcast_collect<T, F>(workers: usize, f: &F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> Vec<T> + Sync,
{
    if workers <= 1 {
        return (0..workers).flat_map(f).collect();
    }
    let slots: Vec<Mutex<Vec<T>>> = (0..workers).map(|_| Mutex::new(Vec::new())).collect();
    broadcast(workers, &|i| {
        *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = f(i);
    });
    slots
        .into_iter()
        .flat_map(|s| s.into_inner().unwrap_or_else(|e| e.into_inner()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_index_runs_exactly_once() {
        for workers in [0usize, 1, 2, 3, 8] {
            let hits: Vec<AtomicUsize> = (0..workers).map(|_| AtomicUsize::new(0)).collect();
            broadcast(workers, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "index {i} of {workers}");
            }
        }
    }

    #[test]
    fn broadcasts_reuse_the_pool_across_jobs() {
        let total = AtomicU64::new(0);
        for round in 0..50u64 {
            broadcast(4, &|i| {
                total.fetch_add(round + i as u64, Ordering::Relaxed);
            });
        }
        let expected: u64 = (0..50u64).map(|r| 4 * r + 6).sum();
        assert_eq!(total.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn collect_concatenates_in_index_order() {
        let out = broadcast_collect(3, &|i| vec![i * 10, i * 10 + 1]);
        assert_eq!(out, vec![0, 1, 10, 11, 20, 21]);
    }

    #[test]
    fn nested_broadcast_runs_inline() {
        let inner_total = AtomicUsize::new(0);
        broadcast(2, &|_| {
            broadcast(3, &|j| {
                inner_total.fetch_add(j + 1, Ordering::Relaxed);
            });
        });
        // Two outer indices each run the inner job over 3 indices.
        assert_eq!(inner_total.load(Ordering::Relaxed), 12);
    }

    #[test]
    fn panics_propagate_after_the_job_drains() {
        let survivors = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            broadcast(4, &|i| {
                if i == 2 {
                    panic!("boom");
                }
                survivors.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err());
        assert_eq!(survivors.load(Ordering::Relaxed), 3);
        // The pool is still usable afterwards.
        let ok = AtomicUsize::new(0);
        broadcast(4, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn size_is_at_least_one() {
        assert!(size() >= 1);
    }

    #[test]
    fn shard_ranges_tile_the_corpus_exactly() {
        for items in [0usize, 1, 5, 7, 64, 100, 1023] {
            for workers in [1usize, 2, 3, 4, 7, 16] {
                let mut next = 0usize;
                for i in 0..workers {
                    let r = shard_range(items, workers, i);
                    assert_eq!(r.start, next, "{items} items / {workers} workers @ {i}");
                    next = r.end;
                    // Balanced: sizes differ by at most one.
                    let base = items / workers;
                    assert!(r.len() == base || r.len() == base + 1);
                }
                assert_eq!(next, items, "{items} items / {workers} workers");
            }
        }
    }

    #[test]
    fn sharded_broadcast_covers_every_item_once() {
        let items = 103usize;
        let hits: Vec<AtomicUsize> = (0..items).map(|_| AtomicUsize::new(0)).collect();
        broadcast_sharded(4, items, &|_, shard| {
            for i in shard {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "item {i}");
        }
        // More workers than items: trailing shards are empty, all run.
        let ran = AtomicUsize::new(0);
        broadcast_sharded(8, 3, &|_, shard| {
            ran.fetch_add(1, Ordering::Relaxed);
            assert!(shard.len() <= 1);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn batch_mode_defaults_to_stealing() {
        // Don't mutate the global here (tests share the process): just
        // check the enum round-trips through the atomic encoding.
        assert_eq!(BatchMode::default(), BatchMode::Stealing);
        assert_eq!(BatchMode::Stealing as usize, 0);
        assert_eq!(BatchMode::Sharded as usize, 1);
    }
}
