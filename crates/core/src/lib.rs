//! Sequencing graphs, reduction rules, execution-sequence recovery, protocol
//! synthesis and indemnity planning — the core algorithms of *"Making Trust
//! Explicit in Distributed Commerce Transactions"* (Ketchpel &
//! Garcia-Molina, ICDCS 1996).
//!
//! # Pipeline
//!
//! 1. Describe the exchange problem with a
//!    [`trustseq_model::ExchangeSpec`] (or parse one with `trustseq-lang`).
//! 2. Build the [`SequencingGraph`] (§4.1) with
//!    [`SequencingGraph::from_spec`].
//! 3. Reduce it with a [`Reducer`] (§4.2); the [`ReductionOutcome`] reports
//!    **feasibility** — whether a protocol exists that protects every
//!    participant.
//! 4. If feasible, [`recover_execution`] (§5) produces the
//!    [`ExecutionSequence`] of pairwise transfers and notifications, and
//!    [`Protocol::from_sequence`] splits it into per-participant
//!    instructions.
//! 5. If infeasible because of a purchase bundle, [`indemnity::make_feasible`]
//!    (§6) plans minimal collateral that unlocks the exchange.
//!
//! # Example
//!
//! ```
//! use trustseq_core::{analyze, fixtures, synthesize};
//!
//! # fn main() -> Result<(), trustseq_core::CoreError> {
//! // The paper's Example #1 is feasible…
//! let (spec, _) = fixtures::example1();
//! assert!(analyze(&spec)?.feasible);
//! // …and its synthesised execution sequence has the paper's 10 steps.
//! assert_eq!(synthesize(&spec)?.len(), 10);
//!
//! // Example #2 deadlocks on mutual distrust…
//! let (mut spec2, _) = fixtures::example2();
//! assert!(!analyze(&spec2)?.feasible);
//! // …until an indemnity splits the consumer's bundle.
//! trustseq_core::indemnity::make_feasible(&mut spec2)?;
//! assert!(analyze(&spec2)?.feasible);
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the worker pool's scoped-borrow broadcast
// needs exactly one audited lifetime erasure (`pool::erase`), which carries
// a scoped `#[allow(unsafe_code)]` with its safety argument.
#![deny(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod advisor;
pub mod bitset;
mod build;
pub mod cache;
pub mod canon;
pub mod csr;
mod delta;
pub mod dot;
mod error;
mod execution;
pub mod fixtures;
mod graph;
pub mod indemnity;
pub mod obs;
pub mod pool;
mod protocol;
mod reduce;
mod scratch;
mod trace;

pub use advisor::{advise, advise_cached, Advice, TrustSuggestion};
pub use build::BuildOptions;
pub use cache::{AnalysisCache, CacheStats, CachedVerdict};
pub use canon::{
    canonicalize, fingerprint, prefingerprint, CanonicalForm, Fingerprint, PreFingerprint,
};
pub use delta::{DeltaAnalyzer, DeltaStats, GraphDelta};
pub use error::CoreError;
pub use execution::{
    recover_execution, synthesize, synthesize_with, ExecutionSequence, ExecutionStep, StepKind,
};
pub use graph::{
    Commitment, CommitmentId, Conjunction, ConjunctionId, Edge, EdgeColor, EdgeId, SequencingGraph,
};
pub use indemnity::{IndemnityPlan, PlannedIndemnity};
pub use obs::{MetricsRegistry, MetricsSnapshot, NoopRecorder, Recorder, VirtualClock};
pub use pool::BatchMode;
pub use protocol::{Instruction, Protocol};
pub use reduce::{
    analyze, analyze_batch, analyze_batch_cached, analyze_batch_with, analyze_cached, analyze_with,
    confluence_check, confluence_check_cached, confluence_sweep, ConfluenceReport, Move, Reducer,
    ReductionOutcome, Strategy,
};
pub use scratch::{HeapScratchReducer, ScratchReducer};
pub use trace::{ReductionStep, ReductionTrace, Rule};
