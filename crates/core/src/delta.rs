//! Incremental verdict maintenance over an evolving trust graph.
//!
//! Every batch driver treats a spec/trust-graph pair as a cold problem:
//! any change to the trust relation or the indemnity set forces a full
//! rebuild and re-reduction. A live marketplace mutates between almost
//! every query — trust edges gained via successful trades and lost via
//! defections, indemnities posted and expiring — and re-certification
//! latency, not cold throughput, becomes the bottleneck.
//!
//! [`DeltaAnalyzer`] keeps the bitset scratch engine's state (live-edge
//! bitset, packed degree+XOR state words, candidate bitsets — see
//! [`ScratchReducer`]) *resident at the reduction fixpoint* per structure,
//! together with a per-slot removal-stamp history, and maintains the
//! §4.2.4 feasibility verdict across typed [`GraphDelta`]s without
//! rebuilding or re-reducing from scratch.
//!
//! # The monotonicity split
//!
//! The §4.2 rules are monotone under edge **removal** and waiver
//! **grant**: degrees only fall, red pre-emption only lifts, waivers only
//! enable moves. Every previously applied move therefore stays valid on
//! the mutated graph, the residual fixpoint state remains reachable, and
//! by the confluence theorem the engine may simply *resume*: remove the
//! edge from the resident state (or set the waiver bit), re-seed only the
//! disturbed fringe — the two endpoint survivors plus the red
//! pre-emption-lift cascade, exactly the enabling events of a rule
//! application — and pop to the new fixpoint. Cost is proportional to the
//! disturbed region, typically O(1).
//!
//! Edge **restores** and waiver **revocations** are anti-monotone: a
//! restored edge raises degrees and can re-impose pre-emption, so
//! retained moves may become invalid and previously reduced edges may
//! need to *resurrect*. Reduction has no inverse rule, but invalidity is
//! *local in time*: a move's validity depends only on the removals it
//! could observe — those stamped before it. The engine therefore keeps
//! per-slot removal stamps (when each edge left the live set, and by
//! which rule) plus per-commitment waiver-grant stamps, and computes the
//! exact set of retained moves a mutation invalidates — the **minimal
//! undo frontier** — by cascading from the mutation through shared
//! commitments (rule #1 degrees), shared conjunctions (rule #2 degrees
//! and red pre-emption re-imposition) and waiver timing. Exactly those
//! edges are resurrected in place in the resident state, pre-emption
//! flags and candidates are re-seeded over the disturbed region (only
//! resurrected slots can have become reducible), and the engine pops to
//! the new fixpoint. The surviving history stays valid in stamp order, so
//! the patched state is reachable on the mutated graph and confluence
//! again carries the verdict; cost is proportional to the disturbed
//! region, not to the history length or the graph size.
//!
//! When the undo frontier exceeds a configurable threshold (default
//! `max(32, edges/8)` invalidated moves), cascading invalidations mean
//! patching approaches the cost of cold work, and the engine falls back
//! to a full verdict-only re-reduction
//! ([`ScratchReducer::run_verdict_only`] semantics, stamped so the next
//! delta can resume). Fallbacks are counted in [`DeltaStats`] and the
//! `delta.fallbacks` metric.
//!
//! # Example
//!
//! ```
//! use trustseq_core::{DeltaAnalyzer, GraphDelta, SequencingGraph, fixtures};
//!
//! # fn main() -> Result<(), trustseq_core::CoreError> {
//! // Example #2 deadlocks on mutual distrust…
//! let (spec, ids) = fixtures::example2();
//! let graph = SequencingGraph::from_spec(&spec)?;
//! let mut analyzer = DeltaAnalyzer::new(graph);
//! assert!(!analyzer.feasible());
//! // …until source1 comes to trust broker1: the marketplace event
//! // maps to clause-2 waiver grants, maintained incrementally.
//! let deltas = analyzer.graph().trust_deltas(ids.source1, ids.broker1, true);
//! for delta in deltas {
//!     analyzer.apply(delta)?;
//! }
//! assert!(analyzer.feasible());
//! # Ok(())
//! # }
//! ```

use crate::error::CoreError;
use crate::graph::{CommitmentId, EdgeId, SequencingGraph};
use crate::obs;
use crate::scratch::{RemovalLog, ScratchReducer, UndoOrigin};
use trustseq_model::{AgentId, DealId};

/// A typed, graph-level mutation of an exchange's trust structure — the
/// unit of work of the [`DeltaAnalyzer`].
///
/// Spec-level marketplace events map onto these via
/// [`SequencingGraph::trust_deltas`] (trust edge added/removed → clause-2
/// waiver toggles) and [`SequencingGraph::indemnity_deltas`] (indemnity
/// posted/expired → principal-side edge removed/restored). Participant
/// joins and leaves change the graph's shape and are handled by rebuilding
/// (see [`DeltaAnalyzer::replace_graph`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphDelta {
    /// Removes a live edge from the base graph — an indemnity posted on a
    /// deal splits the buyer's principal-side edge away (§6). Monotone:
    /// maintained by resuming from the residual state.
    RemoveEdge(EdgeId),
    /// Restores a removed edge — an indemnity expired or was revoked.
    /// Anti-monotone: maintained by resurrecting the minimal undo
    /// frontier.
    RestoreEdge(EdgeId),
    /// Grants or withdraws the clause-2 waiver of a commitment — a trust
    /// edge gained or lost between a deal's counterparties (§4.2.3). A
    /// grant is monotone (resume); a withdrawal is anti-monotone (undo
    /// frontier).
    SetWaiver {
        /// The commitment whose waiver flag changes.
        commitment: CommitmentId,
        /// The new waiver state.
        waived: bool,
    },
}

/// Counters describing how a [`DeltaAnalyzer`] has maintained its verdict.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Deltas applied (including no-op waiver toggles).
    pub applied: u64,
    /// Monotone deltas maintained by resuming from the residual state.
    pub resumed: u64,
    /// Anti-monotone deltas maintained by undo-frontier resurrection.
    pub undos: u64,
    /// Retained moves invalidated and resurrected across all undo
    /// cascades (the summed undo-frontier size).
    pub undone_steps: u64,
    /// Undo cascades abandoned for a full re-reduction because the
    /// frontier exceeded the fallback threshold.
    pub fallbacks: u64,
    /// Full verdict-only re-reductions (fallbacks, graph replacements, and
    /// every delta when constructed as a [`DeltaAnalyzer::full_baseline`]).
    pub full_runs: u64,
}

/// Incremental re-analysis engine: owns an evolving [`SequencingGraph`]
/// and maintains its feasibility verdict across [`GraphDelta`]s from
/// resident scratch state, per the module-level monotonicity split.
#[derive(Debug)]
pub struct DeltaAnalyzer {
    graph: SequencingGraph,
    scratch: ScratchReducer,
    /// Per-slot removal stamps behind the current residual state — the
    /// undo-frontier input for anti-monotone deltas.
    log: RemovalLog,
    fallback_threshold: usize,
    full_baseline: bool,
    feasible: bool,
    stats: DeltaStats,
}

impl DeltaAnalyzer {
    /// Takes ownership of `graph`, runs the initial full analysis, and
    /// keeps the residual state resident. Uses the default fallback
    /// threshold of `max(32, edges/8)` skipped steps.
    pub fn new(graph: SequencingGraph) -> Self {
        let threshold = default_threshold(&graph);
        Self::with_threshold(graph, threshold)
    }

    /// [`DeltaAnalyzer::new`] with an explicit undo fallback threshold:
    /// an anti-monotone delta whose undo frontier invalidates *more than*
    /// `threshold` retained moves abandons the patch for a full
    /// re-reduction. `0` falls back as soon as one retained move is
    /// invalidated; `usize::MAX` never falls back.
    pub fn with_threshold(graph: SequencingGraph, threshold: usize) -> Self {
        let mut analyzer = DeltaAnalyzer {
            graph,
            scratch: ScratchReducer::new(),
            log: RemovalLog::default(),
            fallback_threshold: threshold,
            full_baseline: false,
            feasible: false,
            stats: DeltaStats::default(),
        };
        analyzer.feasible = analyzer
            .scratch
            .run_stamped(&analyzer.graph, &mut analyzer.log);
        analyzer
    }

    /// A non-incremental twin for honest comparisons: applies every delta
    /// to the base graph exactly like [`DeltaAnalyzer::new`] would, but
    /// recomputes the verdict with a full verdict-only re-reduction each
    /// time instead of maintaining resident state — the `--full`
    /// marketplace baseline measured by the `delta` bench.
    pub fn full_baseline(graph: SequencingGraph) -> Self {
        let mut analyzer = Self::new(graph);
        analyzer.full_baseline = true;
        analyzer
    }

    /// The current feasibility verdict (§4.2.4).
    pub fn feasible(&self) -> bool {
        self.feasible
    }

    /// Live edges remaining after maximal reduction of the current graph.
    pub fn remaining_edges(&self) -> usize {
        self.scratch.remaining_live()
    }

    /// The evolving base graph (mutations go through
    /// [`apply`](Self::apply), never directly).
    pub fn graph(&self) -> &SequencingGraph {
        &self.graph
    }

    /// The undo fallback threshold this analyzer was built with.
    pub fn fallback_threshold(&self) -> usize {
        self.fallback_threshold
    }

    /// Maintenance counters accumulated since construction.
    pub fn stats(&self) -> DeltaStats {
        self.stats
    }

    /// Applies one typed delta to the base graph and brings the verdict to
    /// the new fixpoint, returning it. On error the graph and the resident
    /// state are unchanged.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidMove`] — removing a dead/unknown edge;
    /// * [`CoreError::RuleNotApplicable`] — restoring a live edge;
    /// * [`CoreError::UnknownCommitment`] — waiver toggle out of range.
    pub fn apply(&mut self, delta: GraphDelta) -> Result<bool, CoreError> {
        match delta {
            GraphDelta::RemoveEdge(id) => {
                self.graph.remove_edge(id)?;
                if self.full_baseline {
                    self.recompute_full();
                } else if self.scratch.slot_is_live(id.index()) {
                    // Monotone resume: take the edge out of the residual
                    // state, stamp the exogenous removal, seed the
                    // disturbed fringe, pop to fixpoint.
                    self.stats.resumed += 1;
                    self.log.stamp_removal(id.index(), false);
                    self.scratch.exogenous_remove(&self.graph, id.index());
                    self.feasible = self.scratch.drive_stamped(&self.graph, &mut self.log);
                } else {
                    // The reduction had already removed this edge, so the
                    // residual state *is* the new fixpoint and the stamp
                    // history is untouched: the slot keeps the stamp of
                    // the reduction move that removed it — exactly when
                    // later moves began observing its absence — and the
                    // undo cascade filters graph-dead slots on its own.
                    self.stats.resumed += 1;
                }
            }
            GraphDelta::RestoreEdge(id) => {
                if id.index() >= self.graph.edges().len() {
                    return Err(CoreError::InvalidMove(id));
                }
                if self.graph.is_live(id) {
                    return Err(CoreError::RuleNotApplicable {
                        edge: id,
                        reason: "cannot restore a live edge",
                    });
                }
                self.graph.restore_edge(id);
                if self.full_baseline {
                    self.recompute_full();
                } else {
                    self.reanalyze_by_undo(UndoOrigin::Restore(id.index()));
                }
            }
            GraphDelta::SetWaiver { commitment, waived } => {
                if self.graph.set_waiver(commitment, waived)? {
                    if self.full_baseline {
                        self.recompute_full();
                    } else if waived {
                        // Monotone resume: the only newly enabled move is
                        // the commitment's fringe survivor, if any. Stamp
                        // the grant first so the moves it enables carry
                        // later stamps (they relied on the waiver).
                        self.stats.resumed += 1;
                        self.log.stamp_grant(commitment);
                        self.scratch.grant_waiver(&self.graph, commitment);
                        self.feasible = self.scratch.drive_stamped(&self.graph, &mut self.log);
                    } else {
                        self.reanalyze_by_undo(UndoOrigin::Revoke(commitment));
                    }
                }
            }
        }
        self.stats.applied += 1;
        if obs::enabled() {
            obs::with(|r| r.counter("delta.applied", 1));
        }
        Ok(self.feasible)
    }

    /// Replaces the base graph wholesale — a participant joined or left,
    /// or a deal was added, changing the graph's shape — and re-analyzes
    /// from scratch. Scratch buffers and thresholds are retained; the
    /// fallback threshold is re-derived for the new shape.
    pub fn replace_graph(&mut self, graph: SequencingGraph) {
        self.graph = graph;
        self.fallback_threshold = default_threshold(&self.graph);
        self.recompute_full();
    }

    /// Full re-reduction of the current graph. Incremental analyzers
    /// restart the removal-stamp history so subsequent deltas can resume
    /// or undo from it; the full baseline skips even that bookkeeping so
    /// the delta-vs-full comparison is against the fastest possible
    /// non-incremental run.
    fn recompute_full(&mut self) {
        self.stats.full_runs += 1;
        if obs::enabled() {
            obs::with(|r| r.counter("delta.full_runs", 1));
        }
        self.feasible = if self.full_baseline {
            self.scratch
                .run_verdict_only(&self.graph, crate::reduce::Strategy::Deterministic)
        } else {
            self.scratch.run_stamped(&self.graph, &mut self.log)
        };
    }

    /// The anti-monotone path: resurrect the minimal undo frontier in the
    /// resident state, or fall back to a full re-reduction when it is
    /// wider than the fallback threshold.
    fn reanalyze_by_undo(&mut self, origin: UndoOrigin) {
        self.stats.undos += 1;
        match self.scratch.undo_frontier(
            &self.graph,
            &mut self.log,
            origin,
            self.fallback_threshold,
        ) {
            Some((undone, feasible)) => {
                self.stats.undone_steps += undone as u64;
                if obs::enabled() {
                    obs::with(|r| r.counter("delta.undone_steps", undone as u64));
                }
                self.feasible = feasible;
            }
            None => {
                // The cascade tore the resident state before bailing; the
                // full run rebuilds both it and the stamp history.
                self.stats.fallbacks += 1;
                if obs::enabled() {
                    obs::with(|r| r.counter("delta.fallbacks", 1));
                }
                self.recompute_full();
            }
        }
    }
}

/// Default undo fallback threshold for a graph's shape.
fn default_threshold(graph: &SequencingGraph) -> usize {
    (graph.edges().len() / 8).max(32)
}

impl SequencingGraph {
    /// Maps a trust-relation mutation — `truster` gains (`granted`) or
    /// loses direct trust in `trustee` — onto the clause-2 waiver toggles
    /// it induces on this graph (§4.2.3: the trusted-agent role of a deal
    /// passes to the counterparty the other side trusts): one
    /// [`GraphDelta::SetWaiver`] per commitment where `trustee` is the
    /// principal and `truster` is the deal's other principal.
    ///
    /// Exact when, as in the marketplace workload, each deal's commitments
    /// have a dedicated trusted component and at most one trust edge per
    /// principal pair; overlapping role sources (shared escrows mediating
    /// several deals between the same parties, explicit
    /// `set_role_player` grants) can make a *withdrawal* over-revoke —
    /// rebuild from the spec in that regime.
    pub fn trust_deltas(
        &self,
        truster: AgentId,
        trustee: AgentId,
        granted: bool,
    ) -> Vec<GraphDelta> {
        self.commitments()
            .iter()
            .filter(|c| {
                c.principal == trustee
                    && self
                        .commitments()
                        .iter()
                        .any(|o| o.deal == c.deal && o.side != c.side && o.principal == truster)
            })
            .map(|c| GraphDelta::SetWaiver {
                commitment: c.id,
                waived: granted,
            })
            .collect()
    }

    /// Maps an indemnity event on `deal` — posted (`posted`) or
    /// expired/revoked — onto the structural deltas it induces: §6 splits
    /// the covered deal's buyer-side commitment away from the buyer's
    /// conjunction, so the principal-side edges of that commitment are
    /// removed (posted) or restored (expired). Returns an empty vector
    /// when the deal has no buyer-side principal edge in this graph (it
    /// was built with the indemnity already in place, or the deal is
    /// unknown).
    pub fn indemnity_deltas(&self, deal: DealId, posted: bool) -> Vec<GraphDelta> {
        self.edges()
            .iter()
            .filter(|e| {
                let c = self.commitment(e.commitment);
                c.deal == deal
                    && c.side == trustseq_model::DealSide::Buyer
                    && !self.conjunction(e.conjunction).trusted
            })
            .map(|e| {
                if posted {
                    GraphDelta::RemoveEdge(e.id)
                } else {
                    GraphDelta::RestoreEdge(e.id)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::reduce::Strategy;

    /// Cold-oracle verdict of the analyzer's *current* graph state.
    fn cold_verdict(analyzer: &DeltaAnalyzer) -> bool {
        ScratchReducer::new().run_verdict_only(analyzer.graph(), Strategy::Deterministic)
    }

    #[test]
    fn edge_churn_tracks_cold_oracle() {
        let (spec, _) = fixtures::example1();
        let graph = SequencingGraph::from_spec(&spec).unwrap();
        let edge_count = graph.edges().len();
        let mut analyzer = DeltaAnalyzer::new(graph);
        assert!(analyzer.feasible());
        // Remove every edge one at a time (each against the cold oracle),
        // then restore them in reverse.
        for slot in 0..edge_count {
            let got = analyzer.apply(GraphDelta::RemoveEdge(EdgeId::new(slot as u32)));
            assert_eq!(got.unwrap(), cold_verdict(&analyzer), "remove e{slot}");
        }
        // All base edges removed: trivially feasible.
        assert!(analyzer.feasible());
        assert_eq!(analyzer.remaining_edges(), 0);
        for slot in (0..edge_count).rev() {
            let got = analyzer.apply(GraphDelta::RestoreEdge(EdgeId::new(slot as u32)));
            assert_eq!(got.unwrap(), cold_verdict(&analyzer), "restore e{slot}");
        }
        assert!(analyzer.feasible());
        assert_eq!(analyzer.graph().live_edge_count(), edge_count);
    }

    #[test]
    fn trust_deltas_flip_example2_feasibility() {
        // §4.2.3 variant 1: source1 coming to trust broker1 makes
        // Example #2 feasible (domino effect); withdrawal reverts it.
        let (spec, ids) = fixtures::example2();
        let graph = SequencingGraph::from_spec(&spec).unwrap();
        let mut analyzer = DeltaAnalyzer::new(graph);
        assert!(!analyzer.feasible());

        let deltas = analyzer
            .graph()
            .trust_deltas(ids.source1, ids.broker1, true);
        assert!(!deltas.is_empty());
        for d in deltas {
            analyzer.apply(d).unwrap();
        }
        assert!(analyzer.feasible());
        assert_eq!(analyzer.feasible(), cold_verdict(&analyzer));

        // The spec-level mutation rebuilt cold agrees.
        let mut trusted_spec = spec.clone();
        trusted_spec.add_trust(ids.source1, ids.broker1).unwrap();
        let rebuilt = SequencingGraph::from_spec(&trusted_spec).unwrap();
        assert_eq!(
            rebuilt,
            *analyzer.graph(),
            "waiver toggle must equal rebuild"
        );
        assert_eq!(
            ScratchReducer::new().run_verdict_only(&rebuilt, Strategy::Deterministic),
            analyzer.feasible()
        );

        // Withdrawing the trust again restores infeasibility via the
        // undo-frontier path.
        let deltas = analyzer
            .graph()
            .trust_deltas(ids.source1, ids.broker1, false);
        for d in deltas {
            analyzer.apply(d).unwrap();
        }
        assert!(!analyzer.feasible());
        assert_eq!(analyzer.feasible(), cold_verdict(&analyzer));
        let stats = analyzer.stats();
        assert!(stats.resumed >= 1, "grant should resume: {stats:?}");
        assert!(stats.undos >= 1, "revoke should undo: {stats:?}");
    }

    #[test]
    fn threshold_zero_always_falls_back_and_stays_correct() {
        let (spec, ids) = fixtures::example2();
        let graph = SequencingGraph::from_spec(&spec).unwrap();
        let mut eager = DeltaAnalyzer::with_threshold(graph.clone(), 0);
        let mut lazy = DeltaAnalyzer::with_threshold(graph, usize::MAX);
        for granted in [true, false, true] {
            for d in eager
                .graph()
                .trust_deltas(ids.source1, ids.broker1, granted)
            {
                let a = eager.apply(d).unwrap();
                let b = lazy.apply(d).unwrap();
                assert_eq!(a, b);
                assert_eq!(a, cold_verdict(&eager));
            }
        }
        assert!(lazy.stats().fallbacks == 0, "{:?}", lazy.stats());
        // Revoking the waiver invalidates at least one retained move, so
        // the zero-threshold analyzer must have fallen back; both agree
        // with the oracle throughout regardless.
        assert!(eager.stats().fallbacks >= 1, "{:?}", eager.stats());
        assert!(lazy.stats().undone_steps >= 1, "{:?}", lazy.stats());
    }

    #[test]
    fn invalid_deltas_are_typed_errors_and_leave_state_intact() {
        let (spec, _) = fixtures::example1();
        let graph = SequencingGraph::from_spec(&spec).unwrap();
        let mut analyzer = DeltaAnalyzer::new(graph);
        let before = analyzer.feasible();

        assert!(matches!(
            analyzer.apply(GraphDelta::RemoveEdge(EdgeId::new(999))),
            Err(CoreError::InvalidMove(_))
        ));
        assert!(matches!(
            analyzer.apply(GraphDelta::RestoreEdge(EdgeId::new(0))),
            Err(CoreError::RuleNotApplicable { .. })
        ));
        assert!(matches!(
            analyzer.apply(GraphDelta::RestoreEdge(EdgeId::new(999))),
            Err(CoreError::InvalidMove(_))
        ));
        assert!(matches!(
            analyzer.apply(GraphDelta::SetWaiver {
                commitment: CommitmentId::new(999),
                waived: true
            }),
            Err(CoreError::UnknownCommitment(_))
        ));
        assert_eq!(analyzer.feasible(), before);
        assert_eq!(analyzer.feasible(), cold_verdict(&analyzer));
        assert_eq!(analyzer.stats().applied, 0);
    }

    #[test]
    fn full_baseline_twin_agrees_everywhere() {
        let (spec, ids) = fixtures::example2();
        let graph = SequencingGraph::from_spec(&spec).unwrap();
        let mut delta = DeltaAnalyzer::new(graph.clone());
        let mut full = DeltaAnalyzer::full_baseline(graph);
        for granted in [true, false] {
            for d in delta
                .graph()
                .trust_deltas(ids.source1, ids.broker1, granted)
            {
                assert_eq!(delta.apply(d).unwrap(), full.apply(d).unwrap());
            }
        }
        assert!(full.stats().full_runs >= 1);
        assert_eq!(delta.stats().full_runs, 0);
    }

    #[test]
    fn indemnity_deltas_match_spec_level_rebuild() {
        // §6: the consumer indemnifying sale1 splits its bundle, freeing
        // both chains of Example #2.
        let (mut spec, ids) = fixtures::example2();
        let graph = SequencingGraph::from_spec(&spec).unwrap();
        let mut analyzer = DeltaAnalyzer::new(graph);
        assert!(!analyzer.feasible());

        let deltas = analyzer.graph().indemnity_deltas(ids.sale1, true);
        assert!(!deltas.is_empty());
        for d in deltas {
            analyzer.apply(d).unwrap();
        }
        assert_eq!(analyzer.feasible(), cold_verdict(&analyzer));

        // Spec-level: post the actual indemnity and rebuild cold.
        spec.add_indemnity(
            ids.consumer,
            ids.sale1,
            trustseq_model::Money::from_dollars(10),
        )
        .unwrap();
        let rebuilt = SequencingGraph::from_spec(&spec).unwrap();
        assert_eq!(
            ScratchReducer::new().run_verdict_only(&rebuilt, Strategy::Deterministic),
            analyzer.feasible()
        );

        // Expiry restores the edges and the original verdict.
        let deltas = analyzer.graph().indemnity_deltas(ids.sale1, false);
        for d in deltas {
            analyzer.apply(d).unwrap();
        }
        assert!(!analyzer.feasible());
        assert_eq!(analyzer.feasible(), cold_verdict(&analyzer));
    }

    #[test]
    fn replace_graph_rebuilds_for_shape_changes() {
        let (spec1, _) = fixtures::example2();
        let (spec2, _) = fixtures::example1();
        let mut analyzer = DeltaAnalyzer::new(SequencingGraph::from_spec(&spec1).unwrap());
        assert!(!analyzer.feasible());
        analyzer.replace_graph(SequencingGraph::from_spec(&spec2).unwrap());
        assert!(analyzer.feasible());
        assert!(analyzer.stats().full_runs >= 1);
    }
}
