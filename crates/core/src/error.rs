//! Error type for sequencing-graph operations.

use crate::graph::{CommitmentId, ConjunctionId, EdgeId};
use std::error::Error;
use std::fmt;
use trustseq_model::ModelError;

/// Errors produced by sequencing-graph construction, reduction, execution
/// recovery and indemnity planning.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A model-layer error (invalid specification).
    Model(ModelError),
    /// A reduction move referenced a dead or unknown edge.
    InvalidMove(EdgeId),
    /// A rule was applied where its preconditions do not hold.
    RuleNotApplicable {
        /// The edge the rule was applied to.
        edge: EdgeId,
        /// Why the rule does not apply.
        reason: &'static str,
    },
    /// Execution recovery requires a *feasible* (fully reduced) trace.
    Infeasible {
        /// Number of edges remaining after maximal reduction.
        remaining_edges: usize,
    },
    /// The deposit scheduler could not find an executable next step — the
    /// specification is internally inconsistent (e.g. an item is resold but
    /// never acquired).
    ScheduleStuck {
        /// The commitments whose deposits could not be scheduled.
        unscheduled: Vec<CommitmentId>,
    },
    /// A conjunction id was out of range.
    UnknownConjunction(ConjunctionId),
    /// A commitment id was out of range.
    UnknownCommitment(CommitmentId),
    /// Indemnity planning was asked to split a conjunction that is not a
    /// purchase bundle.
    NotABundle(ConjunctionId),
    /// Indemnity planning could not make the exchange feasible.
    PlanFailed {
        /// Indemnities applied before giving up.
        applied: usize,
    },
    /// A synthesised execution did not leave a principal in its preferred
    /// final state.
    UnacceptableOutcome {
        /// The principal whose interests were not protected.
        party: trustseq_model::AgentId,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Model(e) => write!(f, "model error: {e}"),
            CoreError::InvalidMove(e) => write!(f, "edge {e} is dead or unknown"),
            CoreError::RuleNotApplicable { edge, reason } => {
                write!(f, "rule not applicable to edge {edge}: {reason}")
            }
            CoreError::Infeasible { remaining_edges } => write!(
                f,
                "exchange is not feasible ({remaining_edges} edges remain after reduction)"
            ),
            CoreError::ScheduleStuck { unscheduled } => write!(
                f,
                "deposit scheduling stuck with {} commitments unscheduled",
                unscheduled.len()
            ),
            CoreError::UnknownConjunction(j) => write!(f, "unknown conjunction {j}"),
            CoreError::UnknownCommitment(c) => write!(f, "unknown commitment {c}"),
            CoreError::NotABundle(j) => {
                write!(f, "conjunction {j} is not a purchase bundle")
            }
            CoreError::PlanFailed { applied } => write!(
                f,
                "indemnity planning failed to reach feasibility after {applied} indemnities"
            ),
            CoreError::UnacceptableOutcome { party } => write!(
                f,
                "execution leaves principal {party} outside its preferred final state"
            ),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for CoreError {
    fn from(e: ModelError) -> Self {
        CoreError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::Infeasible { remaining_edges: 8 };
        assert!(e.to_string().contains("8 edges"));
        let e = CoreError::Model(ModelError::EmptySpec);
        assert!(e.to_string().contains("model error"));
    }

    #[test]
    fn model_error_is_source() {
        let e = CoreError::Model(ModelError::EmptySpec);
        assert!(e.source().is_some());
        let e = CoreError::InvalidMove(EdgeId::new(0));
        assert!(e.source().is_none());
    }

    #[test]
    fn from_model_error() {
        let e: CoreError = ModelError::EmptySpec.into();
        assert_eq!(e, CoreError::Model(ModelError::EmptySpec));
    }
}
