//! The sequencing graph of §4: commitment nodes, conjunction nodes and
//! red/black edges.

use crate::csr::Csr;
use crate::CoreError;
use serde::{Deserialize, Serialize};
use std::fmt;
use trustseq_model::{AgentId, DealId, DealSide};

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from a raw index.
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the raw index.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifies a commitment node (hexagons in the paper's figures).
    CommitmentId,
    "c"
);
define_id!(
    /// Identifies a conjunction node (squares labelled `∧x`).
    ConjunctionId,
    "j"
);
define_id!(
    /// Identifies an edge between a commitment and a conjunction.
    EdgeId,
    "e"
);

/// The colour of a sequencing-graph edge.
///
/// Red edges carry the ordering component of the third conjunction type
/// (§4.1): the red commitment must be *committed* before its siblings, but
/// *executed* after them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeColor {
    /// No ordering constraint among siblings.
    Black,
    /// Must be committed first (and executed last).
    Red,
}

impl fmt::Display for EdgeColor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EdgeColor::Black => "black",
            EdgeColor::Red => "red",
        })
    }
}

/// A commitment node: the decision to commit to one side of a pairwise
/// exchange between a principal and a trusted component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Commitment {
    /// This commitment's id.
    pub id: CommitmentId,
    /// The principal endpoint.
    pub principal: AgentId,
    /// The trusted-component endpoint.
    pub trusted: AgentId,
    /// The deal this commitment belongs to.
    pub deal: DealId,
    /// Whether the principal is the deal's buyer or seller.
    pub side: DealSide,
    /// Rule #1 clause 2 (§4.2.4): `true` when the trusted-agent role of this
    /// commitment is played by its own principal (the counterparty trusts
    /// the principal directly), which waives red-edge pre-emption.
    pub clause2_waiver: bool,
}

/// A conjunction node `∧x`: all commitments of agent `x` happen together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Conjunction {
    /// This conjunction's id.
    pub id: ConjunctionId,
    /// The agent common to all conjoined commitments.
    pub agent: AgentId,
    /// Whether the agent is a trusted component (conjunctions of the first
    /// type) or a principal (second/third type).
    pub trusted: bool,
}

/// An edge between a commitment and a conjunction node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// This edge's id.
    pub id: EdgeId,
    /// The commitment endpoint.
    pub commitment: CommitmentId,
    /// The conjunction endpoint.
    pub conjunction: ConjunctionId,
    /// Black or red.
    pub color: EdgeColor,
}

/// The sequencing graph `SG = (C, J, R, B)` of §4.1.
///
/// The graph is bipartite between commitment nodes `C` and conjunction nodes
/// `J`; `R` and `B` are the red and black edge sets (here represented as one
/// edge list with a colour plus a liveness bit, so that reductions are O(1)
/// and a [trace](crate::ReductionTrace) can replay them).
///
/// Graphs are built from an [`ExchangeSpec`](trustseq_model::ExchangeSpec)
/// via [`SequencingGraph::from_spec`](crate::SequencingGraph::from_spec) and
/// reduced with a [`Reducer`](crate::Reducer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequencingGraph {
    commitments: Vec<Commitment>,
    conjunctions: Vec<Conjunction>,
    edges: Vec<Edge>,
    alive: Vec<bool>,
    // Adjacency as flat CSR arenas (one allocation each instead of a Vec
    // per node); row order is edge-insertion order, so scans visit edges
    // exactly as the former Vec<Vec<EdgeId>> layout did.
    commitment_edges: Csr<EdgeId>,
    conjunction_edges: Csr<EdgeId>,
    live_count: usize,
    // Cached per-node live-edge counters, kept in lock-step with `alive` by
    // `remove_edge`/`restore_edge` so fringe and pre-emption queries are O(1)
    // instead of an adjacency scan. Invariants (checked by the scan oracles
    // in debug builds):
    //   commitment_live[c]      == #{ live edges at commitment c }
    //   conjunction_live[j]     == #{ live edges at conjunction j }
    //   conjunction_live_red[j] == #{ live red edges at conjunction j }
    commitment_live: Vec<usize>,
    conjunction_live: Vec<usize>,
    conjunction_live_red: Vec<usize>,
    // Raw-speed caches consumed by `ScratchReducer::reset_for`, so a
    // scratch reset is a handful of memcpys instead of an O(edges) scan.
    //
    // Packed per-node state words, kept in lock-step with `alive`: the
    // high 32 bits hold the live degree, the low 32 bits an XOR
    // accumulator of live edge slots. When the degree is exactly 1 the
    // accumulator *is* the surviving slot — an O(1) survivor lookup — and
    // packing both into one word means a removal touches one cache word
    // per node instead of two. `conjunction_red_state` tracks only the
    // live *red* edges of each conjunction (rule #1 pre-emption and its
    // lift cascade).
    commitment_state: Vec<u64>,
    conjunction_state: Vec<u64>,
    conjunction_red_state: Vec<u64>,
    // Static packed sets over the *initial* fully-live graph: clause-2
    // waiver flags per commitment, the scratch engine's seed worklist
    // in its interleaved candidate layout (bit `2 * slot + 1` = edge
    // applicable under rule #1, bit `2 * slot` = rule #2), and the
    // per-edge §4.2 pre-emption flags the scratch engine maintains
    // incrementally from this seed. Mutated only by `set_waiver`, which
    // re-derives the affected waiver bit and rule #1 seed bits; structural
    // `remove_edge`/`restore_edge` leave them untouched because they
    // describe the initial fully-live graph, which only `set_waiver`
    // changes.
    waiver_words: Vec<u64>,
    seed_cand_words: Vec<u64>,
    seed_preempted_words: Vec<u64>,
}

impl SequencingGraph {
    /// Assembles a graph from raw parts. Prefer
    /// [`SequencingGraph::from_spec`](crate::SequencingGraph::from_spec).
    pub(crate) fn from_parts(
        commitments: Vec<Commitment>,
        conjunctions: Vec<Conjunction>,
        edges: Vec<Edge>,
    ) -> Self {
        let commitment_edges = Csr::from_memberships(
            commitments.len(),
            edges.iter().map(|e| (e.commitment.index(), e.id)),
        );
        let conjunction_edges = Csr::from_memberships(
            conjunctions.len(),
            edges.iter().map(|e| (e.conjunction.index(), e.id)),
        );
        let mut commitment_live = vec![0usize; commitments.len()];
        let mut conjunction_live = vec![0usize; conjunctions.len()];
        let mut conjunction_live_red = vec![0usize; conjunctions.len()];
        let mut commitment_state = vec![0u64; commitments.len()];
        let mut conjunction_state = vec![0u64; conjunctions.len()];
        let mut conjunction_red_state = vec![0u64; conjunctions.len()];
        for (slot, e) in edges.iter().enumerate() {
            commitment_live[e.commitment.index()] += 1;
            conjunction_live[e.conjunction.index()] += 1;
            if e.color == EdgeColor::Red {
                conjunction_live_red[e.conjunction.index()] += 1;
                conjunction_red_state[e.conjunction.index()] =
                    (conjunction_red_state[e.conjunction.index()] + (1 << 32)) ^ slot as u64;
            }
            commitment_state[e.commitment.index()] =
                (commitment_state[e.commitment.index()] + (1 << 32)) ^ slot as u64;
            conjunction_state[e.conjunction.index()] =
                (conjunction_state[e.conjunction.index()] + (1 << 32)) ^ slot as u64;
        }
        let pack = |bits: &mut dyn Iterator<Item = bool>, len: usize| {
            let mut words = vec![0u64; len.div_ceil(64)];
            for (i, flag) in bits.enumerate() {
                words[i / 64] |= u64::from(flag) << (i % 64);
            }
            words
        };
        let waiver_words = pack(
            &mut commitments.iter().map(|c| c.clause2_waiver),
            commitments.len(),
        );
        // The scratch engine's initial worklist over the fully live graph,
        // in its interleaved candidate layout (edge slot `s` occupies bit
        // `2s + 1` for rule #1 and bit `2s` for rule #2): rule #1 wants
        // commitment degree 1 and no pre-empting *other* live red edge at
        // the conjunction (unless waived); rule #2 wants conjunction
        // degree 1. Static, so seeding becomes a memcpy.
        let seed_cand_words = pack(
            &mut edges.iter().flat_map(|e| {
                let rule2 = conjunction_live[e.conjunction.index()] == 1;
                let rule1 = commitment_live[e.commitment.index()] == 1 && {
                    let preempted = conjunction_live_red[e.conjunction.index()]
                        > usize::from(e.color == EdgeColor::Red);
                    !preempted || commitments[e.commitment.index()].clause2_waiver
                };
                [rule2, rule1]
            }),
            edges.len() * 2,
        );
        // Per-edge pre-emption over the fully live graph: edge `e` is
        // pre-empted iff another live red edge shares its conjunction.
        // The scratch engine memcpys this seed and then clears bits only
        // at the 2→1 / 1→0 red-count transitions, so the hot rule #1
        // eligibility test is one bitset load instead of an
        // edge→conjunction→red-state pointer chase.
        let seed_preempted_words = pack(
            &mut edges.iter().map(|e| {
                conjunction_live_red[e.conjunction.index()] > usize::from(e.color == EdgeColor::Red)
            }),
            edges.len(),
        );
        let live_count = edges.len();
        SequencingGraph {
            alive: vec![true; edges.len()],
            commitments,
            conjunctions,
            edges,
            commitment_edges,
            conjunction_edges,
            live_count,
            commitment_live,
            conjunction_live,
            conjunction_live_red,
            commitment_state,
            conjunction_state,
            conjunction_red_state,
            waiver_words,
            seed_cand_words,
            seed_preempted_words,
        }
    }

    /// Rebuilds the graph with every commitment, conjunction and edge id
    /// remapped through a seed-determined permutation — the same structure
    /// under fresh labels. Used by canonicalization tests to check that
    /// [`canon::fingerprint`](crate::canon::fingerprint) is label-invariant.
    ///
    /// Only defined for graphs with no removed edges (permuting a
    /// half-reduced graph would scramble the liveness bookkeeping).
    pub fn permuted(&self, seed: u64) -> SequencingGraph {
        assert_eq!(
            self.live_count,
            self.edges.len(),
            "permuted() requires a fully live graph"
        );
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x1996;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut x = state;
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^ (x >> 31)
        };
        // One shared shuffle buffer: `permutation` fills a caller-provided
        // vec (old id → new id) instead of allocating a fresh Vec per call,
        // and each node list is then built directly in new-id order through
        // the inverse map — no clone-then-overwrite passes.
        let mut permutation = |n: usize, order: &mut Vec<u32>, inverse: &mut Vec<u32>| {
            order.clear();
            order.extend(0..n as u32);
            for i in (1..n).rev() {
                order.swap(i, (next() % (i as u64 + 1)) as usize);
            }
            inverse.clear();
            inverse.resize(n, 0);
            for (old, &new) in order.iter().enumerate() {
                inverse[new as usize] = old as u32;
            }
        };
        let (mut cperm, mut cinv) = (Vec::new(), Vec::new());
        let (mut jperm, mut jinv) = (Vec::new(), Vec::new());
        let (mut eperm, mut einv) = (Vec::new(), Vec::new());
        permutation(self.commitments.len(), &mut cperm, &mut cinv);
        permutation(self.conjunctions.len(), &mut jperm, &mut jinv);
        permutation(self.edges.len(), &mut eperm, &mut einv);

        let commitments: Vec<Commitment> = cinv
            .iter()
            .enumerate()
            .map(|(new, &old)| Commitment {
                id: CommitmentId::new(new as u32),
                ..self.commitments[old as usize]
            })
            .collect();
        let conjunctions: Vec<Conjunction> = jinv
            .iter()
            .enumerate()
            .map(|(new, &old)| Conjunction {
                id: ConjunctionId::new(new as u32),
                ..self.conjunctions[old as usize]
            })
            .collect();
        let edges: Vec<Edge> = einv
            .iter()
            .enumerate()
            .map(|(new, &old)| {
                let e = self.edges[old as usize];
                Edge {
                    id: EdgeId::new(new as u32),
                    commitment: CommitmentId::new(cperm[e.commitment.index()]),
                    conjunction: ConjunctionId::new(jperm[e.conjunction.index()]),
                    color: e.color,
                }
            })
            .collect();
        SequencingGraph::from_parts(commitments, conjunctions, edges)
    }

    /// The commitment nodes.
    pub fn commitments(&self) -> &[Commitment] {
        &self.commitments
    }

    /// The conjunction nodes.
    pub fn conjunctions(&self) -> &[Conjunction] {
        &self.conjunctions
    }

    /// All edges (live and removed).
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Looks up a commitment node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn commitment(&self, id: CommitmentId) -> &Commitment {
        &self.commitments[id.index()]
    }

    /// Looks up a conjunction node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn conjunction(&self, id: ConjunctionId) -> &Conjunction {
        &self.conjunctions[id.index()]
    }

    /// Looks up an edge.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Whether an edge is still in the graph.
    pub fn is_live(&self, id: EdgeId) -> bool {
        self.alive[id.index()]
    }

    /// The liveness bitmap, indexed by edge id. Copied (not recomputed) by
    /// [`ScratchReducer::reset_for`](crate::ScratchReducer::reset_for).
    pub(crate) fn alive_slice(&self) -> &[bool] {
        &self.alive
    }

    /// The cached per-node live counters, for scratch-state seeding.
    pub(crate) fn live_counter_slices(&self) -> (&[usize], &[usize], &[usize]) {
        (
            &self.commitment_live,
            &self.conjunction_live,
            &self.conjunction_live_red,
        )
    }

    /// The cached packed per-node state words (degree in the high 32 bits,
    /// live-slot XOR accumulator in the low 32) for commitments,
    /// conjunctions, and red-only conjunctions, kept in lock-step with
    /// `alive` like the degree counters. Copied verbatim by
    /// `ScratchReducer::reset_for`.
    pub(crate) fn state_slices(&self) -> (&[u64], &[u64], &[u64]) {
        (
            &self.commitment_state,
            &self.conjunction_state,
            &self.conjunction_red_state,
        )
    }

    /// Clause-2 waiver flags packed 64 commitments per word, built once at
    /// construction (waivers are immutable graph structure).
    pub(crate) fn waiver_words(&self) -> &[u64] {
        &self.waiver_words
    }

    /// The initial applicable-move set over the *fully live* graph in the
    /// scratch engine's interleaved candidate layout (bit `2 * slot + 1` =
    /// rule #1, bit `2 * slot` = rule #2; 32 edges per word). Only
    /// meaningful while `live_edge_count() == edges().len()`.
    pub(crate) fn seed_cand_words(&self) -> &[u64] {
        &self.seed_cand_words
    }

    /// Per-edge §4.2 pre-emption flags over the *fully live* graph (edge
    /// slot per bit), built once at construction. Only meaningful while
    /// `live_edge_count() == edges().len()`.
    pub(crate) fn seed_preempted_words(&self) -> &[u64] {
        &self.seed_preempted_words
    }

    /// Number of edges still in the graph.
    pub fn live_edge_count(&self) -> usize {
        self.live_count
    }

    /// Total number of edges the graph was built with.
    pub fn initial_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All edge ids incident to a commitment (live and removed), in
    /// insertion order.
    pub(crate) fn commitment_edge_ids(&self, id: CommitmentId) -> &[EdgeId] {
        self.commitment_edges.row(id.index())
    }

    /// All edge ids incident to a conjunction (live and removed), in
    /// insertion order.
    pub(crate) fn conjunction_edge_ids(&self, id: ConjunctionId) -> &[EdgeId] {
        self.conjunction_edges.row(id.index())
    }

    /// Live edges incident to a commitment.
    pub fn live_edges_of_commitment(&self, id: CommitmentId) -> impl Iterator<Item = &Edge> + '_ {
        self.commitment_edges
            .row(id.index())
            .iter()
            .filter(|e| self.alive[e.index()])
            .map(|e| &self.edges[e.index()])
    }

    /// Live edges incident to a conjunction.
    pub fn live_edges_of_conjunction(&self, id: ConjunctionId) -> impl Iterator<Item = &Edge> + '_ {
        self.conjunction_edges
            .row(id.index())
            .iter()
            .filter(|e| self.alive[e.index()])
            .map(|e| &self.edges[e.index()])
    }

    /// Number of live edges at a commitment. O(1) via the cached counter.
    pub fn commitment_degree(&self, id: CommitmentId) -> usize {
        let cached = self.commitment_live[id.index()];
        debug_assert_eq!(
            cached,
            self.scan_commitment_degree(id),
            "stale commitment_live counter at {id}"
        );
        cached
    }

    /// Number of live edges at a conjunction. O(1) via the cached counter.
    pub fn conjunction_degree(&self, id: ConjunctionId) -> usize {
        let cached = self.conjunction_live[id.index()];
        debug_assert_eq!(
            cached,
            self.scan_conjunction_degree(id),
            "stale conjunction_live counter at {id}"
        );
        cached
    }

    /// Adjacency-scan oracle for [`Self::commitment_degree`]; asserted equal
    /// to the cached counter in debug builds.
    pub(crate) fn scan_commitment_degree(&self, id: CommitmentId) -> usize {
        self.live_edges_of_commitment(id).count()
    }

    /// Adjacency-scan oracle for [`Self::conjunction_degree`]; asserted equal
    /// to the cached counter in debug builds.
    pub(crate) fn scan_conjunction_degree(&self, id: ConjunctionId) -> usize {
        self.live_edges_of_conjunction(id).count()
    }

    /// Adjacency-scan oracle for [`Self::preempted_by_red`]; asserted equal
    /// to the counter-derived answer in debug builds.
    pub(crate) fn scan_preempted_by_red(&self, conjunction: ConjunctionId, except: EdgeId) -> bool {
        self.live_edges_of_conjunction(conjunction)
            .any(|e| e.color == EdgeColor::Red && e.id != except)
    }

    /// Whether a commitment is on the fringe: at most one live edge.
    pub fn commitment_is_fringe(&self, id: CommitmentId) -> bool {
        self.commitment_degree(id) <= 1
    }

    /// Whether a conjunction is on the fringe: at most one live edge.
    pub fn conjunction_is_fringe(&self, id: ConjunctionId) -> bool {
        self.conjunction_degree(id) <= 1
    }

    /// Whether a live red edge other than `except` is incident to the
    /// conjunction — the pre-emption test of Rule #1. O(1): the cached live
    /// red count, minus one when `except` itself is a live red edge of this
    /// conjunction.
    pub fn preempted_by_red(&self, conjunction: ConjunctionId, except: EdgeId) -> bool {
        let mut reds = self.conjunction_live_red[conjunction.index()];
        if let Some(e) = self.edges.get(except.index()) {
            if self.alive[except.index()]
                && e.color == EdgeColor::Red
                && e.conjunction == conjunction
            {
                reds -= 1;
            }
        }
        let preempted = reds > 0;
        debug_assert_eq!(
            preempted,
            self.scan_preempted_by_red(conjunction, except),
            "stale conjunction_live_red counter at {conjunction}"
        );
        preempted
    }

    /// Removes a live edge.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidMove`] if the edge is unknown or already removed.
    pub(crate) fn remove_edge(&mut self, id: EdgeId) -> Result<(), CoreError> {
        match self.alive.get_mut(id.index()) {
            Some(slot) if *slot => {
                *slot = false;
                self.live_count -= 1;
                let e = self.edges[id.index()];
                self.commitment_live[e.commitment.index()] -= 1;
                self.conjunction_live[e.conjunction.index()] -= 1;
                if e.color == EdgeColor::Red {
                    self.conjunction_live_red[e.conjunction.index()] -= 1;
                    let st = &mut self.conjunction_red_state[e.conjunction.index()];
                    *st = (*st - (1 << 32)) ^ id.index() as u64;
                }
                let st = &mut self.commitment_state[e.commitment.index()];
                *st = (*st - (1 << 32)) ^ id.index() as u64;
                let st = &mut self.conjunction_state[e.conjunction.index()];
                *st = (*st - (1 << 32)) ^ id.index() as u64;
                Ok(())
            }
            _ => Err(CoreError::InvalidMove(id)),
        }
    }

    /// Restores a removed edge, rewinding a reduction on the same graph.
    ///
    /// Batch analysis paths re-run from an immutable graph via
    /// [`ScratchReducer`](crate::ScratchReducer); this is the mutation
    /// substrate for the [`DeltaAnalyzer`](crate::DeltaAnalyzer)'s evolving
    /// base graph (an indemnity revoked resurrects the principal-side edge
    /// it had split away) and the test harness for the incremental counter
    /// maintenance. No-op when the edge is already live.
    pub(crate) fn restore_edge(&mut self, id: EdgeId) {
        let slot = &mut self.alive[id.index()];
        if !*slot {
            *slot = true;
            self.live_count += 1;
            let e = self.edges[id.index()];
            self.commitment_live[e.commitment.index()] += 1;
            self.conjunction_live[e.conjunction.index()] += 1;
            if e.color == EdgeColor::Red {
                self.conjunction_live_red[e.conjunction.index()] += 1;
                let st = &mut self.conjunction_red_state[e.conjunction.index()];
                *st = (*st + (1 << 32)) ^ id.index() as u64;
            }
            let st = &mut self.commitment_state[e.commitment.index()];
            *st = (*st + (1 << 32)) ^ id.index() as u64;
            let st = &mut self.conjunction_state[e.conjunction.index()];
            *st = (*st + (1 << 32)) ^ id.index() as u64;
        }
    }

    /// Grants or withdraws the clause-2 waiver of a commitment (§4.2.4):
    /// the trust-relation mutation "counterparty now trusts / no longer
    /// trusts the principal" expressed at graph level.
    ///
    /// Keeps the static scratch-engine seeds coherent: the packed waiver
    /// word and the rule #1 bits of the seed candidate words are re-derived
    /// for the commitment's edges over the *initial fully live* graph (the
    /// only state those seeds describe; `seed_preempted_words` depends only
    /// on edge colours and is untouched). Returns whether the flag changed.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownCommitment`] for an out-of-range id.
    pub(crate) fn set_waiver(&mut self, id: CommitmentId, waived: bool) -> Result<bool, CoreError> {
        let c = id.index();
        let Some(commitment) = self.commitments.get_mut(c) else {
            return Err(CoreError::UnknownCommitment(id));
        };
        if commitment.clause2_waiver == waived {
            return Ok(false);
        }
        commitment.clause2_waiver = waived;
        self.waiver_words[c / 64] ^= 1 << (c % 64);
        for &e in self.commitment_edges.row(c) {
            let slot = e.index();
            let edge = self.edges[slot];
            // Rule #1 over the fully live graph: commitment degree 1 (the
            // row length — edges are never added) and not pre-empted by
            // another initially-live red edge unless waived.
            let rule1 = self.commitment_edges.row(c).len() == 1 && {
                let preempted = (self.seed_preempted_words[slot / 64] >> (slot % 64)) & 1 != 0;
                !preempted || waived
            };
            let bit = 2 * slot + 1;
            let word = &mut self.seed_cand_words[bit / 64];
            *word = (*word & !(1 << (bit % 64))) | (u64::from(rule1) << (bit % 64));
            debug_assert_eq!(edge.commitment, id, "CSR row out of sync");
        }
        Ok(true)
    }

    /// The feasibility test of §4.2.4: a maximally reduced graph is feasible
    /// iff all edges have been removed (`R' ∪ B' = ∅`).
    ///
    /// Note: this only indicates feasibility when no further reduction is
    /// possible; use [`Reducer`](crate::Reducer) to reach that fixpoint.
    pub fn is_fully_reduced(&self) -> bool {
        self.live_count == 0
    }

    /// The commitment whose principal-side edge is red, if any.
    ///
    /// A commitment has at most two edges (one to its principal's
    /// conjunction, one to its trusted component's), and only the
    /// principal-side edge can be red.
    pub fn red_edge_of_commitment(&self, id: CommitmentId) -> Option<&Edge> {
        self.commitment_edges
            .row(id.index())
            .iter()
            .map(|e| &self.edges[e.index()])
            .find(|e| e.color == EdgeColor::Red)
    }

    /// Iterates over the live edges.
    pub fn live_edges(&self) -> impl Iterator<Item = &Edge> + '_ {
        self.edges.iter().filter(|e| self.alive[e.id.index()])
    }
}

impl fmt::Display for SequencingGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sequencing graph: {} commitments, {} conjunctions, {}/{} edges live",
            self.commitments.len(),
            self.conjunctions.len(),
            self.live_count,
            self.edges.len()
        )?;
        for e in self.live_edges() {
            let c = self.commitment(e.commitment);
            let j = self.conjunction(e.conjunction);
            writeln!(
                f,
                "  {} [{}] : ({}--{} {} {}) -- and[{}]",
                e.id, e.color, c.principal, c.trusted, c.deal, c.side, j.agent
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy graph: two commitments sharing one conjunction, one red edge.
    fn toy() -> SequencingGraph {
        let commitments = vec![
            Commitment {
                id: CommitmentId::new(0),
                principal: AgentId::new(0),
                trusted: AgentId::new(2),
                deal: DealId::new(0),
                side: DealSide::Seller,
                clause2_waiver: false,
            },
            Commitment {
                id: CommitmentId::new(1),
                principal: AgentId::new(0),
                trusted: AgentId::new(3),
                deal: DealId::new(1),
                side: DealSide::Buyer,
                clause2_waiver: false,
            },
        ];
        let conjunctions = vec![Conjunction {
            id: ConjunctionId::new(0),
            agent: AgentId::new(0),
            trusted: false,
        }];
        let edges = vec![
            Edge {
                id: EdgeId::new(0),
                commitment: CommitmentId::new(0),
                conjunction: ConjunctionId::new(0),
                color: EdgeColor::Red,
            },
            Edge {
                id: EdgeId::new(1),
                commitment: CommitmentId::new(1),
                conjunction: ConjunctionId::new(0),
                color: EdgeColor::Black,
            },
        ];
        SequencingGraph::from_parts(commitments, conjunctions, edges)
    }

    #[test]
    fn degrees_and_fringes() {
        let g = toy();
        assert_eq!(g.live_edge_count(), 2);
        assert_eq!(g.commitment_degree(CommitmentId::new(0)), 1);
        assert_eq!(g.conjunction_degree(ConjunctionId::new(0)), 2);
        assert!(g.commitment_is_fringe(CommitmentId::new(0)));
        assert!(!g.conjunction_is_fringe(ConjunctionId::new(0)));
    }

    #[test]
    fn preemption_excludes_self() {
        let g = toy();
        // The black edge is pre-empted by the red sibling…
        assert!(g.preempted_by_red(ConjunctionId::new(0), EdgeId::new(1)));
        // …but the red edge is not pre-empted by itself.
        assert!(!g.preempted_by_red(ConjunctionId::new(0), EdgeId::new(0)));
    }

    #[test]
    fn remove_and_restore() {
        let mut g = toy();
        g.remove_edge(EdgeId::new(0)).unwrap();
        assert_eq!(g.live_edge_count(), 1);
        assert!(!g.is_live(EdgeId::new(0)));
        assert!(g.conjunction_is_fringe(ConjunctionId::new(0)));
        // Double removal is an error.
        assert_eq!(
            g.remove_edge(EdgeId::new(0)),
            Err(CoreError::InvalidMove(EdgeId::new(0)))
        );
        g.restore_edge(EdgeId::new(0));
        assert_eq!(g.live_edge_count(), 2);
        assert!(g.is_live(EdgeId::new(0)));
    }

    #[test]
    fn unknown_edge_removal_is_an_error() {
        let mut g = toy();
        assert_eq!(
            g.remove_edge(EdgeId::new(7)),
            Err(CoreError::InvalidMove(EdgeId::new(7)))
        );
    }

    #[test]
    fn red_edge_lookup() {
        let g = toy();
        assert_eq!(
            g.red_edge_of_commitment(CommitmentId::new(0)).map(|e| e.id),
            Some(EdgeId::new(0))
        );
        assert!(g.red_edge_of_commitment(CommitmentId::new(1)).is_none());
    }

    #[test]
    fn fully_reduced_after_all_removals() {
        let mut g = toy();
        assert!(!g.is_fully_reduced());
        g.remove_edge(EdgeId::new(0)).unwrap();
        g.remove_edge(EdgeId::new(1)).unwrap();
        assert!(g.is_fully_reduced());
        assert_eq!(g.live_edges().count(), 0);
    }

    #[test]
    fn cached_counters_track_removals_and_restores() {
        let mut g = toy();
        // Churn the graph through every remove/restore order and verify the
        // cached counters against the scan oracles at each step.
        for first in [EdgeId::new(0), EdgeId::new(1)] {
            let second = EdgeId::new(1 - first.index() as u32);
            g.remove_edge(first).unwrap();
            g.remove_edge(second).unwrap();
            g.restore_edge(second);
            g.restore_edge(first);
            for c in [CommitmentId::new(0), CommitmentId::new(1)] {
                assert_eq!(g.commitment_degree(c), g.scan_commitment_degree(c));
            }
            let j = ConjunctionId::new(0);
            assert_eq!(g.conjunction_degree(j), g.scan_conjunction_degree(j));
            for except in [EdgeId::new(0), EdgeId::new(1), EdgeId::new(9)] {
                assert_eq!(
                    g.preempted_by_red(j, except),
                    g.scan_preempted_by_red(j, except)
                );
            }
        }
        assert_eq!(g.live_edge_count(), 2);
        // Restoring an already-live edge is a no-op on the counters.
        g.restore_edge(EdgeId::new(0));
        assert_eq!(g.commitment_degree(CommitmentId::new(0)), 1);
    }

    /// `toy()` with the waiver flags chosen per commitment.
    fn toy_waived(w0: bool, w1: bool) -> SequencingGraph {
        let g = toy();
        let mut commitments = g.commitments.clone();
        commitments[0].clause2_waiver = w0;
        commitments[1].clause2_waiver = w1;
        SequencingGraph::from_parts(commitments, g.conjunctions, g.edges)
    }

    #[test]
    fn set_waiver_rederives_static_seeds() {
        let mut g = toy();
        // Granting the waiver on each commitment must leave the packed
        // waiver/seed words exactly as a from-scratch build with that flag.
        assert!(g.set_waiver(CommitmentId::new(1), true).unwrap());
        let rebuilt = toy_waived(false, true);
        assert_eq!(g.waiver_words(), rebuilt.waiver_words());
        assert_eq!(g.seed_cand_words(), rebuilt.seed_cand_words());
        assert_eq!(g.seed_preempted_words(), rebuilt.seed_preempted_words());
        assert!(g.commitment(CommitmentId::new(1)).clause2_waiver);

        // No-op toggles report no change; withdrawing restores the original.
        assert!(!g.set_waiver(CommitmentId::new(1), true).unwrap());
        assert!(g.set_waiver(CommitmentId::new(1), false).unwrap());
        let original = toy();
        assert_eq!(g.waiver_words(), original.waiver_words());
        assert_eq!(g.seed_cand_words(), original.seed_cand_words());

        assert_eq!(
            g.set_waiver(CommitmentId::new(9), true),
            Err(CoreError::UnknownCommitment(CommitmentId::new(9)))
        );
    }

    #[test]
    fn display_shows_live_edges_only() {
        let mut g = toy();
        g.remove_edge(EdgeId::new(1)).unwrap();
        let s = g.to_string();
        assert!(s.contains("1/2 edges live"));
        assert!(s.contains("[red]"));
        assert!(!s.contains("[black]"));
    }
}
