//! Property tests for the fault-injection layer and the resilient engine.
//!
//! The central property mirrors the paper's confluence argument: the
//! reduction's fixpoint removal set is unique, so *any* fault plan under
//! which every announcement is eventually delivered must steer the
//! resilient engine to the same removal set as the fault-free run — the
//! faults may only cost rounds and retransmissions, never correctness.

use proptest::prelude::*;
use std::collections::BTreeSet;
use trustseq_core::EdgeId;
use trustseq_dist::{
    Crash, DistOutcome, DistributedReduction, FaultPlan, Partition, ResilientConfig,
};
use trustseq_model::{AgentId, ExchangeSpec};
use trustseq_workloads::{random_exchange, RandomConfig};

/// A generous budget: retries practically never run out, so any plan with
/// eventual delivery (drop < 1000‰, crashed nodes restart, partitions
/// heal) must reach a decided verdict.
fn generous() -> ResilientConfig {
    ResilientConfig {
        max_attempts: 64,
        ..ResilientConfig::default()
    }
}

/// A small random exchange topology (1–3 chains, depth ≤ 3, a dash of
/// direct trust), deterministic in `seed`.
fn spec_for(seed: u64) -> ExchangeSpec {
    random_exchange(&RandomConfig {
        width: 1 + (seed as usize % 3),
        max_depth: 1 + (seed as usize / 3 % 3),
        trust_density: if seed.is_multiple_of(5) { 0.3 } else { 0.0 },
        seed,
        ..RandomConfig::default()
    })
    .spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under any eventually-delivering fault plan the resilient engine
    /// decides, agrees with the fault-free run's verdict, and removes
    /// exactly the fault-free run's removal set.
    #[test]
    fn eventual_delivery_reaches_the_fault_free_fixpoint(
        spec_seed in 0u64..64,
        plan_seed in 0u64..1 << 20,
        drop in 0u16..=300,
        dup in 0u16..=200,
        delay in 0u64..=3,
        victim_pick in 0usize..16,
        crash_at in 1usize..=3,
        outage in 1usize..=4,
        cut_pick in 0usize..16,
        heal_at in 2usize..=5,
    ) {
        let spec = spec_for(spec_seed);
        let engine = DistributedReduction::new(&spec).unwrap();
        let participants: Vec<AgentId> = engine.participants().collect();

        let mut plan = FaultPlan::seeded(plan_seed)
            .with_drop_per_mille(drop)
            .with_dup_per_mille(dup)
            .with_max_extra_delay(delay);
        // Crash one real participant — but always restart it.
        if plan_seed.is_multiple_of(2) && !participants.is_empty() {
            let victim = participants[victim_pick % participants.len()];
            plan = plan.with_crash(
                victim,
                Crash {
                    at_round: crash_at,
                    restart_at: Some(crash_at + outage),
                },
            );
        }
        // Partition two real participants — but always heal the cut.
        if plan_seed.is_multiple_of(3) && participants.len() > 1 {
            let b = participants[1 + cut_pick % (participants.len() - 1)];
            plan = plan.with_partition(Partition {
                a: participants[0],
                b,
                from_round: 0,
                until_round: heal_at,
            });
        }

        let baseline = DistributedReduction::new(&spec).unwrap().run();
        let base_set: BTreeSet<EdgeId> =
            baseline.removals.iter().map(|r| r.edge).collect();

        let out = engine.run_resilient(&plan, &generous()).unwrap();
        prop_assert_eq!(
            out.verdict.decided(),
            Some(baseline.feasible),
            "plan [{}] did not reach the fault-free verdict: {}",
            plan,
            out
        );
        let set: BTreeSet<EdgeId> = out.removals.iter().map(|r| r.edge).collect();
        prop_assert_eq!(set, base_set, "plan [{}] removal set diverged", plan);
    }

    /// `FaultPlan`'s textual form round-trips exactly — the chaos harness
    /// can log a plan and replay it byte-for-byte.
    #[test]
    fn fault_plan_text_round_trips(
        seed in 0u64..1 << 40,
        drop in 0u16..1000,
        dup in 0u16..1000,
        delay in 0u64..8,
        crash_victim in 0u32..12,
        at_round in 0usize..8,
        restarts in 0usize..2,
        resume in 1usize..6,
        cut_b in 1u32..12,
        cut_from in 0usize..4,
        heals in 0usize..2,
        heal_at in 5usize..9,
    ) {
        let plan = FaultPlan::seeded(seed)
            .with_drop_per_mille(drop)
            .with_dup_per_mille(dup)
            .with_max_extra_delay(delay)
            .with_crash(
                AgentId::new(crash_victim),
                Crash {
                    at_round,
                    restart_at: (restarts == 1).then_some(at_round + resume),
                },
            )
            .with_partition(Partition {
                a: AgentId::new(0),
                b: AgentId::new(cut_b),
                from_round: cut_from,
                until_round: if heals == 1 { heal_at } else { usize::MAX },
            });
        let text = plan.to_string();
        let back: FaultPlan = text.parse().expect("plan text parses back");
        prop_assert_eq!(&plan, &back, "text was [{}]", text);
        // And the round-trip is textually stable, too.
        prop_assert_eq!(text, back.to_string());
    }

    /// `DistOutcome`'s wire form round-trips exactly, whatever delay
    /// schedule produced it.
    #[test]
    fn dist_outcome_wire_round_trips(
        spec_seed in 0u64..48,
        delay_seed in 0u64..1 << 16,
        max_delay in 1u64..4,
    ) {
        let spec = spec_for(spec_seed);
        let out = DistributedReduction::new(&spec)
            .unwrap()
            .run_with_delays(delay_seed, max_delay);
        let wire = out.to_wire();
        let back = DistOutcome::from_wire(&wire).expect("wire form parses back");
        prop_assert_eq!(&out, &back, "wire was [{}]", wire);
        prop_assert_eq!(wire, back.to_wire());
    }
}
