//! Property tests for the length-prefixed framing layer.
//!
//! The framing contract the socket transport depends on:
//!
//! * any packet's encoded frame survives arbitrarily split or coalesced
//!   reads byte-for-byte (TCP is a byte stream — the decoder owes the
//!   caller whole frames no matter how the kernel chunks them);
//! * every accepted frame re-encodes to itself (the codec is canonical);
//! * a truncated prefix — a torn write — is a *typed* error from
//!   `finish()`, never a panic and never a silently absorbed frame.

use proptest::prelude::*;
use trustseq_core::{EdgeId, Rule};
use trustseq_dist::net::{encode_frame, FrameDecoder, FrameError, FRAME_HEADER_LEN};
use trustseq_dist::{Message, NodeStatus, Packet, ServiceOp, ServiceReply, ServiceRequest};
use trustseq_model::AgentId;

/// Builds one of every packet shape deterministically from primitive
/// inputs (the vendored proptest has no union strategies, so variants are
/// picked by `kind`).
fn packet_from(kind: u8, seq: u64, agent: u32, edge: u32, extra: usize) -> Packet {
    let from = AgentId::new(agent);
    let e = EdgeId::new(edge);
    let dead: Vec<EdgeId> = (0..extra).map(|i| EdgeId::new(edge + i as u32)).collect();
    match kind {
        0 => Packet::Data {
            seq,
            msg: Message { from, edge: e },
        },
        1 => Packet::Ack { seq },
        2 => Packet::SyncReq { from },
        3 => Packet::SyncResp { from, dead },
        4 => Packet::Hello { from },
        5 => Packet::Ping { tick: seq },
        6 => Packet::Decided {
            from,
            edge: e,
            rule: if seq.is_multiple_of(2) {
                Rule::CommitmentFringe
            } else {
                Rule::ConjunctionFringe
            },
        },
        7 => {
            let mut s = NodeStatus::empty(from);
            s.tick = seq;
            s.live = extra as u32;
            s.proposals = (seq % 7) as u32;
            s.unacked = (seq % 3) as u32;
            s.abandoned = (seq % 2) as u32;
            s.dead = dead;
            s.bytes_tx = seq.wrapping_mul(31);
            s.bytes_rx = seq.wrapping_mul(17);
            s.frames_tx = seq % 1000;
            s.frames_rx = seq % 997;
            s.reconnects = seq % 5;
            s.rtt_us = seq % 100_000;
            Packet::Status(s)
        }
        _ => {
            const TOKENS: [&str; 6] = [
                "feasible",
                "infeasible",
                "undecided:retries",
                "undecided:down",
                "undecided:rounds",
                "undecided:deadline",
            ];
            Packet::Halt {
                verdict: TOKENS[seq as usize % TOKENS.len()].to_string(),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// One frame fed to the decoder in chunks of every size from one byte
    /// up: the same single frame comes out, and the decoded packet
    /// re-encodes to the exact frame text (canonical codec).
    #[test]
    fn any_packet_survives_split_reads(
        kind in 0u8..9,
        seq in any::<u64>(),
        agent in 0u32..40,
        edge in 0u32..200,
        extra in 0usize..8,
        chunk in 1usize..16,
    ) {
        let packet = packet_from(kind, seq, agent, edge, extra);
        let wire = packet.to_wire();
        let bytes = encode_frame(&wire).expect("encodes");

        let mut dec = FrameDecoder::new();
        let mut frames = Vec::new();
        for piece in bytes.chunks(chunk) {
            dec.push(piece);
            while let Some(frame) = dec.next_frame().expect("no decode error") {
                frames.push(frame);
            }
        }
        dec.finish().expect("clean boundary");
        prop_assert_eq!(frames.len(), 1);
        prop_assert_eq!(&frames[0], &wire);

        let decoded = Packet::from_wire(&frames[0]).expect("round-trips");
        prop_assert_eq!(decoded.to_wire(), wire);
        prop_assert_eq!(decoded, packet);
    }

    /// Several frames coalesced into one read drain in order.
    #[test]
    fn coalesced_frames_drain_in_order(
        kinds in proptest::collection::vec(0u8..9, 1..6),
        seq in any::<u64>(),
        agent in 0u32..40,
        edge in 0u32..200,
    ) {
        let packets: Vec<Packet> = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| packet_from(k, seq.wrapping_add(i as u64), agent, edge, i))
            .collect();
        let mut bytes = Vec::new();
        for p in &packets {
            bytes.extend_from_slice(&encode_frame(&p.to_wire()).expect("encodes"));
        }

        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let mut frames = Vec::new();
        while let Some(frame) = dec.next_frame().expect("no decode error") {
            frames.push(frame);
        }
        dec.finish().expect("clean boundary");
        prop_assert_eq!(frames.len(), packets.len());
        for (frame, packet) in frames.iter().zip(&packets) {
            prop_assert_eq!(frame, &packet.to_wire());
        }
    }

    /// Every strict prefix of a frame is a torn write: `next()` yields
    /// nothing and `finish()` reports a typed truncation whose arithmetic
    /// matches the cut — never a panic, never a phantom frame.
    #[test]
    fn truncated_prefixes_are_typed_errors(
        kind in 0u8..9,
        seq in any::<u64>(),
        agent in 0u32..40,
        edge in 0u32..200,
        extra in 0usize..8,
        cut_pick in any::<u64>(),
    ) {
        let packet = packet_from(kind, seq, agent, edge, extra);
        let bytes = encode_frame(&packet.to_wire()).expect("encodes");
        let cut = 1 + (cut_pick as usize) % (bytes.len() - 1);

        let mut dec = FrameDecoder::new();
        dec.push(&bytes[..cut]);
        prop_assert_eq!(dec.next_frame().expect("no decode error"), None);
        match dec.finish() {
            Err(FrameError::Truncated { got, missing }) => {
                if cut < FRAME_HEADER_LEN {
                    // Inside the length prefix the decoder can only owe
                    // the rest of the header.
                    prop_assert_eq!(missing, FRAME_HEADER_LEN - cut);
                } else {
                    prop_assert_eq!(got + missing, bytes.len());
                }
            }
            other => prop_assert!(false, "expected Truncated, got {other:?}"),
        }
    }
}

/// Picks one of the four lifecycle ops deterministically.
fn op_from(kind: u8) -> ServiceOp {
    match kind % 4 {
        0 => ServiceOp::Post,
        1 => ServiceOp::Accept,
        2 => ServiceOp::Cancel,
        _ => ServiceOp::Expire,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// An `event` request frame survives arbitrarily split reads and
    /// decodes canonically — including structure ids above `u32::MAX`,
    /// which address hot-admitted population growth.
    #[test]
    fn event_frames_survive_split_reads(
        seq in any::<u64>(),
        id in any::<u64>(),
        op_kind in 0u8..4,
        slot in any::<u32>(),
        chunk in 1usize..16,
    ) {
        let request = ServiceRequest::Event { seq, id, op: op_from(op_kind), slot };
        let wire = request.to_wire();
        let bytes = encode_frame(&wire).expect("encodes");

        let mut dec = FrameDecoder::new();
        let mut frames = Vec::new();
        for piece in bytes.chunks(chunk) {
            dec.push(piece);
            while let Some(frame) = dec.next_frame().expect("no decode error") {
                frames.push(frame);
            }
        }
        dec.finish().expect("clean boundary");
        prop_assert_eq!(frames.len(), 1);
        prop_assert_eq!(&frames[0], &wire);

        let decoded = ServiceRequest::from_wire(&frames[0]).expect("round-trips");
        prop_assert_eq!(decoded.to_wire(), wire);
        prop_assert_eq!(decoded, request);
    }

    /// A pipelined burst of `event` requests and their `everdict` replies
    /// coalesced into one read drains in order, each frame canonical.
    #[test]
    fn coalesced_event_streams_drain_in_order(
        seqs in proptest::collection::vec(any::<u64>(), 1..8),
        id in any::<u64>(),
        slot in any::<u32>(),
        hash in any::<u64>(),
    ) {
        let wires: Vec<String> = seqs
            .iter()
            .enumerate()
            .map(|(i, &seq)| {
                if i % 2 == 0 {
                    ServiceRequest::Event {
                        seq,
                        id: id.wrapping_add(i as u64),
                        op: op_from(i as u8),
                        slot,
                    }
                    .to_wire()
                } else {
                    ServiceReply::EventVerdict {
                        seq,
                        feasible: seq.is_multiple_of(2),
                        remaining: slot,
                        hash: hash.wrapping_add(i as u64),
                    }
                    .to_wire()
                }
            })
            .collect();
        let mut bytes = Vec::new();
        for w in &wires {
            bytes.extend_from_slice(&encode_frame(w).expect("encodes"));
        }

        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let mut frames = Vec::new();
        while let Some(frame) = dec.next_frame().expect("no decode error") {
            frames.push(frame);
        }
        dec.finish().expect("clean boundary");
        prop_assert_eq!(&frames, &wires);
        for (i, frame) in frames.iter().enumerate() {
            if i % 2 == 0 {
                let req = ServiceRequest::from_wire(frame).expect("request round-trips");
                prop_assert_eq!(&req.to_wire(), frame);
            } else {
                let rep = ServiceReply::from_wire(frame).expect("reply round-trips");
                prop_assert_eq!(&rep.to_wire(), frame);
            }
        }
    }

    /// Truncation totality at the codec layer: every strict prefix of a
    /// canonical `event` or `everdict` line is either a typed
    /// `CodecError` or itself a canonical frame — never a panic, and any
    /// accepted prefix re-encodes to itself.
    #[test]
    fn cut_event_lines_are_typed_errors_or_canonical(
        seq in any::<u64>(),
        id in any::<u64>(),
        op_kind in 0u8..4,
        slot in any::<u32>(),
        hash in any::<u64>(),
        cut_pick in any::<u64>(),
    ) {
        let request = ServiceRequest::Event { seq, id, op: op_from(op_kind), slot }.to_wire();
        let reply = ServiceReply::EventVerdict {
            seq,
            feasible: seq.is_multiple_of(2),
            remaining: slot,
            hash,
        }
        .to_wire();

        let cut_req = 1 + (cut_pick as usize) % (request.len() - 1);
        if let Ok(accepted) = ServiceRequest::from_wire(&request[..cut_req]) {
            prop_assert_eq!(accepted.to_wire(), &request[..cut_req]);
        }
        let cut_rep = 1 + (cut_pick as usize) % (reply.len() - 1);
        if let Ok(accepted) = ServiceReply::from_wire(&reply[..cut_rep]) {
            prop_assert_eq!(accepted.to_wire(), &reply[..cut_rep]);
        }
    }
}
