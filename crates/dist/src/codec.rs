//! The resilient protocol's wire codec: every packet crosses the faulty
//! network as a canonical single-line text frame.
//!
//! Routing traffic through an explicit codec is what makes the corruption
//! fault class ([`FaultPlan::with_corrupt_per_mille`]) meaningful: a
//! corrupted frame arrives truncated, [`Packet::from_wire`] rejects it
//! with a typed [`CodecError`] (never a panic), and the engine treats the
//! packet as lost — the acknowledgement/retransmission machinery absorbs
//! it exactly like a drop. The codec is lossless, so faultless resilient
//! runs stay byte-identical to the reliable engine.
//!
//! Frame shapes (mirroring the [`FaultPlan`] and
//! [`DistOutcome`](crate::DistOutcome) text codecs):
//!
//! * `data;seq=5;from=a3;edge=e2` — a removal announcement under a
//!   sequence number;
//! * `ack;seq=5` — its acknowledgement;
//! * `syncreq;from=a3` — a restarted node asking a neighbour for its
//!   dead-edge view;
//! * `syncresp;from=a3;dead=e1,e4` — the neighbour's answer (`dead=` may
//!   be empty).
//!
//! The socket transport ([`crate::net`], [`crate::supervise`]) reuses the
//! same codec for its control plane, adding:
//!
//! * `hello;from=a3` — the first frame of every connection, identifying
//!   the peer;
//! * `ping;tick=42` — a heartbeat keepalive on idle links;
//! * `decided;from=a3;edge=e2;rule=1` — a node streaming a local removal
//!   decision to the supervisor;
//! * `status;from=a3;tick=42;live=3;props=0;unacked=1;abandoned=0;dead=e1;tx=10;rx=20;ftx=3;frx=4;rc=0;rtt=250`
//!   — a node's periodic self-report to the supervisor;
//! * `halt;verdict=feasible` — the supervisor's shutdown broadcast,
//!   carrying a [`DistVerdict`](crate::DistVerdict) token.
//!
//! The analysis service (`trustseq-service`) speaks its own
//! request/response frames over the same conventions —
//! [`ServiceRequest`] (`analyze`, `analyzespec`, `mutate`, `event`,
//! `stats`) and [`ServiceReply`] (`verdict`, `everdict`, `svcstats`,
//! `rejected`) — with one deliberate extension: `analyzespec` carries
//! spec-language source as a *verbatim tail* (`spec=` is always the last
//! field), since the length-prefixed frame layer already delimits the
//! payload and spec source legitimately contains `;` and newlines.
//!
//! `event` is the streaming sibling of `mutate`: the same marketplace
//! lifecycle op, but answered from the structure's resident delta
//! analyzer (no whole-graph re-reduction) and acknowledged with an
//! `everdict` reply that carries the server's running order-sensitive
//! FNV fold over the structure's verdict stream, so a client replaying
//! the same schedule against a local mirror can audit agreement with a
//! single integer compare. Its `id` field is a u64 — the event stream
//! addresses the *growable* population (an `event post` on an unknown id
//! admits a new structure while serving), not just the boot-time one.
//!
//! [`FaultPlan`]: crate::FaultPlan
//! [`FaultPlan::with_corrupt_per_mille`]: crate::FaultPlan::with_corrupt_per_mille

use crate::node::Message;
use std::fmt;
use trustseq_core::{EdgeId, Rule};
use trustseq_model::AgentId;

/// One node's periodic self-report to the connection supervisor: its view
/// of the reduction (live/dead edges, pending work) plus its link-layer
/// accounting. Carried by [`Packet::Status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeStatus {
    /// The reporting node.
    pub from: AgentId,
    /// The node's local tick counter at report time.
    pub tick: u64,
    /// Edges the node still believes live.
    pub live: u32,
    /// Removal proposals the node could currently justify (0 at a local
    /// fixpoint).
    pub proposals: u32,
    /// Announcements sent but neither acknowledged nor abandoned.
    pub unacked: u32,
    /// Announcements abandoned after exhausting their retry budget — a
    /// non-zero value taints any `infeasible` claim.
    pub abandoned: u32,
    /// Every visible edge the node knows removed (cumulative, idempotent —
    /// safe to resend, so lost statuses cost nothing).
    pub dead: Vec<EdgeId>,
    /// Bytes written to peer links.
    pub bytes_tx: u64,
    /// Bytes read from peer links.
    pub bytes_rx: u64,
    /// Frames written to peer links.
    pub frames_tx: u64,
    /// Frames read from peer links.
    pub frames_rx: u64,
    /// Successful link reconnections after a connection died.
    pub reconnects: u64,
    /// Most recent announcement→ack round trip in microseconds (0 = no
    /// sample yet).
    pub rtt_us: u64,
}

impl NodeStatus {
    /// A zeroed report for `from` — the state of a node that has connected
    /// but not yet observed anything.
    pub fn empty(from: AgentId) -> Self {
        NodeStatus {
            from,
            tick: 0,
            live: 0,
            proposals: 0,
            unacked: 0,
            abandoned: 0,
            dead: Vec::new(),
            bytes_tx: 0,
            bytes_rx: 0,
            frames_tx: 0,
            frames_rx: 0,
            reconnects: 0,
            rtt_us: 0,
        }
    }
}

/// A resilient-protocol packet. `Data` carries the base protocol's
/// removal announcement under a sequence number; the rest is the
/// reliability machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet {
    /// A reliable removal announcement.
    Data {
        /// Sender-side sequence number (index into the announcement log).
        seq: u64,
        /// The announced removal.
        msg: Message,
    },
    /// Acknowledges the `Data` packet with the same sequence number.
    Ack {
        /// The acknowledged sequence number.
        seq: u64,
    },
    /// A restarted node's request for a neighbour's dead-edge view.
    SyncReq {
        /// The requester.
        from: AgentId,
    },
    /// The neighbour's dead-edge view.
    SyncResp {
        /// The responding neighbour.
        from: AgentId,
        /// Every edge the responder knows removed.
        dead: Vec<EdgeId>,
    },
    /// The first frame of every socket connection: who is calling.
    Hello {
        /// The connecting peer.
        from: AgentId,
    },
    /// A heartbeat keepalive on an idle link.
    Ping {
        /// The sender's local tick counter.
        tick: u64,
    },
    /// A node streaming one local removal decision to the supervisor.
    Decided {
        /// The deciding node.
        from: AgentId,
        /// The removed edge.
        edge: EdgeId,
        /// The sanctioning rule.
        rule: Rule,
    },
    /// A node's periodic self-report to the supervisor.
    Status(NodeStatus),
    /// The supervisor's shutdown broadcast with the run's verdict token
    /// (see [`DistVerdict::to_token`](crate::DistVerdict::to_token)).
    Halt {
        /// The verdict token, e.g. `feasible` or `undecided:deadline`.
        verdict: String,
    },
}

/// Why a wire frame failed to decode. Carries the offending fragment and
/// what the codec expected there, like
/// [`FaultPlanParseError`](crate::FaultPlanParseError).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// The offending fragment (possibly the whole frame).
    pub fragment: String,
    /// What was expected.
    pub expected: &'static str,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bad packet frame fragment {:?}: expected {}",
            self.fragment, self.expected
        )
    }
}

impl std::error::Error for CodecError {}

fn bad(fragment: &str, expected: &'static str) -> CodecError {
    CodecError {
        fragment: fragment.to_string(),
        expected,
    }
}

fn parse_agent(s: &str) -> Result<AgentId, CodecError> {
    s.strip_prefix('a')
        .and_then(|n| n.parse::<u32>().ok())
        .map(AgentId::new)
        .ok_or_else(|| bad(s, "an agent id like a3"))
}

fn parse_edge(s: &str) -> Result<EdgeId, CodecError> {
    s.strip_prefix('e')
        .and_then(|n| n.parse::<u32>().ok())
        .map(EdgeId::new)
        .ok_or_else(|| bad(s, "an edge id like e2"))
}

/// Splits `field` as `key=value` and checks the key.
fn expect_field<'a>(
    field: Option<&'a str>,
    key: &'static str,
    expected: &'static str,
) -> Result<&'a str, CodecError> {
    let field = field.ok_or_else(|| bad("", expected))?;
    match field.split_once('=') {
        Some((k, v)) if k == key => Ok(v),
        _ => Err(bad(field, expected)),
    }
}

impl Packet {
    /// Encodes the packet as its canonical wire frame.
    /// [`Packet::from_wire`] inverts it exactly (round-trip is tested in
    /// this module and property-tested in `tests/resilience.rs`).
    pub fn to_wire(&self) -> String {
        use fmt::Write as _;
        match self {
            Packet::Data { seq, msg } => {
                format!("data;seq={seq};from={};edge={}", msg.from, msg.edge)
            }
            Packet::Ack { seq } => format!("ack;seq={seq}"),
            Packet::SyncReq { from } => format!("syncreq;from={from}"),
            Packet::SyncResp { from, dead } => {
                let mut out = format!("syncresp;from={from};dead=");
                for (i, e) in dead.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{e}");
                }
                out
            }
            Packet::Hello { from } => format!("hello;from={from}"),
            Packet::Ping { tick } => format!("ping;tick={tick}"),
            Packet::Decided { from, edge, rule } => {
                format!(
                    "decided;from={from};edge={edge};rule={}",
                    match rule {
                        Rule::CommitmentFringe => 1,
                        Rule::ConjunctionFringe => 2,
                    }
                )
            }
            Packet::Status(s) => {
                let mut out = format!(
                    "status;from={};tick={};live={};props={};unacked={};abandoned={};dead=",
                    s.from, s.tick, s.live, s.proposals, s.unacked, s.abandoned
                );
                for (i, e) in s.dead.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{e}");
                }
                let _ = write!(
                    out,
                    ";tx={};rx={};ftx={};frx={};rc={};rtt={}",
                    s.bytes_tx, s.bytes_rx, s.frames_tx, s.frames_rx, s.reconnects, s.rtt_us
                );
                out
            }
            Packet::Halt { verdict } => format!("halt;verdict={verdict}"),
        }
    }

    /// Decodes a frame produced by [`Packet::to_wire`].
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] naming the first malformed fragment — a
    /// truncated or otherwise mangled frame is a typed error, never a
    /// panic.
    pub fn from_wire(frame: &str) -> Result<Self, CodecError> {
        let mut fields = frame.split(';');
        let tag = fields.next().unwrap_or_default();
        let packet = match tag {
            "data" => {
                let seq = expect_field(fields.next(), "seq", "seq=<u64>")?;
                let from = expect_field(fields.next(), "from", "from=<agent>")?;
                let edge = expect_field(fields.next(), "edge", "edge=<edge>")?;
                Packet::Data {
                    seq: seq.parse().map_err(|_| bad(seq, "a u64 sequence number"))?,
                    msg: Message {
                        from: parse_agent(from)?,
                        edge: parse_edge(edge)?,
                    },
                }
            }
            "ack" => {
                let seq = expect_field(fields.next(), "seq", "seq=<u64>")?;
                Packet::Ack {
                    seq: seq.parse().map_err(|_| bad(seq, "a u64 sequence number"))?,
                }
            }
            "syncreq" => {
                let from = expect_field(fields.next(), "from", "from=<agent>")?;
                Packet::SyncReq {
                    from: parse_agent(from)?,
                }
            }
            "syncresp" => {
                let from = expect_field(fields.next(), "from", "from=<agent>")?;
                let dead = expect_field(fields.next(), "dead", "dead=<edges>")?;
                let mut edges = Vec::new();
                if !dead.is_empty() {
                    // Strict: a trailing or doubled comma is a mangled
                    // frame, not an empty entry — keeps decoding canonical
                    // (every accepted frame re-encodes to itself).
                    for entry in dead.split(',') {
                        edges.push(parse_edge(entry)?);
                    }
                }
                Packet::SyncResp {
                    from: parse_agent(from)?,
                    dead: edges,
                }
            }
            "hello" => {
                let from = expect_field(fields.next(), "from", "from=<agent>")?;
                Packet::Hello {
                    from: parse_agent(from)?,
                }
            }
            "ping" => {
                let tick = expect_field(fields.next(), "tick", "tick=<u64>")?;
                Packet::Ping {
                    tick: tick.parse().map_err(|_| bad(tick, "a u64 tick counter"))?,
                }
            }
            "decided" => {
                let from = expect_field(fields.next(), "from", "from=<agent>")?;
                let edge = expect_field(fields.next(), "edge", "edge=<edge>")?;
                let rule = expect_field(fields.next(), "rule", "rule=<1|2>")?;
                Packet::Decided {
                    from: parse_agent(from)?,
                    edge: parse_edge(edge)?,
                    rule: match rule {
                        "1" => Rule::CommitmentFringe,
                        "2" => Rule::ConjunctionFringe,
                        _ => return Err(bad(rule, "rule 1 or 2")),
                    },
                }
            }
            "status" => {
                fn num(
                    field: Option<&str>,
                    key: &'static str,
                    expected: &'static str,
                ) -> Result<u64, CodecError> {
                    let v = expect_field(field, key, expected)?;
                    v.parse().map_err(|_| bad(v, "a non-negative number"))
                }
                let from = expect_field(fields.next(), "from", "from=<agent>")?;
                let from = parse_agent(from)?;
                let tick = num(fields.next(), "tick", "tick=<u64>")?;
                let live = num(fields.next(), "live", "live=<u32>")? as u32;
                let proposals = num(fields.next(), "props", "props=<u32>")? as u32;
                let unacked = num(fields.next(), "unacked", "unacked=<u32>")? as u32;
                let abandoned = num(fields.next(), "abandoned", "abandoned=<u32>")? as u32;
                let dead_field = expect_field(fields.next(), "dead", "dead=<edges>")?;
                let mut dead = Vec::new();
                if !dead_field.is_empty() {
                    for entry in dead_field.split(',') {
                        dead.push(parse_edge(entry)?);
                    }
                }
                let bytes_tx = num(fields.next(), "tx", "tx=<u64>")?;
                let bytes_rx = num(fields.next(), "rx", "rx=<u64>")?;
                let frames_tx = num(fields.next(), "ftx", "ftx=<u64>")?;
                let frames_rx = num(fields.next(), "frx", "frx=<u64>")?;
                let reconnects = num(fields.next(), "rc", "rc=<u64>")?;
                let rtt_us = num(fields.next(), "rtt", "rtt=<u64>")?;
                Packet::Status(NodeStatus {
                    from,
                    tick,
                    live,
                    proposals,
                    unacked,
                    abandoned,
                    dead,
                    bytes_tx,
                    bytes_rx,
                    frames_tx,
                    frames_rx,
                    reconnects,
                    rtt_us,
                })
            }
            "halt" => {
                let verdict = expect_field(fields.next(), "verdict", "verdict=<token>")?;
                // Tokens are lower-case words with `:` separators; anything
                // else is a mangled frame (keeps decoding canonical).
                if verdict.is_empty()
                    || !verdict
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c == ':' || c == '_')
                {
                    return Err(bad(verdict, "a verdict token like undecided:deadline"));
                }
                Packet::Halt {
                    verdict: verdict.to_string(),
                }
            }
            _ => return Err(bad(
                tag,
                "a packet tag: data, ack, syncreq, syncresp, hello, ping, decided, status or halt",
            )),
        };
        if let Some(extra) = fields.next() {
            return Err(bad(extra, "end of frame"));
        }
        Ok(packet)
    }
}

/// A marketplace event kind carried by [`ServiceRequest::Mutate`]: which
/// of a resident structure's toggles to flip. The server maps it onto the
/// delta vocabulary of §4.2.3/§6 — `Accept`/`Cancel` toggle a trust-grant
/// waiver set, `Post`/`Expire` toggle an indemnity's edge split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceOp {
    /// A trust grant takes effect (clause-2 waivers switch on).
    Accept,
    /// The trust grant is withdrawn (waivers switch off).
    Cancel,
    /// An indemnity is posted (buyer-side edges split away).
    Post,
    /// The indemnity expires (edges restored).
    Expire,
}

impl ServiceOp {
    /// The canonical wire token.
    pub fn token(&self) -> &'static str {
        match self {
            ServiceOp::Accept => "accept",
            ServiceOp::Cancel => "cancel",
            ServiceOp::Post => "post",
            ServiceOp::Expire => "expire",
        }
    }

    fn from_token(s: &str) -> Result<Self, CodecError> {
        match s {
            "accept" => Ok(ServiceOp::Accept),
            "cancel" => Ok(ServiceOp::Cancel),
            "post" => Ok(ServiceOp::Post),
            "expire" => Ok(ServiceOp::Expire),
            _ => Err(bad(s, "an op: accept, cancel, post or expire")),
        }
    }
}

/// Why the analysis server refused a request. Carried by
/// [`ServiceReply::Rejected`]; every variant is *typed shed load* — the
/// client learns exactly which admission-control rung it fell off, rather
/// than seeing a dropped connection or an unbounded queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The request queue is at capacity (backpressure, not buffering).
    Overloaded,
    /// The connection exhausted its token-bucket quota.
    Quota,
    /// The server is draining for shutdown and admits no new work.
    Draining,
    /// The frame parsed but the request is semantically malformed
    /// (unparseable spec, out-of-range slot, …).
    Malformed,
    /// The named resident structure does not exist.
    UnknownStructure,
}

impl RejectReason {
    /// The canonical wire token.
    pub fn token(&self) -> &'static str {
        match self {
            RejectReason::Overloaded => "overloaded",
            RejectReason::Quota => "quota",
            RejectReason::Draining => "draining",
            RejectReason::Malformed => "malformed",
            RejectReason::UnknownStructure => "unknown_structure",
        }
    }

    fn from_token(s: &str) -> Result<Self, CodecError> {
        match s {
            "overloaded" => Ok(RejectReason::Overloaded),
            "quota" => Ok(RejectReason::Quota),
            "draining" => Ok(RejectReason::Draining),
            "malformed" => Ok(RejectReason::Malformed),
            "unknown_structure" => Ok(RejectReason::UnknownStructure),
            _ => Err(bad(
                s,
                "a reject reason: overloaded, quota, draining, malformed or unknown_structure",
            )),
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// A client→server frame of the analysis service. Every request carries a
/// client-chosen `seq`, echoed verbatim in the matching reply, so clients
/// can pipeline a window of requests and correlate replies without
/// assuming cross-structure ordering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceRequest {
    /// Feasibility verdict of resident structure `id` in its current
    /// mutation state.
    Analyze {
        /// Client-chosen correlation number, echoed in the reply.
        seq: u64,
        /// The resident structure.
        id: u32,
    },
    /// One-shot analysis of an inline spec (the `spec=` tail carries the
    /// spec language source *verbatim* — semicolons and newlines included,
    /// which the length-prefixed frame layer permits).
    AnalyzeSpec {
        /// Client-chosen correlation number, echoed in the reply.
        seq: u64,
        /// Spec-language source text.
        spec: String,
    },
    /// Applies one marketplace event to resident structure `id`:
    /// `op` on the structure's `slot`-th trust pair
    /// (accept/cancel) or deal (post/expire), then reports the
    /// incrementally-maintained verdict.
    Mutate {
        /// Client-chosen correlation number, echoed in the reply.
        seq: u64,
        /// The resident structure.
        id: u32,
        /// Which toggle to flip.
        op: ServiceOp,
        /// Trust-pair index (accept/cancel) or deal index (post/expire).
        slot: u32,
    },
    /// The streaming sibling of [`Mutate`](Self::Mutate): applies one
    /// marketplace event to resident structure `id` through its resident
    /// delta analyzer (no whole-graph replacement) and is answered with
    /// an [`EventVerdict`](ServiceReply::EventVerdict) carrying the
    /// structure's running verdict-stream hash. Unlike `mutate`, `id` is
    /// a u64 addressing the growable population: a `post` on an unknown
    /// id below the server's admission cap admits a fresh structure.
    Event {
        /// Client-chosen correlation number, echoed in the reply.
        seq: u64,
        /// The resident (or, for `post`, to-be-admitted) structure.
        id: u64,
        /// Which toggle to flip.
        op: ServiceOp,
        /// Trust-pair index (accept/cancel) or deal index (post/expire).
        slot: u32,
    },
    /// Server counters snapshot.
    Stats {
        /// Client-chosen correlation number, echoed in the reply.
        seq: u64,
    },
}

impl ServiceRequest {
    /// The request's correlation number.
    pub fn seq(&self) -> u64 {
        match self {
            ServiceRequest::Analyze { seq, .. }
            | ServiceRequest::AnalyzeSpec { seq, .. }
            | ServiceRequest::Mutate { seq, .. }
            | ServiceRequest::Event { seq, .. }
            | ServiceRequest::Stats { seq } => *seq,
        }
    }

    /// Encodes the request as its canonical wire frame;
    /// [`from_wire`](Self::from_wire) inverts it exactly.
    pub fn to_wire(&self) -> String {
        match self {
            ServiceRequest::Analyze { seq, id } => format!("analyze;seq={seq};id={id}"),
            ServiceRequest::AnalyzeSpec { seq, spec } => {
                format!("analyzespec;seq={seq};spec={spec}")
            }
            ServiceRequest::Mutate { seq, id, op, slot } => {
                format!("mutate;seq={seq};id={id};op={};slot={slot}", op.token())
            }
            ServiceRequest::Event { seq, id, op, slot } => {
                format!("event;seq={seq};id={id};op={};slot={slot}", op.token())
            }
            ServiceRequest::Stats { seq } => format!("stats;seq={seq}"),
        }
    }

    /// Decodes a frame produced by [`to_wire`](Self::to_wire). Malformed
    /// frames are typed [`CodecError`]s, never panics — the server turns
    /// them into [`RejectReason::Malformed`] or a dropped connection.
    pub fn from_wire(frame: &str) -> Result<Self, CodecError> {
        // `analyzespec` carries a verbatim tail that may itself contain
        // `;`, so it is peeled off before the field-by-field path.
        if let Some(rest) = frame.strip_prefix("analyzespec;") {
            let rest = rest
                .strip_prefix("seq=")
                .ok_or_else(|| bad(rest, "seq=<u64>"))?;
            let (seq, rest) = rest
                .split_once(';')
                .ok_or_else(|| bad(rest, "seq=<u64>;spec=<source>"))?;
            let seq = seq.parse().map_err(|_| bad(seq, "a u64 sequence number"))?;
            let spec = rest
                .strip_prefix("spec=")
                .ok_or_else(|| bad(rest, "spec=<source>"))?;
            return Ok(ServiceRequest::AnalyzeSpec {
                seq,
                spec: spec.to_string(),
            });
        }
        let mut fields = frame.split(';');
        let tag = fields.next().unwrap_or_default();
        let request = match tag {
            "analyze" => {
                let seq = expect_field(fields.next(), "seq", "seq=<u64>")?;
                let id = expect_field(fields.next(), "id", "id=<u32>")?;
                ServiceRequest::Analyze {
                    seq: seq.parse().map_err(|_| bad(seq, "a u64 sequence number"))?,
                    id: id.parse().map_err(|_| bad(id, "a u32 structure id"))?,
                }
            }
            "mutate" => {
                let seq = expect_field(fields.next(), "seq", "seq=<u64>")?;
                let id = expect_field(fields.next(), "id", "id=<u32>")?;
                let op = expect_field(fields.next(), "op", "op=<accept|cancel|post|expire>")?;
                let slot = expect_field(fields.next(), "slot", "slot=<u32>")?;
                ServiceRequest::Mutate {
                    seq: seq.parse().map_err(|_| bad(seq, "a u64 sequence number"))?,
                    id: id.parse().map_err(|_| bad(id, "a u32 structure id"))?,
                    op: ServiceOp::from_token(op)?,
                    slot: slot.parse().map_err(|_| bad(slot, "a u32 slot index"))?,
                }
            }
            "event" => {
                let seq = expect_field(fields.next(), "seq", "seq=<u64>")?;
                let id = expect_field(fields.next(), "id", "id=<u64>")?;
                let op = expect_field(fields.next(), "op", "op=<accept|cancel|post|expire>")?;
                let slot = expect_field(fields.next(), "slot", "slot=<u32>")?;
                ServiceRequest::Event {
                    seq: seq.parse().map_err(|_| bad(seq, "a u64 sequence number"))?,
                    id: id.parse().map_err(|_| bad(id, "a u64 structure id"))?,
                    op: ServiceOp::from_token(op)?,
                    slot: slot.parse().map_err(|_| bad(slot, "a u32 slot index"))?,
                }
            }
            "stats" => {
                let seq = expect_field(fields.next(), "seq", "seq=<u64>")?;
                ServiceRequest::Stats {
                    seq: seq.parse().map_err(|_| bad(seq, "a u64 sequence number"))?,
                }
            }
            _ => {
                return Err(bad(
                    tag,
                    "a request tag: analyze, analyzespec, mutate, event or stats",
                ))
            }
        };
        if let Some(extra) = fields.next() {
            return Err(bad(extra, "end of frame"));
        }
        Ok(request)
    }
}

/// A point-in-time server counters snapshot carried by
/// [`ServiceReply::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Resident structures currently served.
    pub structures: u32,
    /// Requests admitted and answered with a verdict or stats reply.
    pub accepted: u64,
    /// Requests shed with a typed [`RejectReason`] (all rungs summed).
    pub rejected: u64,
    /// Requests sitting in the worker queue right now.
    pub queue_depth: u32,
    /// Connections currently open.
    pub connections: u32,
    /// Analysis-cache hits served so far.
    pub cache_hits: u64,
    /// Analysis-cache misses (fresh reductions) so far.
    pub cache_misses: u64,
}

/// A server→client frame of the analysis service. `seq` always echoes the
/// request it answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceReply {
    /// The feasibility verdict for an `Analyze`, `AnalyzeSpec` or
    /// (post-application) `Mutate` request.
    Verdict {
        /// Echo of the request's correlation number.
        seq: u64,
        /// Whether the structure reduces to zero edges (§4.2.4).
        feasible: bool,
        /// Edges surviving at the impasse (0 iff feasible).
        remaining: u32,
        /// Red edges among the survivors.
        remaining_red: u32,
    },
    /// The verdict for an [`Event`](ServiceRequest::Event) request,
    /// answered from the structure's resident delta analyzer. Besides the
    /// verdict it echoes the server's running order-sensitive FNV fold
    /// over this structure's `(feasible, remaining)` verdict stream —
    /// clients replaying the same schedule off-clock compare their local
    /// fold against the last `hash` seen to audit agreement.
    EventVerdict {
        /// Echo of the request's correlation number.
        seq: u64,
        /// Whether the structure reduces to zero edges (§4.2.4).
        feasible: bool,
        /// Edges surviving at the impasse (0 iff feasible).
        remaining: u32,
        /// The structure's verdict-stream hash *after* folding in this
        /// verdict (decimal u64 on the wire).
        hash: u64,
    },
    /// Server counters snapshot.
    Stats {
        /// Echo of the request's correlation number.
        seq: u64,
        /// The snapshot.
        stats: ServiceStats,
    },
    /// Typed shed load: the request was refused at an admission-control
    /// rung, and nothing about the server's resident state changed.
    Rejected {
        /// Echo of the request's correlation number.
        seq: u64,
        /// Which rung refused it.
        reason: RejectReason,
    },
}

impl ServiceReply {
    /// The echoed correlation number.
    pub fn seq(&self) -> u64 {
        match self {
            ServiceReply::Verdict { seq, .. }
            | ServiceReply::EventVerdict { seq, .. }
            | ServiceReply::Stats { seq, .. }
            | ServiceReply::Rejected { seq, .. } => *seq,
        }
    }

    /// Encodes the reply as its canonical wire frame;
    /// [`from_wire`](Self::from_wire) inverts it exactly.
    pub fn to_wire(&self) -> String {
        match self {
            ServiceReply::Verdict {
                seq,
                feasible,
                remaining,
                remaining_red,
            } => format!(
                "verdict;seq={seq};feasible={};remaining={remaining};red={remaining_red}",
                u8::from(*feasible)
            ),
            ServiceReply::EventVerdict {
                seq,
                feasible,
                remaining,
                hash,
            } => format!(
                "everdict;seq={seq};feasible={};remaining={remaining};hash={hash}",
                u8::from(*feasible)
            ),
            ServiceReply::Stats { seq, stats } => format!(
                "svcstats;seq={seq};structures={};accepted={};rejected={};queue={};conns={};hits={};misses={}",
                stats.structures,
                stats.accepted,
                stats.rejected,
                stats.queue_depth,
                stats.connections,
                stats.cache_hits,
                stats.cache_misses
            ),
            ServiceReply::Rejected { seq, reason } => {
                format!("rejected;seq={seq};reason={}", reason.token())
            }
        }
    }

    /// Decodes a frame produced by [`to_wire`](Self::to_wire).
    pub fn from_wire(frame: &str) -> Result<Self, CodecError> {
        fn num(
            field: Option<&str>,
            key: &'static str,
            expected: &'static str,
        ) -> Result<u64, CodecError> {
            let v = expect_field(field, key, expected)?;
            v.parse().map_err(|_| bad(v, "a non-negative number"))
        }
        let mut fields = frame.split(';');
        let tag = fields.next().unwrap_or_default();
        let reply = match tag {
            "verdict" => {
                let seq = num(fields.next(), "seq", "seq=<u64>")?;
                let feasible = expect_field(fields.next(), "feasible", "feasible=<0|1>")?;
                let feasible = match feasible {
                    "0" => false,
                    "1" => true,
                    _ => return Err(bad(feasible, "feasible 0 or 1")),
                };
                let remaining = num(fields.next(), "remaining", "remaining=<u32>")? as u32;
                let remaining_red = num(fields.next(), "red", "red=<u32>")? as u32;
                ServiceReply::Verdict {
                    seq,
                    feasible,
                    remaining,
                    remaining_red,
                }
            }
            "everdict" => {
                let seq = num(fields.next(), "seq", "seq=<u64>")?;
                let feasible = expect_field(fields.next(), "feasible", "feasible=<0|1>")?;
                let feasible = match feasible {
                    "0" => false,
                    "1" => true,
                    _ => return Err(bad(feasible, "feasible 0 or 1")),
                };
                let remaining = num(fields.next(), "remaining", "remaining=<u32>")? as u32;
                let hash = num(fields.next(), "hash", "hash=<u64>")?;
                ServiceReply::EventVerdict {
                    seq,
                    feasible,
                    remaining,
                    hash,
                }
            }
            "svcstats" => {
                let seq = num(fields.next(), "seq", "seq=<u64>")?;
                let structures = num(fields.next(), "structures", "structures=<u32>")? as u32;
                let accepted = num(fields.next(), "accepted", "accepted=<u64>")?;
                let rejected = num(fields.next(), "rejected", "rejected=<u64>")?;
                let queue_depth = num(fields.next(), "queue", "queue=<u32>")? as u32;
                let connections = num(fields.next(), "conns", "conns=<u32>")? as u32;
                let cache_hits = num(fields.next(), "hits", "hits=<u64>")?;
                let cache_misses = num(fields.next(), "misses", "misses=<u64>")?;
                ServiceReply::Stats {
                    seq,
                    stats: ServiceStats {
                        structures,
                        accepted,
                        rejected,
                        queue_depth,
                        connections,
                        cache_hits,
                        cache_misses,
                    },
                }
            }
            "rejected" => {
                let seq = num(fields.next(), "seq", "seq=<u64>")?;
                let reason = expect_field(fields.next(), "reason", "reason=<token>")?;
                ServiceReply::Rejected {
                    seq,
                    reason: RejectReason::from_token(reason)?,
                }
            }
            _ => {
                return Err(bad(
                    tag,
                    "a reply tag: verdict, everdict, svcstats or rejected",
                ))
            }
        };
        if let Some(extra) = fields.next() {
            return Err(bad(extra, "end of frame"));
        }
        Ok(reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Packet> {
        vec![
            Packet::Data {
                seq: 17,
                msg: Message {
                    from: AgentId::new(3),
                    edge: EdgeId::new(2),
                },
            },
            Packet::Ack { seq: 0 },
            Packet::SyncReq {
                from: AgentId::new(5),
            },
            Packet::SyncResp {
                from: AgentId::new(1),
                dead: vec![],
            },
            Packet::SyncResp {
                from: AgentId::new(1),
                dead: vec![EdgeId::new(0), EdgeId::new(9)],
            },
            Packet::Hello {
                from: AgentId::new(4),
            },
            Packet::Ping { tick: 12 },
            Packet::Decided {
                from: AgentId::new(2),
                edge: EdgeId::new(7),
                rule: Rule::CommitmentFringe,
            },
            Packet::Decided {
                from: AgentId::new(0),
                edge: EdgeId::new(3),
                rule: Rule::ConjunctionFringe,
            },
            Packet::Status(NodeStatus {
                from: AgentId::new(1),
                tick: 42,
                live: 3,
                proposals: 0,
                unacked: 1,
                abandoned: 0,
                dead: vec![EdgeId::new(1), EdgeId::new(2)],
                bytes_tx: 1234,
                bytes_rx: 987,
                frames_tx: 17,
                frames_rx: 15,
                reconnects: 0,
                rtt_us: 137,
            }),
            Packet::Status(NodeStatus::empty(AgentId::new(0))),
            Packet::Halt {
                verdict: "undecided:deadline".to_string(),
            },
            Packet::Halt {
                verdict: "feasible".to_string(),
            },
        ]
    }

    #[test]
    fn every_packet_round_trips() {
        for packet in samples() {
            let frame = packet.to_wire();
            assert_eq!(Packet::from_wire(&frame).unwrap(), packet, "{frame}");
        }
    }

    #[test]
    fn wire_frames_are_canonical() {
        assert_eq!(
            samples()[0].to_wire(),
            "data;seq=17;from=a3;edge=e2".to_string()
        );
        assert_eq!(samples()[3].to_wire(), "syncresp;from=a1;dead=");
        assert_eq!(samples()[5].to_wire(), "hello;from=a4");
        assert_eq!(
            samples()[7].to_wire(),
            "decided;from=a2;edge=e7;rule=1".to_string()
        );
        assert_eq!(
            samples()[9].to_wire(),
            "status;from=a1;tick=42;live=3;props=0;unacked=1;abandoned=0;\
             dead=e1,e2;tx=1234;rx=987;ftx=17;frx=15;rc=0;rtt=137"
        );
        assert_eq!(samples()[11].to_wire(), "halt;verdict=undecided:deadline");
    }

    /// The satellite regression: *every* truncation of a valid frame
    /// either yields a typed error — never a panic — or happens to be a
    /// shorter frame that is itself canonical (e.g. `ack;seq=17` cut to
    /// `ack;seq=1`): decoding is total and canonical on its domain.
    #[test]
    fn truncated_frames_yield_typed_errors() {
        for packet in samples() {
            let frame = packet.to_wire();
            for cut in 0..frame.len() {
                let truncated = &frame[..cut];
                match Packet::from_wire(truncated) {
                    Err(err) => assert!(!err.to_string().is_empty()),
                    Ok(p) => assert_eq!(p.to_wire(), truncated, "non-canonical decode"),
                }
            }
        }
    }

    #[test]
    fn garbage_and_trailing_fields_are_rejected() {
        for frame in [
            "",
            "nonsense",
            "data",
            "data;seq=x;from=a1;edge=e1",
            "data;seq=1;from=b1;edge=e1",
            "data;seq=1;from=a1;edge=1",
            "data;seq=1;from=a1;edge=e1;extra=1",
            "ack;seq=",
            "syncreq;from=",
            "syncresp;from=a1;dead=x2",
            "hello;from=e1",
            "hello;from=a1;extra=1",
            "ping;tick=abc",
            "decided;from=a1;edge=e1;rule=3",
            "decided;from=a1;edge=e1",
            "status;from=a1",
            "status;from=a1;tick=1;live=2;props=0;unacked=0;abandoned=0;dead=e1,;tx=0;rx=0;ftx=0;frx=0;rc=0;rtt=0",
            "halt;verdict=",
            "halt;verdict=Feasible",
            "halt;verdict=ok;extra=1",
        ] {
            assert!(Packet::from_wire(frame).is_err(), "{frame:?}");
        }
    }

    fn request_samples() -> Vec<ServiceRequest> {
        vec![
            ServiceRequest::Analyze { seq: 0, id: 0 },
            ServiceRequest::Analyze { seq: 17, id: 3 },
            ServiceRequest::AnalyzeSpec {
                seq: 5,
                spec: String::new(),
            },
            ServiceRequest::AnalyzeSpec {
                seq: 9,
                // Semicolons and newlines are legal in the verbatim tail.
                spec: "exchange demo\nprincipal c consumer; deal d\n".to_string(),
            },
            ServiceRequest::Mutate {
                seq: 1,
                id: 2,
                op: ServiceOp::Accept,
                slot: 0,
            },
            ServiceRequest::Mutate {
                seq: u64::MAX,
                id: u32::MAX,
                op: ServiceOp::Expire,
                slot: 41,
            },
            ServiceRequest::Event {
                seq: 2,
                id: 5,
                op: ServiceOp::Post,
                slot: 3,
            },
            ServiceRequest::Event {
                seq: u64::MAX,
                // Event ids are u64: the growable population addresses
                // structures past the u32 boot-time index space.
                id: u64::from(u32::MAX) + 7,
                op: ServiceOp::Cancel,
                slot: 0,
            },
            ServiceRequest::Stats { seq: 7 },
        ]
    }

    fn reply_samples() -> Vec<ServiceReply> {
        vec![
            ServiceReply::Verdict {
                seq: 17,
                feasible: true,
                remaining: 0,
                remaining_red: 0,
            },
            ServiceReply::Verdict {
                seq: 18,
                feasible: false,
                remaining: 9,
                remaining_red: 4,
            },
            ServiceReply::EventVerdict {
                seq: 21,
                feasible: true,
                remaining: 0,
                hash: 0xcbf2_9ce4_8422_2325,
            },
            ServiceReply::EventVerdict {
                seq: 22,
                feasible: false,
                remaining: 11,
                hash: u64::MAX,
            },
            ServiceReply::Stats {
                seq: 7,
                stats: ServiceStats {
                    structures: 64,
                    accepted: 100_000,
                    rejected: 250,
                    queue_depth: 12,
                    connections: 8,
                    cache_hits: 90_000,
                    cache_misses: 64,
                },
            },
            ServiceReply::Rejected {
                seq: 3,
                reason: RejectReason::Overloaded,
            },
            ServiceReply::Rejected {
                seq: 4,
                reason: RejectReason::Quota,
            },
            ServiceReply::Rejected {
                seq: 5,
                reason: RejectReason::Draining,
            },
            ServiceReply::Rejected {
                seq: 6,
                reason: RejectReason::Malformed,
            },
            ServiceReply::Rejected {
                seq: 8,
                reason: RejectReason::UnknownStructure,
            },
        ]
    }

    #[test]
    fn every_service_frame_round_trips() {
        for request in request_samples() {
            let frame = request.to_wire();
            assert_eq!(
                ServiceRequest::from_wire(&frame).unwrap(),
                request,
                "{frame}"
            );
        }
        for reply in reply_samples() {
            let frame = reply.to_wire();
            assert_eq!(ServiceReply::from_wire(&frame).unwrap(), reply, "{frame}");
        }
    }

    #[test]
    fn service_frames_are_canonical() {
        assert_eq!(request_samples()[1].to_wire(), "analyze;seq=17;id=3");
        assert_eq!(
            request_samples()[4].to_wire(),
            "mutate;seq=1;id=2;op=accept;slot=0"
        );
        assert_eq!(
            request_samples()[6].to_wire(),
            "event;seq=2;id=5;op=post;slot=3"
        );
        assert_eq!(
            request_samples()[7].to_wire(),
            "event;seq=18446744073709551615;id=4294967302;op=cancel;slot=0"
        );
        assert_eq!(request_samples()[8].to_wire(), "stats;seq=7");
        assert_eq!(
            reply_samples()[1].to_wire(),
            "verdict;seq=18;feasible=0;remaining=9;red=4"
        );
        assert_eq!(
            reply_samples()[2].to_wire(),
            "everdict;seq=21;feasible=1;remaining=0;hash=14695981039346656037"
        );
        assert_eq!(
            reply_samples()[4].to_wire(),
            "svcstats;seq=7;structures=64;accepted=100000;rejected=250;queue=12;conns=8;hits=90000;misses=64"
        );
        assert_eq!(
            reply_samples()[5].to_wire(),
            "rejected;seq=3;reason=overloaded"
        );
    }

    #[test]
    fn service_seq_accessors_echo() {
        for request in request_samples() {
            let seq = request.seq();
            assert!(request.to_wire().contains(&format!("seq={seq}")));
        }
        for reply in reply_samples() {
            let seq = reply.seq();
            assert!(reply.to_wire().contains(&format!("seq={seq}")));
        }
    }

    #[test]
    fn malformed_service_frames_are_typed_errors() {
        for frame in [
            "",
            "nonsense",
            "analyze",
            "analyze;seq=x;id=1",
            "analyze;seq=1;id=",
            "analyze;seq=1;id=1;extra=1",
            "analyzespec",
            "analyzespec;seq=1",
            "analyzespec;seq=x;spec=a",
            "analyzespec;seq=1;nospec=a",
            "mutate;seq=1;id=1;op=explode;slot=0",
            "mutate;seq=1;id=1;op=accept",
            "event",
            "event;seq=x;id=1;op=post;slot=0",
            "event;seq=1;id=-2;op=post;slot=0",
            "event;seq=1;id=1;op=explode;slot=0",
            "event;seq=1;id=1;op=post",
            "event;seq=1;id=1;op=post;slot=0;extra=1",
            "stats;seq=",
            "stats;seq=1;extra=1",
        ] {
            assert!(ServiceRequest::from_wire(frame).is_err(), "{frame:?}");
        }
        for frame in [
            "",
            "verdict;seq=1;feasible=2;remaining=0;red=0",
            "verdict;seq=1;feasible=1",
            "everdict;seq=1;feasible=2;remaining=0;hash=0",
            "everdict;seq=1;feasible=1;remaining=0",
            "everdict;seq=1;feasible=1;remaining=0;hash=x",
            "everdict;seq=1;feasible=1;remaining=0;hash=0;extra=1",
            "rejected;seq=1;reason=tired",
            "rejected;seq=1",
            "svcstats;seq=1;structures=1",
            "verdict;seq=1;feasible=1;remaining=0;red=0;extra=1",
        ] {
            assert!(ServiceReply::from_wire(frame).is_err(), "{frame:?}");
        }
    }

    /// Same totality property as the packet codec: any truncation of a
    /// valid service frame either errors with a typed [`CodecError`] or is
    /// itself canonical.
    #[test]
    fn truncated_service_frames_yield_typed_errors() {
        for frame in request_samples()
            .iter()
            .map(ServiceRequest::to_wire)
            .collect::<Vec<_>>()
        {
            for cut in 0..frame.len() {
                let truncated = &frame[..cut];
                match ServiceRequest::from_wire(truncated) {
                    Err(err) => assert!(!err.to_string().is_empty()),
                    Ok(r) => assert_eq!(r.to_wire(), truncated, "non-canonical decode"),
                }
            }
        }
        for frame in reply_samples()
            .iter()
            .map(ServiceReply::to_wire)
            .collect::<Vec<_>>()
        {
            for cut in 0..frame.len() {
                let truncated = &frame[..cut];
                match ServiceReply::from_wire(truncated) {
                    Err(err) => assert!(!err.to_string().is_empty()),
                    Ok(r) => assert_eq!(r.to_wire(), truncated, "non-canonical decode"),
                }
            }
        }
    }
}
