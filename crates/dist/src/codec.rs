//! The resilient protocol's wire codec: every packet crosses the faulty
//! network as a canonical single-line text frame.
//!
//! Routing traffic through an explicit codec is what makes the corruption
//! fault class ([`FaultPlan::with_corrupt_per_mille`]) meaningful: a
//! corrupted frame arrives truncated, [`Packet::from_wire`] rejects it
//! with a typed [`CodecError`] (never a panic), and the engine treats the
//! packet as lost — the acknowledgement/retransmission machinery absorbs
//! it exactly like a drop. The codec is lossless, so faultless resilient
//! runs stay byte-identical to the reliable engine.
//!
//! Frame shapes (mirroring the [`FaultPlan`] and
//! [`DistOutcome`](crate::DistOutcome) text codecs):
//!
//! * `data;seq=5;from=a3;edge=e2` — a removal announcement under a
//!   sequence number;
//! * `ack;seq=5` — its acknowledgement;
//! * `syncreq;from=a3` — a restarted node asking a neighbour for its
//!   dead-edge view;
//! * `syncresp;from=a3;dead=e1,e4` — the neighbour's answer (`dead=` may
//!   be empty).
//!
//! [`FaultPlan`]: crate::FaultPlan
//! [`FaultPlan::with_corrupt_per_mille`]: crate::FaultPlan::with_corrupt_per_mille

use crate::node::Message;
use std::fmt;
use trustseq_core::EdgeId;
use trustseq_model::AgentId;

/// A resilient-protocol packet. `Data` carries the base protocol's
/// removal announcement under a sequence number; the rest is the
/// reliability machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet {
    /// A reliable removal announcement.
    Data {
        /// Sender-side sequence number (index into the announcement log).
        seq: u64,
        /// The announced removal.
        msg: Message,
    },
    /// Acknowledges the `Data` packet with the same sequence number.
    Ack {
        /// The acknowledged sequence number.
        seq: u64,
    },
    /// A restarted node's request for a neighbour's dead-edge view.
    SyncReq {
        /// The requester.
        from: AgentId,
    },
    /// The neighbour's dead-edge view.
    SyncResp {
        /// The responding neighbour.
        from: AgentId,
        /// Every edge the responder knows removed.
        dead: Vec<EdgeId>,
    },
}

/// Why a wire frame failed to decode. Carries the offending fragment and
/// what the codec expected there, like
/// [`FaultPlanParseError`](crate::FaultPlanParseError).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// The offending fragment (possibly the whole frame).
    pub fragment: String,
    /// What was expected.
    pub expected: &'static str,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bad packet frame fragment {:?}: expected {}",
            self.fragment, self.expected
        )
    }
}

impl std::error::Error for CodecError {}

fn bad(fragment: &str, expected: &'static str) -> CodecError {
    CodecError {
        fragment: fragment.to_string(),
        expected,
    }
}

fn parse_agent(s: &str) -> Result<AgentId, CodecError> {
    s.strip_prefix('a')
        .and_then(|n| n.parse::<u32>().ok())
        .map(AgentId::new)
        .ok_or_else(|| bad(s, "an agent id like a3"))
}

fn parse_edge(s: &str) -> Result<EdgeId, CodecError> {
    s.strip_prefix('e')
        .and_then(|n| n.parse::<u32>().ok())
        .map(EdgeId::new)
        .ok_or_else(|| bad(s, "an edge id like e2"))
}

/// Splits `field` as `key=value` and checks the key.
fn expect_field<'a>(
    field: Option<&'a str>,
    key: &'static str,
    expected: &'static str,
) -> Result<&'a str, CodecError> {
    let field = field.ok_or_else(|| bad("", expected))?;
    match field.split_once('=') {
        Some((k, v)) if k == key => Ok(v),
        _ => Err(bad(field, expected)),
    }
}

impl Packet {
    /// Encodes the packet as its canonical wire frame.
    /// [`Packet::from_wire`] inverts it exactly (round-trip is tested in
    /// this module and property-tested in `tests/resilience.rs`).
    pub fn to_wire(&self) -> String {
        use fmt::Write as _;
        match self {
            Packet::Data { seq, msg } => {
                format!("data;seq={seq};from={};edge={}", msg.from, msg.edge)
            }
            Packet::Ack { seq } => format!("ack;seq={seq}"),
            Packet::SyncReq { from } => format!("syncreq;from={from}"),
            Packet::SyncResp { from, dead } => {
                let mut out = format!("syncresp;from={from};dead=");
                for (i, e) in dead.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{e}");
                }
                out
            }
        }
    }

    /// Decodes a frame produced by [`Packet::to_wire`].
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] naming the first malformed fragment — a
    /// truncated or otherwise mangled frame is a typed error, never a
    /// panic.
    pub fn from_wire(frame: &str) -> Result<Self, CodecError> {
        let mut fields = frame.split(';');
        let tag = fields.next().unwrap_or_default();
        let packet = match tag {
            "data" => {
                let seq = expect_field(fields.next(), "seq", "seq=<u64>")?;
                let from = expect_field(fields.next(), "from", "from=<agent>")?;
                let edge = expect_field(fields.next(), "edge", "edge=<edge>")?;
                Packet::Data {
                    seq: seq.parse().map_err(|_| bad(seq, "a u64 sequence number"))?,
                    msg: Message {
                        from: parse_agent(from)?,
                        edge: parse_edge(edge)?,
                    },
                }
            }
            "ack" => {
                let seq = expect_field(fields.next(), "seq", "seq=<u64>")?;
                Packet::Ack {
                    seq: seq.parse().map_err(|_| bad(seq, "a u64 sequence number"))?,
                }
            }
            "syncreq" => {
                let from = expect_field(fields.next(), "from", "from=<agent>")?;
                Packet::SyncReq {
                    from: parse_agent(from)?,
                }
            }
            "syncresp" => {
                let from = expect_field(fields.next(), "from", "from=<agent>")?;
                let dead = expect_field(fields.next(), "dead", "dead=<edges>")?;
                let mut edges = Vec::new();
                if !dead.is_empty() {
                    // Strict: a trailing or doubled comma is a mangled
                    // frame, not an empty entry — keeps decoding canonical
                    // (every accepted frame re-encodes to itself).
                    for entry in dead.split(',') {
                        edges.push(parse_edge(entry)?);
                    }
                }
                Packet::SyncResp {
                    from: parse_agent(from)?,
                    dead: edges,
                }
            }
            _ => return Err(bad(tag, "a packet tag: data, ack, syncreq or syncresp")),
        };
        if let Some(extra) = fields.next() {
            return Err(bad(extra, "end of frame"));
        }
        Ok(packet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Packet> {
        vec![
            Packet::Data {
                seq: 17,
                msg: Message {
                    from: AgentId::new(3),
                    edge: EdgeId::new(2),
                },
            },
            Packet::Ack { seq: 0 },
            Packet::SyncReq {
                from: AgentId::new(5),
            },
            Packet::SyncResp {
                from: AgentId::new(1),
                dead: vec![],
            },
            Packet::SyncResp {
                from: AgentId::new(1),
                dead: vec![EdgeId::new(0), EdgeId::new(9)],
            },
        ]
    }

    #[test]
    fn every_packet_round_trips() {
        for packet in samples() {
            let frame = packet.to_wire();
            assert_eq!(Packet::from_wire(&frame).unwrap(), packet, "{frame}");
        }
    }

    #[test]
    fn wire_frames_are_canonical() {
        assert_eq!(
            samples()[0].to_wire(),
            "data;seq=17;from=a3;edge=e2".to_string()
        );
        assert_eq!(samples()[3].to_wire(), "syncresp;from=a1;dead=");
    }

    /// The satellite regression: *every* truncation of a valid frame
    /// either yields a typed error — never a panic — or happens to be a
    /// shorter frame that is itself canonical (e.g. `ack;seq=17` cut to
    /// `ack;seq=1`): decoding is total and canonical on its domain.
    #[test]
    fn truncated_frames_yield_typed_errors() {
        for packet in samples() {
            let frame = packet.to_wire();
            for cut in 0..frame.len() {
                let truncated = &frame[..cut];
                match Packet::from_wire(truncated) {
                    Err(err) => assert!(!err.to_string().is_empty()),
                    Ok(p) => assert_eq!(p.to_wire(), truncated, "non-canonical decode"),
                }
            }
        }
    }

    #[test]
    fn garbage_and_trailing_fields_are_rejected() {
        for frame in [
            "",
            "nonsense",
            "data",
            "data;seq=x;from=a1;edge=e1",
            "data;seq=1;from=b1;edge=e1",
            "data;seq=1;from=a1;edge=1",
            "data;seq=1;from=a1;edge=e1;extra=1",
            "ack;seq=",
            "syncreq;from=",
            "syncresp;from=a1;dead=x2",
        ] {
            assert!(Packet::from_wire(frame).is_err(), "{frame:?}");
        }
    }
}
