//! Distributed sequencing-graph reduction — §9's "fully distributed
//! approach, with each participant locally making decisions about the
//! feasibility and sequencing of its own parts of the transaction",
//! implemented as a round-based message-passing protocol.
//!
//! # How it works
//!
//! Every participant runs a [`Node`] that knows only its *local* slice of
//! the sequencing graph:
//!
//! * a principal owns its commitments and applies **rule #1** to them;
//! * the owner of a conjunction (principal or trusted component) applies
//!   **rule #2** to it;
//! * when a node removes an edge it sends [`EdgeRemoved`](Message) messages
//!   to exactly the parties whose future decisions the removal can affect
//!   (the other endpoint's owner and the principals sharing the
//!   conjunction).
//!
//! Because edges only ever die, a stale view is always *conservative*: a
//! node may delay a removal it could already make, but never makes an
//! unsound one — so the protocol converges to exactly the centralised
//! fixpoint (checked against [`trustseq_core::Reducer`] in the tests, and
//! property-tested on random topologies).
//!
//! # Example
//!
//! ```
//! use trustseq_core::fixtures;
//! use trustseq_dist::DistributedReduction;
//!
//! # fn main() -> Result<(), trustseq_core::CoreError> {
//! let (spec, _) = fixtures::example1();
//! let outcome = DistributedReduction::new(&spec)?.run();
//! assert!(outcome.feasible);
//! assert!(outcome.rounds >= 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod codec;
mod engine;
pub mod faults;
pub mod journal;
pub mod net;
mod node;
mod resilient;
pub mod supervise;
pub mod transport;

pub use codec::{
    CodecError, NodeStatus, Packet, RejectReason, ServiceOp, ServiceReply, ServiceRequest,
    ServiceStats,
};
pub use engine::{DistOutcome, DistRemoval, DistributedReduction, WireError};
pub use faults::{Crash, FaultPlan, FaultPlanParseError, Partition};
pub use journal::{Journal, JournalError, JournalEvent, NoopObserver, RunObserver};
pub use net::{encode_frame, Addr, FrameDecoder, FrameError, NetParseError, NetworkDescription};
pub use node::{Message, Node};
pub use resilient::{
    ConfigParseError, DistVerdict, ResilientConfig, ResilientOutcome, UndecidedReason,
};
pub use supervise::{
    decide, participants_and_edges, run_node, run_supervisor, NodeReport, SocketOutcome,
    SuperviseConfig, SuperviseError,
};
pub use transport::{DelayTransport, FaultyTransport, Transport, TransportStats};
