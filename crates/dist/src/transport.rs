//! Pluggable message transports for the distributed engine.
//!
//! The engine's round loop is generic over [`Transport`]: it hands the
//! transport every outbound message and asks it each round which messages
//! arrive. [`DelayTransport`] reproduces the original infallible in-memory
//! queue (including its exact xorshift delay sequence, so refactored runs
//! are byte-identical to the historical engine). [`FaultyTransport`]
//! consults a [`FaultPlan`](crate::FaultPlan) to drop, duplicate, delay and
//! partition traffic — the resilient engine runs over it.

use crate::faults::FaultPlan;
use std::sync::atomic::{AtomicU64, Ordering};
use trustseq_model::AgentId;

/// A round-synchronous message channel between participants.
///
/// `round` arguments use the engine's 1-based round counter. A message
/// sent in round *r* is never delivered before round *r + 1*.
pub trait Transport<M> {
    /// Accepts `message` from `from` to `to`, sent during `round`.
    fn send(&mut self, round: usize, from: AgentId, to: AgentId, message: M);

    /// Returns every message that arrives at the start of `round`, in
    /// delivery order, paired with its addressee.
    fn deliver(&mut self, round: usize) -> Vec<(AgentId, M)>;

    /// Messages accepted but not yet delivered or lost.
    fn in_flight(&self) -> usize;
}

/// The original reliable in-memory queue: every message arrives, delayed
/// 1..=`max_delay` rounds by a deterministic xorshift stream.
///
/// The delay sequence is bit-for-bit the one the pre-transport engine
/// drew, which keeps `run_with_delays` traces byte-identical across the
/// refactor (asserted in this module's tests and the chaos harness).
#[derive(Debug)]
pub struct DelayTransport<M> {
    rng_state: u64,
    max_delay: u64,
    queue: Vec<(usize, AgentId, M)>,
}

impl<M> DelayTransport<M> {
    /// A transport delaying every message 1..=`max_delay` rounds, drawn
    /// from `seed`.
    pub fn new(seed: u64, max_delay: u64) -> Self {
        DelayTransport {
            rng_state: seed | 1,
            max_delay: max_delay.max(1),
            queue: Vec::new(),
        }
    }

    fn next_delay(&mut self) -> usize {
        self.rng_state ^= self.rng_state << 13;
        self.rng_state ^= self.rng_state >> 7;
        self.rng_state ^= self.rng_state << 17;
        1 + (self.rng_state % self.max_delay) as usize
    }
}

impl<M> Transport<M> for DelayTransport<M> {
    fn send(&mut self, round: usize, _from: AgentId, to: AgentId, message: M) {
        let due = round + self.next_delay();
        self.queue.push((due, to, message));
    }

    fn deliver(&mut self, round: usize) -> Vec<(AgentId, M)> {
        let mut arrived = Vec::new();
        let mut still_flying = Vec::with_capacity(self.queue.len());
        for (due, to, msg) in self.queue.drain(..) {
            if due <= round {
                arrived.push((to, msg));
            } else {
                still_flying.push((due, to, msg));
            }
        }
        self.queue = still_flying;
        arrived
    }

    fn in_flight(&self) -> usize {
        self.queue.len()
    }
}

/// Counters of what a [`FaultyTransport`] did to the traffic.
///
/// This is a plain-data *snapshot*; the live counters inside the transport
/// are independent relaxed atomics (the same treatment `CacheStats` got),
/// so a snapshot taken while other threads hold references is per-field
/// torn-free and never blocks a sender.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// `send` calls accepted (before fault decisions).
    pub sent: usize,
    /// Transmissions dropped in flight by the plan.
    pub dropped: usize,
    /// Extra copies injected by duplication.
    pub duplicated: usize,
    /// Transmissions lost to a cut link at send time.
    pub cut: usize,
    /// Transmissions lost because the addressee was down on arrival.
    pub lost_to_down: usize,
}

/// Live counters behind [`TransportStats`]: one relaxed atomic per field.
#[derive(Debug, Default)]
struct AtomicTransportStats {
    sent: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    cut: AtomicU64,
    lost_to_down: AtomicU64,
}

impl AtomicTransportStats {
    fn snapshot(&self) -> TransportStats {
        TransportStats {
            sent: self.sent.load(Ordering::Relaxed) as usize,
            dropped: self.dropped.load(Ordering::Relaxed) as usize,
            duplicated: self.duplicated.load(Ordering::Relaxed) as usize,
            cut: self.cut.load(Ordering::Relaxed) as usize,
            lost_to_down: self.lost_to_down.load(Ordering::Relaxed) as usize,
        }
    }
}

/// A lossy transport driven by a [`FaultPlan`].
///
/// Each `send` call is one *transmission* with its own plan-decided fate:
/// it may be swallowed by a cut link (checked at send time), dropped in
/// flight, delayed extra rounds, or duplicated (the copy gets an
/// independent delay, so copies reorder against each other). Messages
/// arriving at a node that is down that round are lost — crash recovery
/// is the engine's job, not the network's.
#[derive(Debug)]
pub struct FaultyTransport<M> {
    plan: FaultPlan,
    queue: Vec<(usize, AgentId, AgentId, M)>,
    transmissions: u64,
    stats: AtomicTransportStats,
}

impl<M: Clone> FaultyTransport<M> {
    /// A transport injecting the faults `plan` schedules.
    pub fn new(plan: FaultPlan) -> Self {
        FaultyTransport {
            plan,
            queue: Vec::new(),
            transmissions: 0,
            stats: AtomicTransportStats::default(),
        }
    }

    /// The driving plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// A torn-free snapshot of what the transport has done so far.
    pub fn stats(&self) -> TransportStats {
        self.stats.snapshot()
    }
}

impl<M: Clone> Transport<M> for FaultyTransport<M> {
    fn send(&mut self, round: usize, from: AgentId, to: AgentId, message: M) {
        let tid = self.transmissions;
        self.transmissions += 1;
        self.stats.sent.fetch_add(1, Ordering::Relaxed);
        if self.plan.is_cut(from, to, round) {
            self.stats.cut.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if self.plan.drops(tid) {
            self.stats.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let due = round + 1 + self.plan.extra_delay(tid) as usize;
        if self.plan.duplicates(tid) {
            self.stats.duplicated.fetch_add(1, Ordering::Relaxed);
            let dup_due = round + 1 + self.plan.dup_extra_delay(tid) as usize;
            self.queue.push((dup_due, from, to, message.clone()));
        }
        self.queue.push((due, from, to, message));
    }

    fn deliver(&mut self, round: usize) -> Vec<(AgentId, M)> {
        let mut arrived = Vec::new();
        let mut still_flying = Vec::with_capacity(self.queue.len());
        for (due, from, to, msg) in self.queue.drain(..) {
            if due <= round {
                if self.plan.is_down(to, round) {
                    self.stats.lost_to_down.fetch_add(1, Ordering::Relaxed);
                } else {
                    arrived.push((to, msg));
                }
            } else {
                still_flying.push((due, from, to, msg));
            }
        }
        self.queue = still_flying;
        arrived
    }

    fn in_flight(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{Crash, Partition};

    fn a(n: u32) -> AgentId {
        AgentId::new(n)
    }

    #[test]
    fn delay_transport_matches_legacy_xorshift() {
        // Reproduce the exact delay stream the pre-transport engine drew.
        let (seed, max_delay) = (3u64, 5u64);
        let mut rng_state = seed | 1;
        let mut legacy = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            1 + (rng_state % max_delay) as usize
        };
        let mut transport: DelayTransport<u32> = DelayTransport::new(seed, max_delay);
        for i in 0..100u32 {
            let expected_due = 7 + legacy();
            transport.send(7, a(0), a(1), i);
            let (due, _, payload) = *transport.queue.last().unwrap();
            assert_eq!(due, expected_due);
            assert_eq!(payload, i);
        }
    }

    #[test]
    fn delay_transport_delivers_in_insertion_order() {
        let mut t: DelayTransport<u32> = DelayTransport::new(0, 1);
        t.send(1, a(0), a(1), 10);
        t.send(1, a(0), a(2), 20);
        assert_eq!(t.in_flight(), 2);
        assert!(t.deliver(1).is_empty());
        assert_eq!(t.deliver(2), vec![(a(1), 10), (a(2), 20)]);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn faultless_faulty_transport_is_reliable_next_round() {
        let mut t: FaultyTransport<u32> = FaultyTransport::new(FaultPlan::none());
        for i in 0..50 {
            t.send(4, a(0), a(1), i);
        }
        let arrived = t.deliver(5);
        assert_eq!(arrived.len(), 50);
        assert_eq!(
            t.stats(),
            TransportStats {
                sent: 50,
                ..TransportStats::default()
            }
        );
    }

    #[test]
    fn drops_and_duplicates_show_in_stats() {
        let plan = FaultPlan::seeded(11)
            .with_drop_per_mille(300)
            .with_dup_per_mille(300)
            .with_max_extra_delay(3);
        let mut t: FaultyTransport<u32> = FaultyTransport::new(plan);
        for i in 0..1000 {
            t.send(1, a(0), a(1), i);
        }
        let mut arrived = 0;
        for round in 2..10 {
            arrived += t.deliver(round).len();
        }
        let stats = t.stats();
        assert_eq!(stats.sent, 1000);
        assert!(stats.dropped > 0 && stats.dropped < 1000);
        assert!(stats.duplicated > 0);
        assert_eq!(t.in_flight(), 0);
        assert_eq!(arrived, 1000 - stats.dropped + stats.duplicated);
    }

    #[test]
    fn stats_snapshots_are_shared_ref_and_self_consistent() {
        let mut t: FaultyTransport<u32> = FaultyTransport::new(FaultPlan::none());
        for i in 0..10 {
            t.send(1, a(0), a(1), i);
        }
        // Snapshots go through &self (relaxed atomic loads), so concurrent
        // observers never tear a counter mid-update and never block.
        let shared: &FaultyTransport<u32> = &t;
        let s1 = shared.stats();
        let s2 = std::thread::scope(|scope| scope.spawn(|| shared.stats()).join().unwrap());
        assert_eq!(s1, s2);
        assert_eq!(s1.sent, 10);
    }

    #[test]
    fn cut_links_swallow_at_send_time() {
        let plan = FaultPlan::none().with_partition(Partition {
            a: a(0),
            b: a(1),
            from_round: 2,
            until_round: 4,
        });
        let mut t: FaultyTransport<u32> = FaultyTransport::new(plan);
        t.send(1, a(0), a(1), 1); // before the cut: delivered
        t.send(2, a(1), a(0), 2); // inside the cut, either direction: lost
        t.send(3, a(0), a(2), 3); // different pair: delivered
        t.send(4, a(0), a(1), 4); // healed: delivered
        let mut arrived = Vec::new();
        for round in 2..8 {
            arrived.extend(t.deliver(round));
        }
        assert_eq!(arrived, vec![(a(1), 1), (a(2), 3), (a(1), 4)]);
        assert_eq!(t.stats().cut, 1);
    }

    #[test]
    fn down_addressee_loses_arrivals() {
        let plan = FaultPlan::none().with_crash(
            a(1),
            Crash {
                at_round: 3,
                restart_at: Some(5),
            },
        );
        let mut t: FaultyTransport<u32> = FaultyTransport::new(plan);
        t.send(2, a(0), a(1), 7); // arrives round 3 while a1 is down: lost
        t.send(4, a(0), a(1), 8); // arrives round 5, a1 restarted: delivered
        assert!(t.deliver(3).is_empty());
        assert_eq!(t.deliver(5), vec![(a(1), 8)]);
        assert_eq!(t.stats().lost_to_down, 1);
    }
}
