//! Socket-level plumbing for the multi-process distributed engine: a
//! length-prefixed frame layer over the canonical text codec, address and
//! network-description parsing, and a thin [`Conn`]/[`Listener`] facade
//! that lets the supervision layer treat TCP and Unix-domain sockets
//! uniformly.
//!
//! # Framing format
//!
//! A stream carries a sequence of frames. Each frame is:
//!
//! ```text
//! +----------------+---------------------+
//! | len: u32 (BE)  | payload: len bytes  |
//! +----------------+---------------------+
//! ```
//!
//! The payload is the UTF-8 encoding of exactly one [`codec`](crate::codec)
//! text frame (e.g. `data;seq=17;from=a3;edge=e2`). The length prefix is
//! big-endian and bounded by [`MAX_FRAME_LEN`]; a peer announcing a larger
//! frame is treated as mangled and the connection dropped. TCP offers no
//! message boundaries, so [`FrameDecoder`] reassembles frames from
//! arbitrarily split or coalesced reads; a torn write (the peer died
//! mid-frame) leaves a partial frame in the buffer which [`FrameDecoder::
//! finish`] reports as a typed [`FrameError::Truncated`] — the supervision
//! layer absorbs it exactly like a codec-corruption drop.
//!
//! # Network descriptions
//!
//! A run is described by a small line-oriented text file mapping each
//! principal to a listen address plus one supervisor address:
//!
//! ```text
//! supervisor=tcp:127.0.0.1:41000
//! node=a0:tcp:127.0.0.1:41001
//! node=a1:tcp:127.0.0.1:41002
//! node=a2:unix:/tmp/run7/a2.sock
//! config=attempts=6;ack=2;backoff=32;rounds=10000
//! ```
//!
//! `config=` (optional) carries a [`SuperviseConfig`](crate::supervise::
//! SuperviseConfig) wire string applied by every process that loads the
//! file, so one artifact pins the whole deployment's protocol parameters.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

use trustseq_model::AgentId;

/// Upper bound on a single frame's payload, in bytes. Generously above any
/// frame the codec can produce (a `syncresp` over tens of thousands of
/// edges is still well under 1 MiB) while keeping a mangled length prefix
/// from provoking a giant allocation.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Number of bytes in the length prefix.
pub const FRAME_HEADER_LEN: usize = 4;

/// Typed failure of the framing layer. Every variant is a protocol-level
/// problem with the *stream*; none of them panic and none of them are
/// recoverable on the same connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix announced a payload larger than the decoder's
    /// cap ([`MAX_FRAME_LEN`] by default, lower via
    /// [`FrameDecoder::with_max_frame`]). Raised *before* any allocation
    /// is attempted, so a malicious or corrupt prefix cannot provoke a
    /// multi-gigabyte `Vec` — the connection is simply dropped.
    TooLarge {
        /// The announced payload length.
        announced: usize,
        /// The cap the decoder enforces.
        limit: usize,
    },
    /// The payload was not valid UTF-8.
    Utf8 {
        /// The announced payload length, for diagnostics.
        len: usize,
    },
    /// The stream ended inside a frame (torn write / dead peer).
    Truncated {
        /// Bytes of the frame that did arrive.
        got: usize,
        /// Bytes the frame still needed (header bytes count too).
        missing: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLarge { announced, limit } => write!(
                f,
                "frame announces {announced} bytes, more than the {limit}-byte limit"
            ),
            FrameError::Utf8 { len } => {
                write!(f, "frame payload ({len} bytes) is not valid UTF-8")
            }
            FrameError::Truncated { got, missing } => write!(
                f,
                "stream ended mid-frame: got {got} bytes, {missing} more expected"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes one text frame into its length-prefixed byte representation.
///
/// ```
/// use trustseq_dist::net::{encode_frame, FrameDecoder};
/// let bytes = encode_frame("ack;seq=7").unwrap();
/// let mut dec = FrameDecoder::new();
/// dec.push(&bytes);
/// assert_eq!(dec.next_frame().unwrap(), Some("ack;seq=7".to_string()));
/// assert_eq!(dec.next_frame().unwrap(), None);
/// ```
pub fn encode_frame(frame: &str) -> Result<Vec<u8>, FrameError> {
    let payload = frame.as_bytes();
    if payload.len() > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge {
            announced: payload.len(),
            limit: MAX_FRAME_LEN,
        });
    }
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Incremental frame reassembler. Feed it whatever byte chunks the socket
/// hands you ([`push`](Self::push)), drain complete frames with
/// [`next`](Self::next), and call [`finish`](Self::finish) at EOF to learn
/// whether the stream ended cleanly on a frame boundary.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by returned frames; compacted lazily
    /// so repeated small pushes don't memmove on every frame.
    consumed: usize,
    /// Hard cap on a single frame's announced payload length. A prefix
    /// above this is a typed [`FrameError::TooLarge`], checked before any
    /// buffering decision so corrupt or adversarial prefixes never drive
    /// an allocation.
    max_frame: usize,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameDecoder {
    /// Creates an empty decoder with the default [`MAX_FRAME_LEN`] cap.
    pub fn new() -> Self {
        Self::with_max_frame(MAX_FRAME_LEN)
    }

    /// Creates an empty decoder with a custom frame cap. Servers that only
    /// expect small request frames set this far below [`MAX_FRAME_LEN`] so
    /// a hostile client cannot make them buffer megabytes per connection.
    /// Caps above [`MAX_FRAME_LEN`] are clamped to it — the wire format's
    /// own bound is absolute.
    pub fn with_max_frame(max_frame: usize) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            consumed: 0,
            max_frame: max_frame.min(MAX_FRAME_LEN),
        }
    }

    /// The announced-payload cap this decoder enforces.
    pub fn max_frame(&self) -> usize {
        self.max_frame
    }

    /// Appends raw bytes read from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing if more than half the buffer is dead.
        if self.consumed > 0 && self.consumed * 2 >= self.buf.len() {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Returns the next complete frame, `Ok(None)` if more bytes are
    /// needed, or a typed error if the stream is mangled (oversized
    /// announcement or non-UTF-8 payload). After an error the decoder is
    /// poisoned in practice — the connection should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<String>, FrameError> {
        let pending = &self.buf[self.consumed..];
        if pending.len() < FRAME_HEADER_LEN {
            return Ok(None);
        }
        let announced = u32::from_be_bytes([pending[0], pending[1], pending[2], pending[3]]);
        let announced = announced as usize;
        if announced > self.max_frame {
            return Err(FrameError::TooLarge {
                announced,
                limit: self.max_frame,
            });
        }
        if pending.len() < FRAME_HEADER_LEN + announced {
            return Ok(None);
        }
        let payload = &pending[FRAME_HEADER_LEN..FRAME_HEADER_LEN + announced];
        let frame = std::str::from_utf8(payload)
            .map_err(|_| FrameError::Utf8 { len: announced })?
            .to_string();
        self.consumed += FRAME_HEADER_LEN + announced;
        Ok(Some(frame))
    }

    /// Call at EOF: `Ok(())` if the stream ended exactly on a frame
    /// boundary, [`FrameError::Truncated`] if a partial frame was pending
    /// (torn write).
    pub fn finish(&self) -> Result<(), FrameError> {
        let pending = self.buf.len() - self.consumed;
        if pending == 0 {
            return Ok(());
        }
        let missing = if pending < FRAME_HEADER_LEN {
            FRAME_HEADER_LEN - pending
        } else {
            let announced = u32::from_be_bytes([
                self.buf[self.consumed],
                self.buf[self.consumed + 1],
                self.buf[self.consumed + 2],
                self.buf[self.consumed + 3],
            ]) as usize;
            (FRAME_HEADER_LEN + announced).saturating_sub(pending)
        };
        Err(FrameError::Truncated {
            got: pending,
            missing,
        })
    }

    /// Bytes currently buffered but not yet returned as frames.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.consumed
    }
}

/// A listen/connect address: TCP (`tcp:host:port`) or a Unix-domain socket
/// path (`unix:/path/to.sock`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Addr {
    /// TCP endpoint, `host:port` as accepted by [`ToSocketAddrs`].
    Tcp(String),
    /// Unix-domain socket path. Only connectable on Unix platforms.
    Unix(PathBuf),
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Addr::Tcp(hostport) => write!(f, "tcp:{hostport}"),
            Addr::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

impl std::str::FromStr for Addr {
    type Err = NetParseError;

    fn from_str(s: &str) -> Result<Self, NetParseError> {
        if let Some(hostport) = s.strip_prefix("tcp:") {
            if hostport.is_empty() {
                return Err(NetParseError::BadAddr(s.to_string()));
            }
            Ok(Addr::Tcp(hostport.to_string()))
        } else if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(NetParseError::BadAddr(s.to_string()));
            }
            Ok(Addr::Unix(PathBuf::from(path)))
        } else {
            Err(NetParseError::BadAddr(s.to_string()))
        }
    }
}

/// Typed failure while parsing an [`Addr`] or [`NetworkDescription`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetParseError {
    /// An address was not `tcp:<host:port>` or `unix:<path>`.
    BadAddr(String),
    /// A line was not `supervisor=`, `node=` or `config=`.
    BadLine(String),
    /// A `node=` entry did not start with `a<index>:`.
    BadAgent(String),
    /// The same agent was given two addresses.
    DuplicateNode(AgentId),
    /// The description had no `supervisor=` line.
    MissingSupervisor,
    /// The description had no `node=` lines.
    NoNodes,
}

impl fmt::Display for NetParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetParseError::BadAddr(s) => {
                write!(
                    f,
                    "bad address {s:?}: expected tcp:<host:port> or unix:<path>"
                )
            }
            NetParseError::BadLine(s) => write!(
                f,
                "bad network-description line {s:?}: expected supervisor=, node= or config="
            ),
            NetParseError::BadAgent(s) => {
                write!(f, "bad node entry {s:?}: expected a<index>:<addr>")
            }
            NetParseError::DuplicateNode(a) => write!(f, "node {a} listed twice"),
            NetParseError::MissingSupervisor => write!(f, "no supervisor= line"),
            NetParseError::NoNodes => write!(f, "no node= lines"),
        }
    }
}

impl std::error::Error for NetParseError {}

/// Where every process in a multi-process run lives: one supervisor
/// address, one listen address per principal, and an optional shared
/// supervision-config wire string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkDescription {
    /// The orchestrating parent's control-plane listen address.
    pub supervisor: Addr,
    /// Each principal's peer-traffic listen address.
    pub nodes: BTreeMap<AgentId, Addr>,
    /// Optional [`SuperviseConfig`](crate::supervise::SuperviseConfig)
    /// wire string shared by every process loading this description.
    pub config: Option<String>,
}

impl NetworkDescription {
    /// Parses the line-oriented text format (see module docs). Blank lines
    /// and `#` comments are ignored.
    pub fn from_text(text: &str) -> Result<Self, NetParseError> {
        let mut supervisor = None;
        let mut nodes = BTreeMap::new();
        let mut config = None;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(addr) = line.strip_prefix("supervisor=") {
                supervisor = Some(addr.parse()?);
            } else if let Some(entry) = line.strip_prefix("node=") {
                let (agent, addr) = entry
                    .split_once(':')
                    .ok_or_else(|| NetParseError::BadAgent(entry.to_string()))?;
                let index: u32 = agent
                    .strip_prefix('a')
                    .and_then(|n| n.parse().ok())
                    .ok_or_else(|| NetParseError::BadAgent(entry.to_string()))?;
                let agent = AgentId::new(index);
                if nodes.insert(agent, addr.parse()?).is_some() {
                    return Err(NetParseError::DuplicateNode(agent));
                }
            } else if let Some(cfg) = line.strip_prefix("config=") {
                config = Some(cfg.to_string());
            } else {
                return Err(NetParseError::BadLine(line.to_string()));
            }
        }
        let supervisor = supervisor.ok_or(NetParseError::MissingSupervisor)?;
        if nodes.is_empty() {
            return Err(NetParseError::NoNodes);
        }
        Ok(NetworkDescription {
            supervisor,
            nodes,
            config,
        })
    }

    /// Renders the canonical text form — `from_text(x.to_text())` is
    /// identity.
    pub fn to_text(&self) -> String {
        let mut out = format!("supervisor={}\n", self.supervisor);
        for (agent, addr) in &self.nodes {
            out.push_str(&format!("node={agent}:{addr}\n"));
        }
        if let Some(cfg) = &self.config {
            out.push_str(&format!("config={cfg}\n"));
        }
        out
    }

    /// The address a given principal listens on.
    pub fn addr_of(&self, agent: AgentId) -> Option<&Addr> {
        self.nodes.get(&agent)
    }
}

/// A connected stream over either socket family. Implements [`Read`] and
/// [`Write`]; the supervision layer never needs to know which family it
/// got.
#[derive(Debug)]
pub enum Conn {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-domain connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    /// Connects to `addr` within `timeout`. TCP honours the timeout via
    /// `connect_timeout`; Unix-domain connects are local and effectively
    /// instant, so the timeout only bounds address resolution there.
    pub fn connect(addr: &Addr, timeout: Duration) -> io::Result<Conn> {
        match addr {
            Addr::Tcp(hostport) => {
                let resolved: Vec<SocketAddr> = hostport.to_socket_addrs()?.collect();
                let first = resolved.first().ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::AddrNotAvailable,
                        format!("{hostport} resolved to no addresses"),
                    )
                })?;
                let stream = TcpStream::connect_timeout(first, timeout)?;
                stream.set_nodelay(true)?;
                Ok(Conn::Tcp(stream))
            }
            #[cfg(unix)]
            Addr::Unix(path) => Ok(Conn::Unix(UnixStream::connect(path)?)),
            #[cfg(not(unix))]
            Addr::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix-domain sockets are not available on this platform",
            )),
        }
    }

    /// Bounds how long a single `read` may block (`None` = forever).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    /// Bounds how long a single `write` may block (`None` = forever).
    pub fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_write_timeout(timeout),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_write_timeout(timeout),
        }
    }

    /// Clones the underlying socket handle (shared file description), so
    /// one thread can read while another writes.
    pub fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }

    /// Shuts down both directions; subsequent reads see EOF.
    pub fn shutdown(&self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            #[cfg(unix)]
            Conn::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// A listening socket over either family. Used in non-blocking mode by the
/// node runtime's accept loop so it can poll a stop flag between accepts.
#[derive(Debug)]
pub enum Listener {
    /// A TCP listener.
    Tcp(TcpListener),
    /// A Unix-domain listener.
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    /// Binds `addr`. For Unix sockets a stale socket file from a crashed
    /// previous run is removed first (the orchestrator namespaces paths per
    /// run, so this never races a live listener).
    pub fn bind(addr: &Addr) -> io::Result<Listener> {
        match addr {
            Addr::Tcp(hostport) => TcpListener::bind(hostport.as_str()).map(Listener::Tcp),
            #[cfg(unix)]
            Addr::Unix(path) => {
                if path.exists() {
                    let _ = std::fs::remove_file(path);
                }
                UnixListener::bind(path).map(Listener::Unix)
            }
            #[cfg(not(unix))]
            Addr::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix-domain sockets are not available on this platform",
            )),
        }
    }

    /// Switches the listener to non-blocking accepts.
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(nonblocking),
        }
    }

    /// The address this listener is actually bound to. For TCP this
    /// resolves port 0 to the kernel-assigned port, which is how the
    /// in-process service tests and `loadgen --serve` discover where to
    /// connect.
    pub fn local_addr(&self) -> io::Result<Addr> {
        match self {
            Listener::Tcp(l) => {
                let addr = l.local_addr()?;
                Ok(Addr::Tcp(addr.to_string()))
            }
            #[cfg(unix)]
            Listener::Unix(l) => {
                let addr = l.local_addr()?;
                let path = addr.as_pathname().ok_or_else(|| {
                    io::Error::new(io::ErrorKind::AddrNotAvailable, "unnamed unix socket")
                })?;
                Ok(Addr::Unix(path.to_path_buf()))
            }
        }
    }

    /// Accepts one pending connection. In non-blocking mode an empty queue
    /// surfaces as `ErrorKind::WouldBlock`.
    pub fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nodelay(true)?;
                Ok(Conn::Tcp(stream))
            }
            #[cfg(unix)]
            Listener::Unix(l) => {
                let (stream, _) = l.accept()?;
                Ok(Conn::Unix(stream))
            }
        }
    }
}

/// Picks `n` distinct free loopback TCP ports by binding port 0, reading
/// the assigned port, and dropping the listener. Best-effort: another
/// process could steal a port between probe and use, which the caller's
/// reconnect/backoff machinery absorbs.
pub fn free_loopback_ports(n: usize) -> io::Result<Vec<u16>> {
    // Hold all listeners until every port is probed so we never hand the
    // same port out twice.
    let mut listeners = Vec::with_capacity(n);
    let mut ports = Vec::with_capacity(n);
    for _ in 0..n {
        let l = TcpListener::bind("127.0.0.1:0")?;
        ports.push(l.local_addr()?.port());
        listeners.push(l);
    }
    Ok(ports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_survive_byte_at_a_time_reads() {
        let frames = ["ack;seq=7", "", "data;seq=17;from=a3;edge=e2"];
        let mut wire = Vec::new();
        for f in frames {
            wire.extend_from_slice(&encode_frame(f).unwrap());
        }
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for byte in wire {
            dec.push(&[byte]);
            while let Some(frame) = dec.next_frame().unwrap() {
                out.push(frame);
            }
        }
        assert_eq!(out, frames);
        dec.finish().unwrap();
    }

    #[test]
    fn coalesced_frames_all_drain() {
        let mut wire = Vec::new();
        for i in 0..50u64 {
            wire.extend_from_slice(&encode_frame(&format!("ack;seq={i}")).unwrap());
        }
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        let mut n = 0;
        while let Some(frame) = dec.next_frame().unwrap() {
            assert_eq!(frame, format!("ack;seq={n}"));
            n += 1;
        }
        assert_eq!(n, 50);
        assert_eq!(dec.pending_bytes(), 0);
    }

    #[test]
    fn torn_write_is_a_typed_truncation() {
        let wire = encode_frame("syncreq;from=a5").unwrap();
        for cut in 1..wire.len() {
            let mut dec = FrameDecoder::new();
            dec.push(&wire[..cut]);
            assert_eq!(dec.next_frame().unwrap(), None, "cut={cut}");
            let err = dec.finish().unwrap_err();
            match err {
                FrameError::Truncated { got, missing } => {
                    assert_eq!(got, cut);
                    if cut < FRAME_HEADER_LEN {
                        // Inside the header the full frame size is unknown;
                        // the decoder reports the bytes to finish the header.
                        assert_eq!(missing, FRAME_HEADER_LEN - cut);
                    } else {
                        assert_eq!(got + missing, wire.len());
                    }
                }
                other => panic!("expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_announcement_is_rejected_without_allocating() {
        let mut dec = FrameDecoder::new();
        dec.push(&u32::MAX.to_be_bytes());
        assert!(matches!(
            dec.next_frame(),
            Err(FrameError::TooLarge { announced, limit })
                if announced == u32::MAX as usize && limit == MAX_FRAME_LEN
        ));
    }

    #[test]
    fn adversarial_prefix_hits_custom_cap_before_buffering() {
        // A server expecting small request frames caps the decoder far
        // below the wire maximum; a length prefix just over that cap is a
        // typed error even though it is a legal announcement elsewhere.
        let mut dec = FrameDecoder::with_max_frame(4096);
        assert_eq!(dec.max_frame(), 4096);
        dec.push(&4097u32.to_be_bytes());
        assert_eq!(
            dec.next_frame(),
            Err(FrameError::TooLarge {
                announced: 4097,
                limit: 4096
            })
        );

        // Frames at exactly the cap still pass.
        let payload = "x".repeat(4096);
        let mut dec = FrameDecoder::with_max_frame(4096);
        dec.push(&encode_frame(&payload).unwrap());
        assert_eq!(dec.next_frame().unwrap(), Some(payload));

        // Caps cannot exceed the wire format's absolute bound.
        assert_eq!(
            FrameDecoder::with_max_frame(usize::MAX).max_frame(),
            MAX_FRAME_LEN
        );
    }

    #[test]
    fn listener_local_addr_resolves_assigned_port() {
        let listener = Listener::bind(&Addr::Tcp("127.0.0.1:0".into())).unwrap();
        match listener.local_addr().unwrap() {
            Addr::Tcp(hostport) => {
                let port: u16 = hostport.rsplit(':').next().unwrap().parse().unwrap();
                assert_ne!(port, 0);
            }
            #[cfg(unix)]
            other => panic!("expected tcp addr, got {other}"),
        }
    }

    #[test]
    fn non_utf8_payload_is_rejected() {
        let mut dec = FrameDecoder::new();
        dec.push(&2u32.to_be_bytes());
        dec.push(&[0xff, 0xfe]);
        assert_eq!(dec.next_frame(), Err(FrameError::Utf8 { len: 2 }));
    }

    #[test]
    fn addr_parse_round_trips() {
        for s in ["tcp:127.0.0.1:41000", "unix:/tmp/run/a0.sock"] {
            let addr: Addr = s.parse().unwrap();
            assert_eq!(addr.to_string(), s);
        }
        assert!("tcp:".parse::<Addr>().is_err());
        assert!("udp:127.0.0.1:1".parse::<Addr>().is_err());
        assert!("127.0.0.1:1".parse::<Addr>().is_err());
    }

    #[test]
    fn network_description_round_trips() {
        let text = "supervisor=tcp:127.0.0.1:41000\n\
                    node=a0:tcp:127.0.0.1:41001\n\
                    node=a1:unix:/tmp/run/a1.sock\n\
                    config=attempts=6;ack=2;backoff=32;rounds=10000\n";
        let desc = NetworkDescription::from_text(text).unwrap();
        assert_eq!(desc.nodes.len(), 2);
        assert_eq!(desc.to_text(), text);
        assert_eq!(
            NetworkDescription::from_text(&desc.to_text()).unwrap(),
            desc
        );
    }

    #[test]
    fn network_description_rejects_malformed_input() {
        assert_eq!(
            NetworkDescription::from_text("node=a0:tcp:h:1"),
            Err(NetParseError::MissingSupervisor)
        );
        assert_eq!(
            NetworkDescription::from_text("supervisor=tcp:h:1"),
            Err(NetParseError::NoNodes)
        );
        assert_eq!(
            NetworkDescription::from_text("supervisor=tcp:h:1\nnode=b0:tcp:h:2"),
            Err(NetParseError::BadAgent("b0:tcp:h:2".to_string()))
        );
        assert_eq!(
            NetworkDescription::from_text("supervisor=tcp:h:1\nnode=a0:tcp:h:2\nnode=a0:tcp:h:3"),
            Err(NetParseError::DuplicateNode(AgentId::new(0)))
        );
        assert!(matches!(
            NetworkDescription::from_text("supervisor=tcp:h:1\nwhat is this"),
            Err(NetParseError::BadLine(_))
        ));
    }

    #[test]
    fn tcp_conn_round_trips_frames() {
        let listener = Listener::bind(&Addr::Tcp("127.0.0.1:0".into())).unwrap();
        let port = match &listener {
            Listener::Tcp(l) => l.local_addr().unwrap().port(),
            #[cfg(unix)]
            _ => unreachable!(),
        };
        let addr = Addr::Tcp(format!("127.0.0.1:{port}"));
        let handle = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            let mut dec = FrameDecoder::new();
            let mut buf = [0u8; 256];
            loop {
                let n = conn.read(&mut buf).unwrap();
                if n == 0 {
                    dec.finish().unwrap();
                    return Vec::<String>::new();
                }
                dec.push(&buf[..n]);
                let mut got = Vec::new();
                while let Some(f) = dec.next_frame().unwrap() {
                    got.push(f);
                }
                if !got.is_empty() {
                    return got;
                }
            }
        });
        let mut conn = Conn::connect(&addr, Duration::from_secs(2)).unwrap();
        conn.write_all(&encode_frame("hello;from=a1").unwrap())
            .unwrap();
        conn.flush().unwrap();
        let got = handle.join().unwrap();
        assert_eq!(got, vec!["hello;from=a1".to_string()]);
    }

    #[cfg(unix)]
    #[test]
    fn unix_conn_round_trips_frames() {
        let dir = std::env::temp_dir().join(format!("trustseq-net-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.sock");
        let addr = Addr::Unix(path.clone());
        let listener = Listener::bind(&addr).unwrap();
        let handle = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            let mut dec = FrameDecoder::new();
            let mut buf = [0u8; 64];
            loop {
                let n = conn.read(&mut buf).unwrap();
                assert_ne!(n, 0);
                dec.push(&buf[..n]);
                if let Some(f) = dec.next_frame().unwrap() {
                    return f;
                }
            }
        });
        let mut conn = Conn::connect(&addr, Duration::from_secs(2)).unwrap();
        conn.write_all(&encode_frame("ping;tick=3").unwrap())
            .unwrap();
        let got = handle.join().unwrap();
        assert_eq!(got, "ping;tick=3");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn free_ports_are_distinct() {
        let ports = free_loopback_ports(4).unwrap();
        let set: std::collections::BTreeSet<_> = ports.iter().collect();
        assert_eq!(set.len(), 4);
    }
}
